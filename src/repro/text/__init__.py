"""Text analysis substrate: tokenization, stopwords, stemming, pipelines.

The search engine, the clustering layer, and the expansion algorithms all
consume the output of an :class:`~repro.text.analyzer.Analyzer`, which turns
raw text into a normalized list of terms.

Public API
----------
- :func:`tokenize` — split raw text into lowercase word tokens.
- :data:`STOPWORDS` / :func:`is_stopword` — the default English stopword set.
- :class:`PorterStemmer` / :func:`stem` — from-scratch Porter (1980) stemmer.
- :class:`Analyzer` — configurable pipeline (tokenize → stop → stem).
"""

from repro.text.analyzer import Analyzer
from repro.text.porter import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenizer import tokenize

__all__ = [
    "Analyzer",
    "PorterStemmer",
    "STOPWORDS",
    "is_stopword",
    "stem",
    "tokenize",
]
