"""Configurable text-analysis pipeline: tokenize → stopword-filter → stem.

An :class:`Analyzer` converts raw text into the normalized terms used by the
inverted index, the clustering vectorizer, and candidate-keyword selection.
All layers must share one analyzer instance (or equal configurations) so that
query terms and document terms land in the same term space.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.text.porter import stem as porter_stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import iter_tokens


@dataclass(frozen=True)
class Analyzer:
    """Turns raw text into normalized terms.

    Parameters
    ----------
    use_stopwords:
        Drop tokens found in ``stopwords`` (default: the built-in English
        list).
    use_stemming:
        Apply the Porter stemmer to alphabetic tokens. The paper's corpora
        are English product/encyclopedia text, where light stemming folds
        morphological variants ("printers" → "printer") that would otherwise
        fragment keyword statistics.
    min_token_length:
        Tokens shorter than this are dropped (after tokenization, before
        stemming). 2 keeps model names like "tv" while dropping single
        letters.
    stopwords:
        The stopword set to use when ``use_stopwords`` is True.
    """

    use_stopwords: bool = True
    use_stemming: bool = True
    min_token_length: int = 2
    stopwords: frozenset[str] = field(default=STOPWORDS, repr=False)

    def analyze(self, text: str) -> list[str]:
        """Return the normalized terms of ``text``, in order."""
        out: list[str] = []
        for token in iter_tokens(text):
            if len(token) < self.min_token_length:
                continue
            if self.use_stopwords and token in self.stopwords:
                continue
            if self.use_stemming:
                token = porter_stem(token)
            out.append(token)
        return out

    def term_counts(self, text: str) -> Counter[str]:
        """Return a term-frequency Counter for ``text``."""
        return Counter(self.analyze(text))

    def analyze_query(self, text: str) -> list[str]:
        """Normalize a keyword query.

        Queries go through the same pipeline as documents so a query term
        always matches its indexed form. Terms containing ``:`` are treated
        as structured feature terms and passed through verbatim (lowercased,
        spaces stripped), mirroring how features enter documents.
        """
        terms: list[str] = []
        for raw in text.split():
            if ":" in raw:
                terms.append(normalize_feature_term(raw))
            else:
                terms.extend(self.analyze(raw))
        return terms

    @staticmethod
    def keep_distinct(terms: Iterable[str]) -> list[str]:
        """Deduplicate while preserving first-seen order."""
        seen: set[str] = set()
        out: list[str] = []
        for t in terms:
            if t not in seen:
                seen.add(t)
                out.append(t)
        return out


def normalize_feature_term(raw: str) -> str:
    """Normalize a feature-triplet query term like ``TV:brand:Toshiba``.

    Lowercases and strips whitespace around the ``:`` separators so that
    query-side triplets match the canonical form produced by
    :meth:`repro.data.documents.Feature.as_term`.
    """
    parts = [p.strip().lower() for p in raw.split(":")]
    return ":".join(p for p in parts if p)
