"""A from-scratch implementation of the Porter stemming algorithm.

M.F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980.

The implementation follows the original paper's five steps and uses the
standard *measure* ``m`` (the number of VC sequences in the ``[C](VC)^m[V]``
decomposition of a word). Only lowercase ASCII words are expected; anything
containing non-letters (e.g. "wp-dc26", feature triplets) is returned
unchanged by :func:`stem`, which keeps structured-data terms stable.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    """Return True if ``word[i]`` is a consonant in Porter's sense.

    'y' is a consonant when it starts the word or follows a vowel-position
    consonant, i.e. it is a vowel iff the preceding letter is a consonant.
    """
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem_: str) -> int:
    """Porter's measure m: the number of VC sequences in ``stem_``."""
    m = 0
    prev_vowel = False
    for i in range(len(stem_)):
        vowel = not _is_consonant(stem_, i)
        if prev_vowel and not vowel:
            m += 1
        prev_vowel = vowel
    return m


def _contains_vowel(stem_: str) -> bool:
    return any(not _is_consonant(stem_, i) for i in range(len(stem_)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True if ``word`` ends consonant-vowel-consonant, last not in 'wxy'."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


class PorterStemmer:
    """Stateless Porter stemmer; instances exist for API symmetry."""

    def stem(self, word: str) -> str:
        """Return the Porter stem of a lowercase alphabetic ``word``.

        Words shorter than 3 characters are returned unchanged, as in the
        original algorithm.
        """
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- step 1: plurals and -ed / -ing ---------------------------------

    @staticmethod
    def _step1a(w: str) -> str:
        if w.endswith("sses"):
            return w[:-2]
        if w.endswith("ies"):
            return w[:-2]
        if w.endswith("ss"):
            return w
        if w.endswith("s"):
            return w[:-1]
        return w

    def _step1b(self, w: str) -> str:
        if w.endswith("eed"):
            if _measure(w[:-3]) > 0:
                return w[:-1]
            return w
        flag = False
        if w.endswith("ed") and _contains_vowel(w[:-2]):
            w = w[:-2]
            flag = True
        elif w.endswith("ing") and _contains_vowel(w[:-3]):
            w = w[:-3]
            flag = True
        if flag:
            if w.endswith(("at", "bl", "iz")):
                return w + "e"
            if _ends_double_consonant(w) and w[-1] not in "lsz":
                return w[:-1]
            if _measure(w) == 1 and _ends_cvc(w):
                return w + "e"
        return w

    @staticmethod
    def _step1c(w: str) -> str:
        if w.endswith("y") and _contains_vowel(w[:-1]):
            return w[:-1] + "i"
        return w

    # -- steps 2-4: suffix tables ----------------------------------------

    _STEP2 = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3 = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    _STEP4 = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _step2(cls, w: str) -> str:
        for suffix, repl in cls._STEP2:
            if w.endswith(suffix):
                base = w[: -len(suffix)]
                if _measure(base) > 0:
                    return base + repl
                return w
        return w

    @classmethod
    def _step3(cls, w: str) -> str:
        for suffix, repl in cls._STEP3:
            if w.endswith(suffix):
                base = w[: -len(suffix)]
                if _measure(base) > 0:
                    return base + repl
                return w
        return w

    @classmethod
    def _step4(cls, w: str) -> str:
        for suffix in cls._STEP4:
            if w.endswith(suffix):
                base = w[: -len(suffix)]
                if _measure(base) > 1:
                    return base
                return w
        if w.endswith("ion"):
            base = w[:-3]
            if base and base[-1] in "st" and _measure(base) > 1:
                return base
        return w

    # -- step 5: final -e and double l ------------------------------------

    @staticmethod
    def _step5a(w: str) -> str:
        if w.endswith("e"):
            base = w[:-1]
            m = _measure(base)
            if m > 1 or (m == 1 and not _ends_cvc(base)):
                return base
        return w

    @staticmethod
    def _step5b(w: str) -> str:
        if w.endswith("ll") and _measure(w) > 1:
            return w[:-1]
        return w


_DEFAULT = PorterStemmer()


def stem(token: str) -> str:
    """Stem ``token`` if it is purely alphabetic; otherwise return it as-is.

    Mixed alphanumeric tokens (model numbers such as ``wp-dc26``) and
    structured feature terms (``memory:category:ddr3``) must stay stable, so
    only ``str.isalpha`` tokens go through the Porter algorithm.
    """
    if token.isalpha():
        return _DEFAULT.stem(token)
    return token
