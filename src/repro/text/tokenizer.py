"""Tokenization of raw text into word tokens.

The tokenizer is intentionally simple and deterministic: it lowercases,
splits on non-word characters, and keeps alphanumeric tokens. Feature
triplets (``entity:attribute:value``) used by structured documents are *not*
produced here — they are first-class terms created by
:meth:`repro.data.documents.Feature.as_term` and injected directly into a
document's term bag, bypassing tokenization.
"""

from __future__ import annotations

import re
from typing import Iterator

# Word characters plus internal hyphens/apostrophes ("wp-dc26", "o'brien").
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")

# Tokens longer than this are almost certainly junk (base64 blobs, URLs).
MAX_TOKEN_LENGTH = 48


def iter_tokens(text: str) -> Iterator[str]:
    """Yield lowercase tokens from ``text`` in order of appearance.

    >>> list(iter_tokens("Canon WP-DC26 Underwater Case!"))
    ['canon', 'wp-dc26', 'underwater', 'case']
    """
    for match in _TOKEN_RE.finditer(text.lower()):
        token = match.group(0)
        if len(token) <= MAX_TOKEN_LENGTH:
            yield token


def tokenize(text: str) -> list[str]:
    """Return the list of lowercase tokens in ``text``.

    This is the list form of :func:`iter_tokens`; use the iterator form when
    streaming large documents.
    """
    return list(iter_tokens(text))
