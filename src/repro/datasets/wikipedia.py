"""Synthetic Wikipedia corpus: the INEX-2009-collection stand-in.

For each ambiguous query term the generator emits documents in several
*senses* (see :data:`repro.datasets.vocab.WIKIPEDIA_SENSES`). A document
contains:

* the query term itself (so the seed query retrieves it),
* a sample of its sense's core vocabulary (repeated, Zipf-ish),
* a sample of the shared noise vocabulary, and
* a small *bleed* sample from other senses of the same term —

the last two reproduce the paper's observation that Wikipedia results are
verbose and weakly co-occurring, which depresses recall for label-style
baselines and makes clustering imperfect (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import Corpus
from repro.data.documents import make_text_document
from repro.datasets.vocab import NOISE_WORDS, WIKIPEDIA_SENSES, rare_word_pool
from repro.text.analyzer import Analyzer

_RARE_POOL = rare_word_pool()


def _sample_words(
    rng: np.random.Generator,
    pool: tuple[str, ...],
    n: int,
    zipf_alpha: float = 1.3,
) -> list[str]:
    """Sample ``n`` words with a Zipf-like skew over ``pool`` order."""
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    probs = ranks**-zipf_alpha
    probs /= probs.sum()
    idx = rng.choice(len(pool), size=n, p=probs)
    return [pool[i] for i in idx]


def sense_names(term: str) -> list[str]:
    """The sense labels defined for ``term``."""
    return [name for name, _ in WIKIPEDIA_SENSES[term]]


def build_wikipedia_corpus(
    seed: int = 0,
    docs_per_sense: int = 40,
    terms: list[str] | None = None,
    analyzer: Analyzer | None = None,
    sense_words: int = 26,
    noise_words: int = 18,
    bleed_words: int = 8,
    burst_words: int = 2,
    burst_tf: int = 3,
) -> Corpus:
    """Generate the Wikipedia corpus.

    Parameters
    ----------
    seed:
        RNG seed; corpus is a pure function of its arguments.
    docs_per_sense:
        Documents generated per (term, sense). The scalability experiment
        (Fig. 7) regenerates a single-term corpus with larger values.
    terms:
        Restrict generation to these ambiguous terms (default: all ten).
    sense_words / noise_words / bleed_words:
        Token counts per document drawn from the sense pool, the shared
        noise pool, and the other senses of the same term, respectively.
    burst_words / burst_tf:
        Each document also gets ``burst_words`` document-specific jargon
        terms, each repeated ``burst_tf`` times — the burstiness that makes
        popular-word summarizers favor "too specific" terms (§5.2.1).
    """
    rng = np.random.default_rng(seed)
    analyzer = analyzer or Analyzer()
    corpus = Corpus()
    selected = terms if terms is not None else sorted(WIKIPEDIA_SENSES)
    serial = 0
    for term in selected:
        senses = WIKIPEDIA_SENSES[term]
        for sense_idx, (sense_name, core) in enumerate(senses):
            other_pools = [
                words for i, (_, words) in enumerate(senses) if i != sense_idx
            ]
            bleed_pool = tuple(w for pool in other_pools for w in pool)
            for _ in range(docs_per_sense):
                serial += 1
                words: list[str] = []
                words.extend(term.split())  # the ambiguous term itself
                words.extend(_sample_words(rng, core, sense_words))
                words.extend(_sample_words(rng, NOISE_WORDS, noise_words, 1.05))
                if bleed_pool and bleed_words > 0:
                    words.extend(_sample_words(rng, bleed_pool, bleed_words))
                for _ in range(burst_words):
                    jargon = _RARE_POOL[int(rng.integers(len(_RARE_POOL)))]
                    words.extend([jargon] * burst_tf)
                rng.shuffle(words)  # type: ignore[arg-type]
                # Re-insert the term to guarantee retrieval even after shuffle
                # (shuffle only reorders; the guarantee is about presence).
                text = " ".join(words) + " " + term
                doc = make_text_document(
                    doc_id=f"wiki-{serial:05d}",
                    text=text,
                    analyzer=analyzer,
                    title=f"{term} ({sense_name}) {serial}",
                )
                corpus.add(doc)
    return corpus


def true_sense_labels(
    corpus: Corpus, term: str, docs_per_sense: int
) -> list[int]:
    """Ground-truth sense index per document of ``term`` (generation order).

    Only valid for corpora built with ``terms=[term]``; used by clustering
    quality tests.
    """
    n_senses = len(WIKIPEDIA_SENSES[term])
    labels: list[int] = []
    for sense_idx in range(n_senses):
        labels.extend([sense_idx] * docs_per_sense)
    if len(labels) != len(corpus):
        raise ValueError(
            f"corpus size {len(corpus)} != {n_senses} senses × {docs_per_sense}"
        )
    return labels
