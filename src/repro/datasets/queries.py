"""The 20 benchmark queries of Table 1, with per-query granularity k.

k follows the number of expanded queries the paper shows per query in
Figures 8-9 (2 for QW1/QS4/QS5/QS9/QS10, 3 otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataError


@dataclass(frozen=True)
class BenchmarkQuery:
    """One test query: id, text, owning dataset, cluster granularity."""

    qid: str
    text: str
    dataset: str  # "wikipedia" | "shopping"
    n_clusters: int

    def __post_init__(self) -> None:
        if self.dataset not in ("wikipedia", "shopping"):
            raise DataError(f"unknown dataset {self.dataset!r}")
        if self.n_clusters < 1:
            raise DataError("n_clusters must be >= 1")


WIKIPEDIA_QUERIES: tuple[BenchmarkQuery, ...] = (
    BenchmarkQuery("QW1", "san jose", "wikipedia", 2),
    BenchmarkQuery("QW2", "columbia", "wikipedia", 3),
    BenchmarkQuery("QW3", "cvs", "wikipedia", 3),
    BenchmarkQuery("QW4", "domino", "wikipedia", 3),
    BenchmarkQuery("QW5", "eclipse", "wikipedia", 3),
    BenchmarkQuery("QW6", "java", "wikipedia", 3),
    BenchmarkQuery("QW7", "cell", "wikipedia", 3),
    BenchmarkQuery("QW8", "rockets", "wikipedia", 3),
    BenchmarkQuery("QW9", "mouse", "wikipedia", 3),
    BenchmarkQuery("QW10", "sportsman williams", "wikipedia", 3),
)

SHOPPING_QUERIES: tuple[BenchmarkQuery, ...] = (
    BenchmarkQuery("QS1", "canon products", "shopping", 3),
    BenchmarkQuery("QS2", "networking products", "shopping", 3),
    BenchmarkQuery("QS3", "networking products routers", "shopping", 3),
    BenchmarkQuery("QS4", "tv", "shopping", 2),
    BenchmarkQuery("QS5", "tv plasma", "shopping", 2),
    BenchmarkQuery("QS6", "hp products", "shopping", 3),
    BenchmarkQuery("QS7", "memory", "shopping", 3),
    BenchmarkQuery("QS8", "memory 8gb", "shopping", 3),
    BenchmarkQuery("QS9", "memory internal", "shopping", 2),
    BenchmarkQuery("QS10", "printer", "shopping", 2),
)


def all_queries() -> tuple[BenchmarkQuery, ...]:
    """All 20 queries, shopping then Wikipedia (paper order: Table 1)."""
    return SHOPPING_QUERIES + WIKIPEDIA_QUERIES


def query_by_id(qid: str) -> BenchmarkQuery:
    """Look up a query by its Table 1 id (e.g. ``"QW2"``)."""
    for q in all_queries():
        if q.qid == qid:
            return q
    raise DataError(f"unknown query id: {qid!r}")
