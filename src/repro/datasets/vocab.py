"""Vocabulary pools for the synthetic corpora.

The Wikipedia stand-in needs, per ambiguous query term, several *senses*
with partially overlapping vocabularies plus a shared noise pool — that mix
is what makes clustering imperfect and recall hard, the two effects the
paper attributes to its Wikipedia data (§5.2). Words are chosen to survive
the stopword filter and to echo the expanded queries visible in the paper's
Figures 8-9 (e.g. *java* → server/code/island, *rockets* → nba/space).
"""

from __future__ import annotations

# Generic encyclopedia filler; none of these are stopwords. Sense documents
# mix these in so that no sense is trivially separable by vocabulary alone.
NOISE_WORDS: tuple[str, ...] = (
    "article", "history", "world", "name", "known", "early", "late", "called",
    "include", "including", "major", "part", "found", "used", "following",
    "area", "large", "small", "several", "became", "made", "years", "work",
    "life", "time", "people", "group", "system", "based", "developed",
    "released", "published", "popular", "important", "common", "general",
    "public", "national", "international", "local", "original", "second",
    "third", "first", "number", "list", "page", "reference", "external",
    "link", "source", "information", "example", "related", "section",
    "century", "modern", "form", "version", "official",
    "center", "north", "east", "west", "main", "total", "high", "long",
    "open", "free", "service", "member", "state", "country", "city",
)

# sense vocabularies per ambiguous Wikipedia term. Keys are query ids QW1-10.
# Each sense: (sense_name, core_words). Core words are sampled with high
# frequency inside the sense's documents; a little cross-sense bleed is added
# by the generator.
WIKIPEDIA_SENSES: dict[str, tuple[tuple[str, tuple[str, ...]], ...]] = {
    "san jose": (
        ("city", (
            "california", "downtown", "valley", "silicon", "population",
            "neighborhood", "location", "municipal", "mission", "guadalupe",
            "mayor", "county", "gold", "war",
        )),
        ("sports", (
            "player", "hockey", "shark", "team", "season", "arena", "league",
            "playoff", "scorer", "coach", "sabercat", "game", "goal",
        )),
    ),
    "columbia": (
        ("university", (
            "university", "college", "research", "campus", "student",
            "professor", "faculty", "school", "degree", "library",
            "manhattan", "academic",
        )),
        ("records", (
            "album", "record", "music", "artist", "release", "label",
            "studio", "song", "singer", "band", "essential", "producer",
        )),
        ("british", (
            "british", "mountain", "river", "canada", "province",
            "vancouver", "pacific", "basin", "glacier", "yakama", "plateau",
        )),
    ),
    "cvs": (
        ("pharmacy", (
            "pharmacy", "store", "prescription", "health", "retail",
            "caremark", "drug", "shop", "customer", "prince", "household",
            "chain",
        )),
        ("software", (
            "code", "repository", "software", "developer", "commit",
            "branch", "revision", "concurrent", "community", "project",
            "server", "gnuplot",
        )),
        ("settlement", (
            "township", "county", "settlement", "indiana", "webster",
            "southwest", "rural", "creek", "station", "road",
        )),
    ),
    "domino": (
        ("pizza", (
            "pizza", "restaurant", "food", "delivery", "franchise", "store",
            "menu", "chain", "order",
        )),
        ("album", (
            "album", "vocal", "music", "song", "record", "fats", "singer",
            "produce", "brand", "label",
        )),
        ("game", (
            "game", "tile", "player", "rule", "queen", "set", "bone",
            "spinner", "score", "effect",
        )),
    ),
    "eclipse": (
        ("software", (
            "software", "plugin", "ide", "model", "code", "platform",
            "core", "environment", "automate", "project", "tool",
            "framework",
        )),
        ("astronomy", (
            "solar", "lunar", "moon", "sun", "greek", "ancient", "shadow",
            "athenian", "march", "totality", "orbit", "observation",
        )),
        ("car", (
            "mitsubishi", "car", "engine", "coupe", "turbo", "drive",
            "wheel", "motor", "speed", "role", "video",
        )),
    ),
    "java": (
        ("server", (
            "server", "web", "application", "enterprise", "bean",
            "deployment", "container", "servlet", "platform", "blog",
        )),
        ("language", (
            "code", "language", "syntax", "compiler", "class", "method",
            "object", "virtual", "machine", "aspectj", "microsoft", "tool",
        )),
        ("island", (
            "island", "indonesia", "sea", "volcanic", "western", "south",
            "jakarta", "coffee", "molucca", "parallel", "coast",
        )),
    ),
    "cell": (
        ("biology", (
            "biological", "organism", "membrane", "protein", "nucleus",
            "tissue", "multicellular", "kinase", "division", "placent",
            "mosaic",
        )),
        ("battery", (
            "battery", "electrical", "voltage", "energy", "charge",
            "electrode", "chemical", "lithium", "power", "fuel",
        )),
        ("processor", (
            "processor", "express", "data", "computing", "architecture",
            "broadband", "chip", "playstation", "core", "bit",
        )),
    ),
    "rockets": (
        ("nba", (
            "nba", "basketball", "houston", "player", "season", "playoff",
            "guard", "maxwell", "vernon", "coach", "team", "point",
        )),
        ("space", (
            "launch", "space", "orbit", "propulsion", "missile", "engine",
            "fuel", "satellite", "stage", "dome", "israel", "anti",
        )),
        ("school", (
            "school", "team", "iowa", "football", "built", "rhode",
            "interior", "singer", "target", "cincinnati", "district",
        )),
    ),
    "mouse": (
        ("device", (
            "technique", "wheel", "interface", "button", "computer",
            "optical", "cursor", "scroll", "usb", "pointer",
        )),
        ("animal", (
            "scientific", "species", "rodent", "fossil", "birch",
            "hesperian", "habitat", "genus", "tail", "laboratory",
        )),
        ("cartoon", (
            "cartoon", "television", "animation", "character", "adventure",
            "mickey", "series", "episode", "mystery", "laugh",
        )),
    ),
    "sportsman williams": (
        ("football", (
            "football", "quarterback", "league", "smith", "point",
            "touchdown", "draft", "receiver", "club", "fire",
        )),
        ("baseball", (
            "baseball", "pitcher", "season", "launch", "inning", "batter",
            "stadium", "pennant", "boston", "salem",
        )),
        ("music", (
            "piano", "american", "barker", "stuart", "alliance", "youth",
            "gamebook", "highway", "kick", "high",
        )),
    ),
}

def rare_word_pool(size: int = 4000) -> tuple[str, ...]:
    """A deterministic pool of distinct plausible rare words ("jargon").

    Real encyclopedia articles are bursty: each contains a handful of
    article-specific terms (entity names, technical jargon) repeated several
    times — the paper's "multicellular" for QW7, "sabercat", "gnuplot".
    Popular-word summarizers like Data Clouds are drawn to such terms
    (high TF in one result × high IDF), which is why their suggestions can
    be "too specific" (§5.2.1).

    Words are composed from three syllable lists by mixed-radix indexing,
    so every word in the pool is unique by construction (up to the radix
    product, 16^3 = 4096).
    """
    first = ("ba", "ce", "di", "fo", "gu", "ka", "le", "mi",
             "no", "pu", "ra", "se", "ti", "vo", "zu", "bra")
    second = ("lan", "rem", "sit", "dox", "nul", "gar", "vex", "pol",
              "tur", "min", "cas", "ben", "rof", "lix", "dam", "kor")
    third = ("ia", "um", "or", "ex", "an", "is", "el", "on",
             "ar", "us", "it", "em", "ol", "ax", "en", "ur")
    limit = len(first) * len(second) * len(third)
    if size > limit:
        raise ValueError(f"pool size {size} exceeds {limit} unique words")
    words = []
    for i in range(size):
        a = first[i % len(first)]
        b = second[(i // len(first)) % len(second)]
        c = third[(i // (len(first) * len(second))) % len(third)]
        words.append(a + b + c)
    return tuple(words)


# --- shopping pools ---------------------------------------------------------

SHOPPING_BRANDS: dict[str, tuple[str, ...]] = {
    "camera": ("canon", "sony", "panasonic", "nikon"),
    "printer": ("canon", "hp", "epson"),
    "camcorder": ("canon", "sony", "panasonic"),
    "tv": ("toshiba", "lg", "samsung", "panasonic"),
    "routers": ("cisco", "netgear", "linksys", "d-link"),
    "switches": ("d-link", "cisco", "netgear"),
    "firewalls": ("d-link", "sonicwall", "cisco"),
    "laptop": ("hp", "dell", "toshiba"),
    "battery": ("hp", "dell"),
    "flashmemory": ("sandisk", "kingston", "transcend", "cavalry"),
    "harddrive": ("seagate", "hitachi", "cavalry", "transcend"),
    "ddr3": ("kingston", "transcend", "corsair"),
    "ddr2": ("kingston", "corsair"),
}

# Per-category attribute pools: attribute -> candidate values. The generator
# assigns each product one value per attribute (some attributes optional).
SHOPPING_ATTRIBUTES: dict[str, dict[str, tuple[str, ...]]] = {
    "camera": {
        "image resolution": ("10 mp", "12 mp", "14 mp", "4752 x 3168"),
        "optical zoom": ("4x", "10x", "12x"),
        "shutter speed": ("15 - 13,200 sec.", "30 - 1/2000 sec."),
    },
    "printer": {
        "printmethod": ("laser", "inkjet"),
        "condition": ("new", "refurbished"),
        "print speed": ("22 ppm", "30 ppm"),
    },
    "camcorder": {
        "optical zoom": ("20x", "32x", "41x"),
        "media format": ("flash card", "hard disc", "mini dv"),
    },
    "tv": {
        "displaytype": ("plasma", "lcd hdtv"),
        "displayarea": ('26"', '42"', '50"'),
        "resolution": ("720p", "1080p"),
    },
    "routers": {
        "rj-45 ports": ("4", "8"),
        "features": ("mac filtering", "vpn passthrough", "qos"),
        "wireless": ("802.11g", "802.11n"),
    },
    "switches": {
        "ports": ("8", "16", "24"),
        "speed": ("10/100", "gigabit"),
    },
    "firewalls": {
        "vlans": ("portshield", "tagged"),
        "form factor": ("desktop", "rack-mount"),
    },
    "laptop": {
        "cpu": ("core 2 duo", "turion", "atom"),
        "ram": ("2gb", "4gb"),
    },
    "battery": {
        "compatible models": ("pavilion", "inspiron", "presario"),
        "cells": ("6-cell", "9-cell"),
    },
    "flashmemory": {
        "memory size": ("4gb", "8gb", "16gb"),
        "format": ("sdhc", "compactflash", "usb drive"),
    },
    "harddrive": {
        "capacity": ("320gb", "500gb", "1tb"),
        "cache": ("8gb", "16mb", "32mb"),
        "interface": ("sata", "ide"),
    },
    "ddr3": {
        "memory size": ("2gb", "4gb", "8gb"),
        "speed": ("1066mhz", "1333mhz"),
    },
    "ddr2": {
        "memory size": ("1gb", "2gb", "8gb"),
        "speed": ("667mhz", "800mhz"),
    },
}

# Model-name families used in product titles (paper: pixma, imageclass,
# rangemax, integr...). Keyed by (category, brand); fallback key (category, "*").
SHOPPING_MODEL_FAMILIES: dict[tuple[str, str], tuple[str, ...]] = {
    ("printer", "canon"): ("pixma", "imageclass"),
    ("printer", "hp"): ("laserjet", "officejet"),
    ("printer", "epson"): ("stylus",),
    ("camera", "canon"): ("powershot", "eos"),
    ("camera", "sony"): ("cybershot", "alpha"),
    ("camera", "panasonic"): ("lumix",),
    ("camera", "nikon"): ("coolpix",),
    ("camcorder", "canon"): ("vixia",),
    ("camcorder", "sony"): ("handycam",),
    ("camcorder", "panasonic"): ("palmcorder",),
    ("routers", "cisco"): ("integr", "1841"),
    ("routers", "netgear"): ("rangemax",),
    ("routers", "linksys"): ("wrt",),
    ("routers", "d-link"): ("dir",),
    ("tv", "*"): ("viera", "bravia", "regza", "42lg70"),
    ("flashmemory", "*"): ("ultra", "extreme"),
    ("harddrive", "*"): ("barracuda", "deskstar"),
    ("ddr3", "*"): ("hyperx", "valueram"),
    ("ddr2", "*"): ("hyperx",),
    ("switches", "*"): ("des", "catalyst"),
    ("firewalls", "*"): ("vpn", "tz"),
    ("laptop", "*"): ("pavilion", "satellite", "inspiron"),
    ("battery", "*"): ("li-ion",),
}


def model_families(category: str, brand: str) -> tuple[str, ...]:
    """Model-name family pool for a (category, brand) pair."""
    return SHOPPING_MODEL_FAMILIES.get(
        (category, brand), SHOPPING_MODEL_FAMILIES.get((category, "*"), ("series",))
    )
