"""Synthetic query log powering the Google-stand-in baseline.

For every benchmark query the log contains popular refinements. They mix
(a) corpus-grounded refinements (a sense word that actually occurs in the
results — "java island"), and (b) popular-but-absent refinements modeled on
the paper's observations ("sony products" suggested for "canon products";
all QW8 suggestions being about space rockets). Popularity counts define
the suggestion order, exactly like log-frequency ranking in [2, 9].
"""

from __future__ import annotations

from repro.baselines.querylog import QueryLog

# (logged query, popularity count). Order is irrelevant; counts decide.
_LOG_ENTRIES: tuple[tuple[str, int], ...] = (
    # QW1 san jose — one corpus sense + popular travel refinements.
    ("san jose sharks hockey", 90),
    ("san jose attractions", 80),
    ("san jose costa rica", 70),
    # QW2 columbia
    ("columbia university", 95),
    ("columbia records album", 60),
    ("columbia country", 55),
    # QW3 cvs
    ("cvs pharmacy store", 90),
    ("cvs caremark", 70),
    ("cvs careers", 65),
    # QW4 domino
    ("domino pizza", 95),
    ("domino game", 60),
    ("domino movie", 50),
    # QW5 eclipse
    ("eclipse mitsubishi car", 80),
    ("eclipse solar", 75),
    ("eclipse ide software", 55),
    # QW6 java — the paper's good case: popular AND meaningful.
    ("java tutorials", 95),
    ("java games", 70),
    ("java island indonesia", 50),
    # QW7 cell
    ("cell biology", 85),
    ("cell theory", 65),
    ("cell animal", 55),
    # QW8 rockets — paper: all Google suggestions are space rockets,
    # none about the NBA team (not diverse).
    ("model rockets", 90),
    ("space rockets launch", 85),
    ("bottle rockets", 70),
    # QW9 mouse
    ("mouse pictures", 80),
    ("mouse breaker", 60),
    ("mouse cartoon", 50),
    # QW10 sportsman williams
    ("sportsman williams football", 70),
    ("sportsman williams baseball", 60),
    ("sportsman williams news", 50),
    # QS1 canon products — paper: Google suggests "Sony, products".
    ("canon products camera", 85),
    ("sony products", 75),
    ("canon products printer", 60),
    # QS2 networking products
    ("social networking products", 80),
    ("computer networking products routers", 60),
    ("networking products price", 50),
    # QS3 networking products routers
    ("networking products routers wireless", 70),
    ("networking products routers cisco", 60),
    ("networking products routers wood", 40),
    # QS4 tv
    ("tv guide", 90),
    ("tv plasma", 70),
    ("tv samsung lcd", 60),
    # QS5 tv plasma
    ("tv plasma vs lcd", 80),
    ("tv plasma panasonic", 60),
    ("tv plasma bestbuy", 50),
    # QS6 hp products
    ("hp products printer", 85),
    ("hp products laptop", 70),
    ("hp products corporation", 60),
    # QS7 memory
    ("human memory", 90),
    ("memory game", 75),
    ("computer memory ddr3", 55),
    # QS8 memory 8gb
    ("memory 8gb flashmemory card", 80),
    ("memory 8gb laptop", 65),
    ("memory 8gb ddr3", 55),
    # QS9 memory internal
    ("memory internal harddrive", 70),
    ("memory internal dell", 55),
    # QS10 printer
    ("printer canon", 85),
    ("printer hp laser", 75),
    ("printer wireless", 60),
)


def build_query_log() -> QueryLog:
    """The synthetic log used by all experiments."""
    log = QueryLog()
    log.record_many(_LOG_ENTRIES)
    return log
