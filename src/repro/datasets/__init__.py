"""Synthetic datasets standing in for the paper's corpora (DESIGN.md §4).

- :mod:`~repro.datasets.shopping` — electronics catalog shaped like the
  paper's circuitcity.com crawl (structured documents with feature
  triplets).
- :mod:`~repro.datasets.wikipedia` — multi-sense documents for the ten
  ambiguous Wikipedia query terms (text documents).
- :mod:`~repro.datasets.querylog_data` — a synthetic query log powering the
  Google-stand-in baseline.
- :mod:`~repro.datasets.queries` — the 20 benchmark queries of Table 1.

All generators are deterministic given their seed.
"""

from repro.datasets.queries import (
    BenchmarkQuery,
    SHOPPING_QUERIES,
    WIKIPEDIA_QUERIES,
    all_queries,
    query_by_id,
)
from repro.datasets.querylog_data import build_query_log
from repro.datasets.shopping import build_shopping_corpus
from repro.datasets.wikipedia import build_wikipedia_corpus

__all__ = [
    "BenchmarkQuery",
    "SHOPPING_QUERIES",
    "WIKIPEDIA_QUERIES",
    "all_queries",
    "build_query_log",
    "build_shopping_corpus",
    "build_wikipedia_corpus",
    "query_by_id",
]
