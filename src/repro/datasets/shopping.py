"""Synthetic shopping corpus: the circuitcity.com-crawl stand-in.

Each product is a structured document with a title, a category, and feature
triplets (§C: "Each product has a title, a category, and a set of
features"). Product counts per category are skewed so the benchmark queries
return result sets shaped like the paper's: most QS queries get tens of
results, while QS8-like "memory 8gb" workloads get hundreds (the paper's
QS8 has 557 results and 464 distinct keywords in its largest cluster).

Every product document contains the token ``products`` (via its boilerplate
text) so queries like "Canon Products" work under AND semantics, and the
token of its category and brand, so the expanded queries the paper shows —
feature triplets like ``canonproducts:category:camcorders`` or plain words
— are both reachable.
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import Corpus
from repro.data.documents import Feature, make_structured_document
from repro.datasets.vocab import SHOPPING_ATTRIBUTES, SHOPPING_BRANDS, model_families
from repro.text.analyzer import Analyzer

# Products generated per (category, brand). Tuned so that:
#  - "canon products" → ~60 results in 3 category clusters (QS1)
#  - "memory 8gb"     → hundreds of results (QS8's heavy workload)
#  - every QS query retrieves enough results to cluster meaningfully.
_COUNTS_PER_BRAND: dict[str, int] = {
    "camera": 18,
    "printer": 16,
    "camcorder": 12,
    "tv": 16,
    "routers": 14,
    "switches": 10,
    "firewalls": 8,
    "laptop": 12,
    "battery": 10,
    "flashmemory": 80,
    "harddrive": 60,
    "ddr3": 60,
    "ddr2": 30,
}

# Categories whose products belong to the "memory" entity group.
_MEMORY_CATEGORIES = frozenset({"flashmemory", "harddrive", "ddr3", "ddr2"})
_NETWORKING_CATEGORIES = frozenset({"routers", "switches", "firewalls"})


def _entity_for(category: str, brand: str) -> str:
    """The feature-entity name, echoing the paper's triplets.

    The paper shows entities like ``canonproducts``, ``networking products``
    and ``memory`` — brand-group or category-group oriented. We keep one
    deterministic rule: memory categories share the ``memory`` entity,
    networking categories share ``networking products``, everything else is
    ``<brand>products``.
    """
    if category in _MEMORY_CATEGORIES:
        return "memory"
    if category in _NETWORKING_CATEGORIES:
        return "networking products"
    return f"{brand}products"


def _category_feature_value(category: str) -> str:
    return category


def _boilerplate(category: str, brand: str) -> str:
    """Tokens shared by large product groups, enabling the QS queries."""
    words = ["electronics", "products", brand, category]
    if category in _MEMORY_CATEGORIES:
        words.append("memory")
        if category == "harddrive":
            words.extend(["internal", "storage", "drive"])
        if category in ("ddr3", "ddr2"):
            words.extend(["module", "internal"])
        if category == "flashmemory":
            words.extend(["flash", "card"])
    if category in _NETWORKING_CATEGORIES:
        words.append("networking")
    if category == "tv":
        words.append("television")
    if category == "printer":
        words.append("printing")
    return " ".join(words)


def build_shopping_corpus(
    seed: int = 0,
    scale: float = 1.0,
    analyzer: Analyzer | None = None,
) -> Corpus:
    """Generate the shopping corpus.

    Parameters
    ----------
    seed:
        RNG seed; the corpus is a pure function of (seed, scale).
    scale:
        Multiplies the per-(category, brand) product counts; 1.0 gives
        ~1400 products.
    analyzer:
        Analyzer used for title/value tokenization (share it with the
        search engine).
    """
    rng = np.random.default_rng(seed)
    analyzer = analyzer or Analyzer()
    corpus = Corpus()
    serial = 0
    for category in sorted(_COUNTS_PER_BRAND):
        brands = SHOPPING_BRANDS[category]
        count = max(int(round(_COUNTS_PER_BRAND[category] * scale)), 1)
        attrs = SHOPPING_ATTRIBUTES[category]
        for brand in brands:
            families = model_families(category, brand)
            for _ in range(count):
                serial += 1
                family = families[int(rng.integers(len(families)))]
                model_no = f"{family}-{int(rng.integers(100, 9999))}"
                entity = _entity_for(category, brand)
                features = [
                    Feature(entity, "category", _category_feature_value(category)),
                    Feature(entity, "brand", brand),
                ]
                for attribute, values in sorted(attrs.items()):
                    # Most attributes always present; a few dropped at random
                    # so feature sets are not perfectly uniform.
                    if rng.random() < 0.15:
                        continue
                    value = values[int(rng.integers(len(values)))]
                    features.append(Feature(category, attribute, value))
                title = f"{brand} {family} {model_no} {category}"
                doc = make_structured_document(
                    doc_id=f"shop-{serial:05d}",
                    features=features,
                    analyzer=analyzer,
                    title=title,
                    extra_text=_boilerplate(category, brand),
                )
                corpus.add(doc)
    return corpus
