"""Thread-safe bounded LRU cache with optional TTL — shared by every tier.

One implementation backs all three caching tiers in the library:
:class:`~repro.api.Session`'s retrieval and candidate-statistics caches
(``ttl=None``) and the serving layer's response cache
(:mod:`repro.serve.cache`, which re-exports this class). Keeping a
single locked implementation matters because the caches are shared
across threads — ``expand_many`` workers, ``/batch`` fan-out, and
concurrent HTTP handlers all read and write the same objects, and LRU
reads *mutate* (they refresh recency), so an unlocked variant would
race.

Three ways an entry leaves the cache, each separately counted:

* **eviction** — capacity pressure; the least-recently-used entry goes;
* **expiration** — the entry outlived its TTL (checked lazily on
  lookup, and sweepable via :meth:`LRUTTLCache.purge_expired`);
* **invalidation** — an explicit :meth:`LRUTTLCache.invalidate` /
  :meth:`LRUTTLCache.clear` call (e.g. from the
  :class:`~repro.index.dynamic.DynamicIndex` mutation listener the
  session pool installs).

The clock is injectable for tests (defaults to ``time.monotonic``).
"""

from __future__ import annotations

import time
from threading import Lock
from typing import Any, Callable, Hashable, Iterable

#: ``ttl=None`` means entries never expire (capacity is still enforced).
NO_TTL = None


class LRUTTLCache:
    """A bounded, thread-safe LRU cache with optional per-cache TTL.

    Besides the explicit :meth:`lookup`/:meth:`put` API, the cache
    supports ``get``/``[]=``/``in``/``len`` so call sites that treat it
    as a mutable mapping (the pipeline's candidate stage) work
    unchanged.

    Parameters
    ----------
    maxsize:
        Entry capacity; the least-recently-used entry is evicted beyond it.
    ttl:
        Seconds an entry stays servable, or ``None`` for no expiry.
    clock:
        Zero-argument monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: float | None = NO_TTL,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if int(maxsize) < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive or None, got {ttl}")
        self._maxsize = int(maxsize)
        self._ttl = ttl
        self._clock = clock
        self._lock = Lock()
        # key -> (value, expires_at | None); dict order is recency order.
        self._entries: dict[Hashable, tuple[Any, float | None]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0

    # -- core operations -----------------------------------------------------

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """``(hit, value)``; a miss returns ``(False, None)``.

        The two-tuple (rather than a sentinel default) keeps cached
        falsy values unambiguous.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return False, None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return False, None
            # Refresh recency: re-insert at the most-recent end.
            del self._entries[key]
            self._entries[key] = entry
            self._hits += 1
            return True, value

    def get(self, key: Hashable, default: Any = None) -> Any:
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: Hashable, value: Any) -> None:
        expires_at = None if self._ttl is None else self._clock() + self._ttl
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (value, expires_at)
            while len(self._entries) > self._maxsize:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._evictions += 1

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _, expires_at = entry
            return expires_at is None or self._clock() < expires_at

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- invalidation --------------------------------------------------------

    def invalidate(
        self, predicate: Callable[[Hashable], bool] | None = None
    ) -> int:
        """Drop entries whose key matches ``predicate`` (all when ``None``).

        Returns the number of entries removed; they count as
        *invalidations*, not evictions.
        """
        with self._lock:
            if predicate is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                doomed = [k for k in self._entries if predicate(k)]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
            self._invalidations += removed
            return removed

    def clear(self) -> None:
        """Drop everything (counts as invalidations)."""
        self.invalidate()

    def invalidate_prefix(self, prefix: Iterable[Any]) -> int:
        """Drop every tuple key starting with ``prefix``.

        Serving keys lead with the configuration name, so
        ``invalidate_prefix((config_name,))`` clears one configuration's
        cached responses after its index mutates.
        """
        lead = tuple(prefix)

        def matches(key: Hashable) -> bool:
            return isinstance(key, tuple) and key[: len(lead)] == lead

        return self.invalidate(matches)

    def purge_expired(self) -> int:
        """Eagerly remove expired entries (lookups also do this lazily)."""
        if self._ttl is None:
            return 0
        now = self._clock()
        with self._lock:
            doomed = [
                k
                for k, (_, expires_at) in self._entries.items()
                if expires_at is not None and now >= expires_at
            ]
            for key in doomed:
                del self._entries[key]
            self._expirations += len(doomed)
            return len(doomed)

    # -- introspection -------------------------------------------------------

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def ttl(self) -> float | None:
        return self._ttl

    def stats(self) -> dict[str, Any]:
        """Counters + occupancy, JSON-ready (the ``/metrics`` shape)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "capacity": self._maxsize,
                "ttl_seconds": self._ttl,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "invalidations": self._invalidations,
            }
