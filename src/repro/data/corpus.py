"""Corpus: an ordered, id-addressable collection of documents."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.data.documents import Document
from repro.errors import DataError


class Corpus:
    """An immutable-after-construction collection of :class:`Document`.

    Documents keep their insertion order (document position doubles as the
    integer id used by the index and the clustering layer). Duplicate
    ``doc_id`` values are rejected.
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._docs: list[Document] = []
        self._by_id: dict[str, int] = {}
        for doc in documents:
            self.add(doc)

    def add(self, doc: Document) -> int:
        """Append ``doc``; return its integer position."""
        if doc.doc_id in self._by_id:
            raise DataError(f"duplicate doc_id: {doc.doc_id!r}")
        pos = len(self._docs)
        self._docs.append(doc)
        self._by_id[doc.doc_id] = pos
        return pos

    def replace(self, doc: Document) -> int:
        """Swap the document stored under ``doc.doc_id``; return its position.

        The position is unchanged — document identity is the integer
        position everywhere in the library, and the durable store
        (:mod:`repro.store`) keeps ``doc_id -> position`` stable across
        upserts, so an adopted corpus must too. Unknown ids raise.
        """
        try:
            pos = self._by_id[doc.doc_id]
        except KeyError:
            raise DataError(f"unknown doc_id: {doc.doc_id!r}") from None
        self._docs[pos] = doc
        return pos

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._by_id

    def __getitem__(self, pos: int) -> Document:
        return self._docs[pos]

    def get(self, doc_id: str) -> Document:
        """Return the document with the given string id."""
        try:
            return self._docs[self._by_id[doc_id]]
        except KeyError:
            raise DataError(f"unknown doc_id: {doc_id!r}") from None

    def position(self, doc_id: str) -> int:
        """Return the integer position of ``doc_id``."""
        try:
            return self._by_id[doc_id]
        except KeyError:
            raise DataError(f"unknown doc_id: {doc_id!r}") from None

    def doc_ids(self) -> list[str]:
        """All document ids in insertion order."""
        return [d.doc_id for d in self._docs]

    def vocabulary(self) -> set[str]:
        """The union of all documents' distinct terms."""
        vocab: set[str] = set()
        for doc in self._docs:
            vocab.update(doc.terms)
        return vocab

    def subset(self, doc_ids: Iterable[str]) -> "Corpus":
        """A new corpus containing the given documents, in corpus order."""
        wanted = set(doc_ids)
        missing = wanted - self._by_id.keys()
        if missing:
            raise DataError(f"unknown doc_ids: {sorted(missing)!r}")
        return Corpus(d for d in self._docs if d.doc_id in wanted)
