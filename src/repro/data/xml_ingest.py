"""Ingesting document-centric XML (the paper's Wikipedia corpus is INEX XML).

The paper's Wikipedia dataset is "a collection of document-centric XML
files used in INEX 2009" (§C). This module turns such XML into the
library's document model:

* leaf elements with text become features ``(root:path:text)`` — the
  structured view, matching how [13] models XML fragments;
* all text content is additionally analyzed into the term bag — the text
  view used by retrieval and clustering.

Parsing uses the standard library's ElementTree (no external deps) and is
deliberately forgiving: attributes become features too, mixed content is
concatenated, namespaces are stripped.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import DataError
from repro.text.analyzer import Analyzer

MAX_FEATURE_VALUE_WORDS = 8


def _strip_namespace(tag: str) -> str:
    return tag.rsplit("}", 1)[-1] if "}" in tag else tag


def _walk(element: ET.Element, path: list[str], fields: dict[str, str]) -> str:
    """Collect leaf fields and return all text below ``element``."""
    tag = _strip_namespace(element.tag).lower()
    here = path + [tag]
    for name, value in element.attrib.items():
        clean = " ".join(str(value).split())
        if clean:
            fields[":".join(here + ["@" + name.lower()])] = clean
    texts: list[str] = []
    own = (element.text or "").strip()
    if own:
        texts.append(own)
    has_children = False
    for child in element:
        has_children = True
        texts.append(_walk(child, here, fields))
        tail = (child.tail or "").strip()
        if tail:
            texts.append(tail)
    joined = " ".join(t for t in texts if t)
    if not has_children and own:
        # Leaf element: short text becomes a feature value.
        words = own.split()
        if len(words) <= MAX_FEATURE_VALUE_WORDS:
            fields[":".join(here)] = " ".join(words)
    return joined


def document_from_xml(
    doc_id: str,
    xml_text: str,
    analyzer: Analyzer | None = None,
    title: str = "",
) -> Document:
    """Parse one XML string into a structured :class:`Document`.

    Raises :class:`~repro.errors.DataError` on malformed XML or documents
    with no text at all.
    """
    analyzer = analyzer or Analyzer()
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DataError(f"malformed XML for {doc_id!r}: {exc}") from None
    fields: dict[str, str] = {}
    text = _walk(root, [], fields)
    counts: Counter[str] = Counter(analyzer.analyze(text))
    for key, value in fields.items():
        counts[f"{key.lower()}:{' '.join(value.lower().split())}"] += 1
    if title:
        counts.update(analyzer.analyze(title))
    if not counts:
        raise DataError(f"XML document {doc_id!r} has no indexable content")
    if not title:
        title_field = next(
            (v for k, v in fields.items() if k.split(":")[-1] == "title"), ""
        )
        title = title_field
    return Document(
        doc_id=doc_id,
        terms=dict(counts),
        kind="structured" if fields else "text",
        title=title,
        fields=fields,
    )


def corpus_from_xml(
    documents: dict[str, str],
    analyzer: Analyzer | None = None,
) -> Corpus:
    """Build a corpus from ``{doc_id: xml_string}``, in sorted id order."""
    analyzer = analyzer or Analyzer()
    corpus = Corpus()
    for doc_id in sorted(documents):
        corpus.add(document_from_xml(doc_id, documents[doc_id], analyzer))
    return corpus
