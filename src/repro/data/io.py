"""JSONL persistence for corpora.

One JSON object per line, schema::

    {"doc_id": ..., "kind": "text"|"structured", "title": ...,
     "terms": {term: count, ...}, "fields": {entity:attribute: value, ...}}

The term bag is persisted (not the raw text) so a corpus round-trips exactly
regardless of analyzer configuration.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import DataError

PathLike = Union[str, Path]


def document_to_record(doc: Document) -> dict:
    """Serialize a document to a plain dict."""
    return {
        "doc_id": doc.doc_id,
        "kind": doc.kind,
        "title": doc.title,
        "terms": dict(doc.terms),
        "fields": dict(doc.fields),
    }


def document_from_record(record: dict) -> Document:
    """Deserialize a document from a dict produced by :func:`document_to_record`."""
    try:
        return Document(
            doc_id=record["doc_id"],
            terms={str(t): int(c) for t, c in record["terms"].items()},
            kind=record.get("kind", "text"),
            title=record.get("title", ""),
            fields=dict(record.get("fields", {})),
        )
    except KeyError as exc:
        raise DataError(f"record missing field {exc}") from exc


def save_corpus_jsonl(corpus: Corpus, path: PathLike) -> None:
    """Write ``corpus`` to ``path`` as JSON Lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for doc in corpus:
            fh.write(json.dumps(document_to_record(doc), sort_keys=True))
            fh.write("\n")


def load_corpus_jsonl(path: PathLike) -> Corpus:
    """Load a corpus previously written by :func:`save_corpus_jsonl`."""
    path = Path(path)
    corpus = Corpus()
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(f"{path}:{line_no}: invalid JSON") from exc
            corpus.add(document_from_record(record))
    return corpus
