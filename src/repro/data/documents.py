"""Document model: text documents and structured documents.

A *result* in the paper is a text document or a fragment of a structured
document that contains all query keywords (§2). We represent every document
as a bag of terms plus optional metadata:

* text documents: terms come from analyzing the body text;
* structured documents: terms come from analyzing the title/category plus
  one canonical term per feature triplet (``entity:attribute:value``), so a
  query can contain either plain words or whole triplets — exactly the two
  query styles visible in the paper's Figures 8-9.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import DataError
from repro.text.analyzer import Analyzer


@dataclass(frozen=True, order=True)
class Feature:
    """An ``entity:attribute:value`` triplet, e.g. ``product:name:iPad``.

    Features are the unit of structure for shopping-style data [13]. The
    canonical term form (:meth:`as_term`) is what gets indexed and what a
    structured expanded query contains.
    """

    entity: str
    attribute: str
    value: str

    def __post_init__(self) -> None:
        for part_name in ("entity", "attribute", "value"):
            part = getattr(self, part_name)
            if not part or not str(part).strip():
                raise DataError(f"Feature {part_name} must be non-empty")

    def as_term(self) -> str:
        """Canonical indexed form: lowercased, colon-joined, spaces squeezed."""

        def norm(s: str) -> str:
            return " ".join(str(s).lower().split())

        return f"{norm(self.entity)}:{norm(self.attribute)}:{norm(self.value)}"

    @classmethod
    def from_term(cls, term: str) -> "Feature":
        """Parse a canonical term back into a Feature.

        Raises :class:`DataError` if the term does not have exactly three
        colon-separated parts.
        """
        parts = term.split(":")
        if len(parts) != 3:
            raise DataError(f"not a feature term: {term!r}")
        return cls(*parts)


@dataclass(frozen=True)
class Document:
    """A retrievable unit: id, term bag, optional metadata.

    ``terms`` maps each normalized term to its frequency in the document.
    ``kind`` is ``"text"`` or ``"structured"``. ``title`` and ``fields`` are
    presentation metadata (used by examples and reporting, never by the
    algorithms, which only see ``terms``).
    """

    doc_id: str
    terms: Mapping[str, int]
    kind: str = "text"
    title: str = ""
    fields: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise DataError("doc_id must be non-empty")
        if self.kind not in ("text", "structured"):
            raise DataError(f"unknown document kind: {self.kind!r}")
        if not self.terms:
            raise DataError(f"document {self.doc_id!r} has no terms")
        for term, count in self.terms.items():
            if not term:
                raise DataError(f"document {self.doc_id!r} has an empty term")
            if count <= 0:
                raise DataError(
                    f"document {self.doc_id!r} term {term!r} has count {count}"
                )

    @property
    def term_set(self) -> frozenset[str]:
        """The distinct terms of the document."""
        return frozenset(self.terms)

    def contains_all(self, terms: Iterable[str]) -> bool:
        """AND semantics: True if every term occurs in this document."""
        return all(t in self.terms for t in terms)

    def contains_any(self, terms: Iterable[str]) -> bool:
        """OR semantics: True if at least one term occurs in this document."""
        return any(t in self.terms for t in terms)

    def length(self) -> int:
        """Total number of term occurrences (bag size)."""
        return sum(self.terms.values())

    def to_dict(self) -> dict:
        """JSON-ready form (see repro.api.schema for the schema contract)."""
        from repro.api import schema

        return schema.document_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Document":
        """Inverse of :meth:`to_dict`."""
        from repro.api import schema

        return schema.document_from_dict(payload)


def make_text_document(
    doc_id: str,
    text: str,
    analyzer: Analyzer | None = None,
    title: str = "",
) -> Document:
    """Build a text :class:`Document` by analyzing ``text``."""
    analyzer = analyzer or Analyzer()
    counts = analyzer.term_counts(text)
    if title:
        counts.update(analyzer.analyze(title))
    if not counts:
        raise DataError(f"document {doc_id!r} analyzed to zero terms")
    return Document(doc_id=doc_id, terms=dict(counts), kind="text", title=title)


def document_from_payload(
    payload: Mapping,
    analyzer: Analyzer | None = None,
) -> Document:
    """A :class:`Document` from a JSON-shaped mapping, two accepted forms.

    The schema form (``doc_id`` + ``terms`` + optional
    ``kind``/``title``/``fields``) round-trips through
    :mod:`repro.api.schema`; the convenience form (``doc_id`` +
    ``text`` + optional ``title``) analyzes the text with ``analyzer``.
    The single parser behind both ingestion fronts — the serving
    layer's ``/ingest`` endpoint and the CLI's ``--jsonl`` loader — so
    the accepted payloads cannot drift apart. Malformed payloads raise
    :class:`~repro.errors.DataError` (or
    :class:`~repro.errors.SchemaError` from the schema form).
    """
    if not isinstance(payload, Mapping):
        raise DataError("document payload must be a JSON object")
    if "terms" in payload:
        from repro.api import schema

        return schema.document_from_dict(payload)
    if "text" in payload:
        doc_id = payload.get("doc_id")
        if not doc_id:
            raise DataError("document payload needs a 'doc_id'")
        return make_text_document(
            str(doc_id),
            str(payload["text"]),
            analyzer=analyzer,
            title=str(payload.get("title", "")),
        )
    raise DataError("document payload needs 'terms' or 'text'")


def make_structured_document(
    doc_id: str,
    features: Iterable[Feature],
    analyzer: Analyzer | None = None,
    title: str = "",
    extra_text: str = "",
) -> Document:
    """Build a structured :class:`Document` from feature triplets.

    Each feature contributes (a) its canonical triplet term and (b) the
    analyzed tokens of its value, so that both query styles of the paper
    ("Memory: category: harddrive" and plain "harddrive") retrieve it.
    """
    analyzer = analyzer or Analyzer()
    counts: Counter[str] = Counter()
    feats = list(features)
    if not feats:
        raise DataError(f"structured document {doc_id!r} needs >= 1 feature")
    fields: dict[str, str] = {}
    for feat in feats:
        counts[feat.as_term()] += 1
        counts.update(analyzer.analyze(feat.value))
        counts.update(analyzer.analyze(feat.attribute))
        fields[f"{feat.entity}:{feat.attribute}"] = feat.value
    if title:
        counts.update(analyzer.analyze(title))
    if extra_text:
        counts.update(analyzer.analyze(extra_text))
    return Document(
        doc_id=doc_id,
        terms=dict(counts),
        kind="structured",
        title=title,
        fields=fields,
    )
