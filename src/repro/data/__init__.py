"""Data model: documents, feature triplets, corpora, persistence.

The paper (§2) models a text document as a set of words and a structured
document as a set of ``(entity:attribute:value)`` feature triplets [13].
Both are unified here under :class:`~repro.data.documents.Document`, whose
``terms`` bag is what every downstream subsystem consumes.
"""

from repro.data.corpus import Corpus
from repro.data.documents import Document, Feature, make_structured_document, make_text_document
from repro.data.io import load_corpus_jsonl, save_corpus_jsonl
from repro.data.stats import CorpusStats, corpus_stats
from repro.data.xml_ingest import corpus_from_xml, document_from_xml

__all__ = [
    "Corpus",
    "CorpusStats",
    "Document",
    "Feature",
    "corpus_from_xml",
    "corpus_stats",
    "document_from_xml",
    "load_corpus_jsonl",
    "make_structured_document",
    "make_text_document",
    "save_corpus_jsonl",
]
