"""Corpus statistics: vocabulary growth and term-frequency distributions.

Sanity instruments for the synthetic corpora (and any user corpus): real
text obeys Zipf's law (rank × frequency ≈ constant) and Heaps' law
(vocabulary ≈ K · tokens^β with β < 1). The dataset tests use these to
check that the generators produce text-like statistics rather than
uniform noise — which matters because TF-IDF, clustering, and the
candidate-keyword selection all assume a skewed term distribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.data.corpus import Corpus
from repro.errors import DataError


@dataclass(frozen=True)
class CorpusStats:
    """Aggregate statistics of a corpus."""

    n_documents: int
    n_tokens: int
    vocabulary_size: int
    mean_doc_length: float
    zipf_slope: float  # log-log slope of the rank/frequency curve
    heaps_beta: float  # vocabulary-growth exponent

    @property
    def type_token_ratio(self) -> float:
        return self.vocabulary_size / max(self.n_tokens, 1)


def term_frequencies(corpus: Corpus) -> Counter:
    """Collection frequency of every term."""
    counts: Counter[str] = Counter()
    for doc in corpus:
        for term, tf in doc.terms.items():
            counts[term] += tf
    return counts


def zipf_slope(frequencies: Counter, top_n: int = 200) -> float:
    """Least-squares slope of log(freq) vs log(rank) over the top terms.

    Zipfian text gives a slope near -1; uniform term usage gives ~0. At
    least 5 distinct terms are required.
    """
    freqs = sorted(frequencies.values(), reverse=True)[:top_n]
    if len(freqs) < 5:
        raise DataError(f"need >= 5 distinct terms, got {len(freqs)}")
    ranks = np.arange(1, len(freqs) + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(np.asarray(freqs, dtype=np.float64))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def heaps_beta(corpus: Corpus) -> float:
    """Vocabulary-growth exponent β from V(n) ≈ K n^β.

    Estimated by regressing log V against log n at document boundaries.
    Sub-linear growth (β < 1) is the text-like regime; β ≈ 1 means every
    document brings mostly new vocabulary (no reuse).
    """
    if len(corpus) < 3:
        raise DataError("need >= 3 documents for Heaps estimation")
    seen: set[str] = set()
    tokens = 0
    xs: list[float] = []
    ys: list[float] = []
    for doc in corpus:
        tokens += doc.length()
        seen.update(doc.terms)
        xs.append(np.log(tokens))
        ys.append(np.log(len(seen)))
    beta, _ = np.polyfit(np.asarray(xs), np.asarray(ys), 1)
    return float(beta)


def corpus_stats(corpus: Corpus) -> CorpusStats:
    """All statistics in one pass-and-a-bit."""
    if len(corpus) == 0:
        raise DataError("cannot compute statistics of an empty corpus")
    freqs = term_frequencies(corpus)
    n_tokens = sum(freqs.values())
    return CorpusStats(
        n_documents=len(corpus),
        n_tokens=n_tokens,
        vocabulary_size=len(freqs),
        mean_doc_length=n_tokens / len(corpus),
        zipf_slope=zipf_slope(freqs),
        heaps_beta=heaps_beta(corpus),
    )
