"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """A document, feature, or corpus was malformed."""


class IndexError_(ReproError):
    """An index operation failed (unknown document, frozen index, ...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``repro.IndexingError``.
    """


class QueryError(ReproError):
    """A query was empty or referenced unknown terms where that is illegal."""


class ClusteringError(ReproError):
    """Clustering could not be performed (e.g. k larger than point count)."""


class ExpansionError(ReproError):
    """Query expansion failed (e.g. empty cluster, inconsistent universe)."""


class RegistryError(ConfigError):
    """A component registry lookup or registration failed (unknown name)."""


class SchemaError(ReproError):
    """A serialized payload had the wrong shape, kind, or schema version."""


class PipelineError(ConfigError):
    """A pipeline was mis-composed (unknown stage, bad insertion anchor)."""


class StoreError(ReproError):
    """A durable-store operation failed (bad path, schema mismatch, ...)."""


class FeedError(ReproError):
    """A changefeed operation failed (bad cursor, bad range, closed feed).

    Gap detection is *not* an error: :meth:`Changefeed.read_since
    <repro.feed.Changefeed.read_since>` reports a truncated prefix as
    ``FeedBatch.gap`` so tailers can fall back to a snapshot and resume.
    """


class ServeError(ReproError):
    """A serving-layer operation failed (bad request, bad parameter, ...)."""


class ClusterError(ServeError):
    """A cluster-tier operation failed (routing, transport, replica spawn).

    A :class:`ServeError` subclass so embedders of the serving layer can
    keep catching one family; the coordinator maps transport failures to
    failover or 503 before they ever reach a client.
    """


class UnknownConfigError(ServeError):
    """A request named a serving configuration that does not exist.

    Its own type so the HTTP layer can map it to 404 (not found) while
    every other :class:`ServeError` stays 400 (bad request).
    """


class TenancyError(ServeError):
    """A multi-tenancy operation failed (bad spec, missing tenant, ...)."""


class UnknownTenantError(TenancyError):
    """A request named a tenant that is not in the registry.

    Its own type so the HTTP layer can map it to 404 while every other
    :class:`TenancyError` stays 400 (bad request).
    """


class TenantAccessError(TenancyError):
    """A tenant addressed a serving configuration it is not allowed to use.

    Mapped to HTTP 403: the config may exist, but not for this tenant.
    """


class QuotaExceededError(TenancyError):
    """A write would push a tenant past its storage quota.

    Raised *before* any row is written, so a rejected batch leaves the
    store's generation and document count untouched. Mapped to HTTP 413.
    """


# Public aliases with friendlier names.
IndexingError = IndexError_
