"""Result differentiation comparator ([18], the authors' prior work).

[18] differentiates a set of user-selected results by choosing feature
*types* — ``(entity, attribute)`` pairs shared by all results — whose
values (or value distributions) differ across the results. The paper's
related-work section explains why that technique does not transfer to
query expansion:

* a differentiating feature type is chosen because its *values* differ,
  but the type keyword itself retrieves every result ("both stores can be
  retrieved by keyword 'outwear'") — no classification power;
* it requires feature types *shared by all results*, which ambiguous
  queries with heterogeneous result schemas do not have — "generally
  inapplicable".

This module implements the technique faithfully enough to exhibit both
failure modes on the harness's shared axes.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.baselines.base import BaselineSuggestions
from repro.data.documents import Document
from repro.errors import ConfigError


def shared_feature_types(documents: Sequence[Document]) -> list[str]:
    """Feature types (``entity:attribute`` keys) present in *every* result.

    Empty for any result list containing a plain text document — the
    inapplicability case.
    """
    if not documents:
        return []
    shared: set[str] | None = None
    for doc in documents:
        keys = set(doc.fields)
        shared = keys if shared is None else (shared & keys)
        if not shared:
            return []
    return sorted(shared or set())


def value_entropy(documents: Sequence[Document], key: str) -> float:
    """Shannon entropy (bits) of the value distribution of ``key``.

    The differentiation criterion: higher entropy = results differ more on
    this feature type. Documents lacking the key contribute nothing (the
    caller restricts to shared keys anyway).
    """
    counts = Counter(
        " ".join(str(doc.fields[key]).lower().split())
        for doc in documents
        if key in doc.fields
    )
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


class ResultDifferentiation:
    """[18] as a query-expansion baseline: differentiating types as queries.

    Ranks the shared feature types by value entropy and emits one query
    per top type: the seed terms plus the attribute-name keyword (the
    form a user would type). Because every result *has* the attribute,
    each such query retrieves (nearly) the whole result set — the
    precision failure the paper describes.
    """

    name = "Differentiation"

    def __init__(self, n_queries: int = 3) -> None:
        if n_queries < 1:
            raise ConfigError(f"n_queries must be >= 1, got {n_queries}")
        self._n_queries = n_queries

    def differentiating_types(
        self, documents: Sequence[Document]
    ) -> list[tuple[str, float]]:
        """Shared feature types with entropies, most differentiating first."""
        shared = shared_feature_types(documents)
        scored = [(key, value_entropy(documents, key)) for key in shared]
        scored = [(k, e) for k, e in scored if e > 0.0]
        scored.sort(key=lambda ke: (-ke[1], ke[0]))
        return scored

    def suggest(
        self,
        engine,
        seed_query: str,
        documents: Sequence[Document],
    ) -> BaselineSuggestions:
        """Emit type-keyword queries for the top differentiating types.

        ``engine`` supplies query parsing (the analyzer); suggestion terms
        are the analyzed attribute names so they match indexed tokens.
        """
        seed_terms = tuple(engine.parse(seed_query))
        scored = self.differentiating_types(documents)
        queries: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        for key, _ in scored:
            attribute = key.split(":", 1)[1]
            tokens = tuple(engine.analyzer.analyze(attribute))
            if not tokens:
                continue
            query = seed_terms + tuple(
                t for t in tokens if t not in seed_terms
            )
            if query in seen or query == seed_terms:
                continue
            seen.add(query)
            queries.append(query)
            if len(queries) == self._n_queries:
                break
        return BaselineSuggestions(
            system=self.name,
            seed_query=seed_query,
            queries=tuple(queries),
        )
