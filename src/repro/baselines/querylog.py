"""Query-log suggestion baseline: the paper's "Google" comparison system.

The paper takes the first 3-5 related queries suggested by Google for each
test query — i.e. suggestions mined from a search engine's query log,
independent of the current corpus. We cannot query 2011 Google, so this
module reproduces the *mechanism*: a :class:`QueryLog` of (query, count)
pairs, and a :class:`QueryLogSuggester` that returns the most popular logged
queries extending the seed query. The synthetic log shipped in
:mod:`repro.datasets.querylog_data` mixes corpus-supported senses with
popular-but-absent suggestions, reproducing the behaviours the paper
observed (meaningful and popular; sometimes not results-oriented, e.g.
"Sony, products" for QS1; sometimes not diverse, e.g. QW8 all space).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.baselines.base import BaselineSuggestions
from repro.errors import DataError
from repro.text.analyzer import Analyzer


@dataclass
class QueryLog:
    """A multiset of logged keyword queries."""

    entries: Counter = field(default_factory=Counter)

    def record(self, query: str, count: int = 1) -> None:
        if count < 1:
            raise DataError(f"count must be >= 1, got {count}")
        self.entries[" ".join(query.lower().split())] += count

    def record_many(self, queries: Iterable[tuple[str, int]]) -> None:
        for query, count in queries:
            self.record(query, count)

    def __len__(self) -> int:
        return len(self.entries)

    def popularity(self, query: str) -> int:
        return self.entries.get(" ".join(query.lower().split()), 0)


class QueryLogSuggester:
    """Suggest the most popular logged queries related to the seed query.

    A logged query is related when it contains every seed term (the classic
    prefix/superset heuristic of query-log suggestion [2, 9]) and differs
    from the seed query itself.
    """

    name = "QueryLog"

    def __init__(self, log: QueryLog, n_queries: int = 3, analyzer: Analyzer | None = None) -> None:
        self._log = log
        self._n_queries = n_queries
        self._analyzer = analyzer or Analyzer()

    def suggest(self, seed_query: str) -> BaselineSuggestions:
        seed_terms = tuple(
            self._analyzer.keep_distinct(self._analyzer.analyze_query(seed_query))
        )
        seed = set(seed_terms)
        scored: list[tuple[int, str, tuple[str, ...]]] = []
        for logged, count in self._log.entries.items():
            terms = tuple(
                self._analyzer.keep_distinct(self._analyzer.analyze_query(logged))
            )
            if not seed.issubset(terms):
                continue
            if set(terms) == seed:
                continue
            scored.append((count, logged, terms))
        scored.sort(key=lambda item: (-item[0], item[1]))
        queries = tuple(terms for _, _, terms in scored[: self._n_queries])
        return BaselineSuggestions(
            system=self.name, seed_query=seed_query, queries=queries
        )
