"""Cluster Summarization (CS) baseline [6]: TF-ICF cluster labels as queries.

"It first clusters the results, then generates a label for each cluster.
The label of a cluster is selected based on the term frequency (tf) and
inverse cluster frequency (icf) of the words in the cluster." (§C)

CS ignores keyword *interaction*: its label terms individually have high
TF-ICF but need not co-occur in any result, so using the label as an AND
query often retrieves few results — the low-recall failure the paper
dissects (§5.2.2, e.g. QW9 "mouse, technique, wheel, interface").
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineSuggestions
from repro.core.metrics import precision_recall_f
from repro.core.universe import ResultUniverse
from repro.index.search import SearchEngine, SearchResult


class ClusterSummarization:
    """TF-ICF labels per cluster, used verbatim as expanded queries."""

    name = "CS"

    def __init__(self, label_terms: int = 3) -> None:
        if label_terms < 1:
            raise ValueError(f"label_terms must be >= 1, got {label_terms}")
        self._label_terms = label_terms

    def suggest(
        self,
        engine: SearchEngine,
        seed_query: str,
        results: Sequence[SearchResult],
        labels: np.ndarray,
        universe: ResultUniverse | None = None,
        max_queries: int = 5,
    ) -> BaselineSuggestions:
        """Label each cluster by top TF-ICF terms; score with Eq. 1 inputs.

        ``labels`` is the cluster assignment over ``results`` (same
        clustering the main algorithms use, so Eq. 1 scores are comparable).
        """
        seed_terms = tuple(engine.parse(seed_query))
        seed = set(seed_terms)
        uni = universe or ResultUniverse([r.document for r in results])
        cluster_ids = sorted(set(int(lab) for lab in labels))
        n_clusters = len(cluster_ids)

        # Cluster frequency: in how many clusters does each term occur?
        cluster_terms: dict[int, set[str]] = {}
        for cid in cluster_ids:
            members = [r.document for r, lab in zip(results, labels) if int(lab) == cid]
            terms: set[str] = set()
            for doc in members:
                terms.update(doc.terms)
            cluster_terms[cid] = terms
        cf: dict[str, int] = {}
        for terms in cluster_terms.values():
            for t in terms:
                cf[t] = cf.get(t, 0) + 1

        ordered = sorted(
            cluster_ids,
            key=lambda c: -sum(1 for lab in labels if int(lab) == c),
        )[:max_queries]

        queries: list[tuple[str, ...]] = []
        fmeasures: list[float] = []
        for cid in ordered:
            members = [r.document for r, lab in zip(results, labels) if int(lab) == cid]
            tf: dict[str, int] = {}
            for doc in members:
                for term, count in doc.terms.items():
                    if term in seed:
                        continue
                    tf[term] = tf.get(term, 0) + count
            scored = [
                (count * math.log(1.0 + n_clusters / cf[term]), term)
                for term, count in tf.items()
            ]
            scored.sort(key=lambda item: (-item[0], item[1]))
            label = tuple(term for _, term in scored[: self._label_terms])
            query = seed_terms + label
            queries.append(query)
            mask = uni.results_mask(query)
            cluster_mask = np.array([int(lab) == cid for lab in labels], dtype=bool)
            _, _, f = precision_recall_f(uni, mask, cluster_mask)
            fmeasures.append(f)

        return BaselineSuggestions(
            system=self.name,
            seed_query=seed_query,
            queries=tuple(queries),
            fmeasures=tuple(fmeasures),
        )
