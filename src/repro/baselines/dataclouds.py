"""Data Clouds baseline [15]: popular words over the ranked results.

"Data Clouds takes a set of ranked results, and returns the top-k important
words in the results. The importance of a word is measured by its term
frequency in the results it appears, inverse document frequency, as well as
the ranking score of the results that contain the word." (§C)

Each of the top words, appended to the seed query, forms one expanded
query. No clustering is involved — which is exactly why the paper's Eq. 1
score does not apply to it and why its suggestions can lack comprehensiveness
and diversity (§5.2.1).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.baselines.base import BaselineSuggestions
from repro.index.search import SearchEngine, SearchResult


class DataClouds:
    """Top-k important words over ranked results, one query per word."""

    name = "DataClouds"

    def __init__(self, n_queries: int = 3) -> None:
        self._n_queries = n_queries

    def suggest(
        self,
        engine: SearchEngine,
        seed_query: str,
        results: Sequence[SearchResult],
    ) -> BaselineSuggestions:
        """Score every non-seed term by tf × idf × rank weight; keep top-k."""
        seed_terms = tuple(engine.parse(seed_query))
        seed = set(seed_terms)
        n_docs = max(engine.index.num_documents, 1)
        scores: dict[str, float] = {}
        for result in results:
            rank_weight = max(result.score, 1e-9)
            for term, tf in result.document.terms.items():
                if term in seed:
                    continue
                df = max(engine.index.document_frequency(term), 1)
                idf = math.log(1.0 + n_docs / df)
                scores[term] = scores.get(term, 0.0) + tf * idf * rank_weight
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        top = [term for term, _ in ranked[: self._n_queries]]
        queries = tuple(seed_terms + (term,) for term in top)
        return BaselineSuggestions(
            system=self.name, seed_query=seed_query, queries=queries
        )
