"""Comparison systems from the paper's evaluation (§5.1, appendix C).

- :class:`~repro.baselines.dataclouds.DataClouds` — popular words over the
  ranked result list, no clustering [15].
- :class:`~repro.baselines.cluster_summarization.ClusterSummarization` —
  TF-ICF cluster labels used as queries [6].
- :class:`~repro.baselines.querylog.QueryLogSuggester` — suggestions mined
  from a query log; stand-in for the paper's Google baseline (see
  DESIGN.md §4 substitutions).

All baselines emit :class:`~repro.baselines.base.BaselineSuggestions`, which
carries the suggested queries plus (when cluster-based) per-cluster
F-measures so the experiment harness can score them with Eq. 1.
"""

from repro.baselines.base import BaselineSuggestions
from repro.baselines.cluster_summarization import ClusterSummarization
from repro.baselines.dataclouds import DataClouds
from repro.baselines.querylog import QueryLog, QueryLogSuggester

__all__ = [
    "BaselineSuggestions",
    "ClusterSummarization",
    "DataClouds",
    "QueryLog",
    "QueryLogSuggester",
]
