"""repro — reproduction of "Query Expansion Based on Clustered Results".

Liu, Natarajan, Chen. PVLDB 4(6):350-361, 2011.

The library generates, for an ambiguous or exploratory keyword query, a set
of expanded queries that *classifies* the original query's results: results
are clustered, and one expanded query is generated per cluster so that its
result set matches the cluster as closely as possible (maximum F-measure).

Quickstart
----------
>>> from repro import (Analyzer, ClusterQueryExpander, ExpansionConfig,
...                    ISKR, SearchEngine, build_wikipedia_corpus)
>>> analyzer = Analyzer(use_stemming=False)
>>> corpus = build_wikipedia_corpus(seed=0, analyzer=analyzer)
>>> engine = SearchEngine(corpus, analyzer)
>>> expander = ClusterQueryExpander(engine, ISKR(), ExpansionConfig(n_clusters=3))
>>> report = expander.expand("java")
>>> len(report.expanded) >= 2
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.baselines import (
    ClusterSummarization,
    DataClouds,
    QueryLog,
    QueryLogSuggester,
)
from repro.cluster import (
    AdaptiveKClusterer,
    AgglomerativeClustering,
    AutoClustering,
    BisectingKMeans,
    CosineKMeans,
    KMedoids,
    TfVectorizer,
)
from repro.core import (
    ClusterQueryExpander,
    InterleavedExpander,
    DeltaFMeasureRefinement,
    ExhaustiveOptimalExpansion,
    ExpandedQuery,
    ExpansionConfig,
    ExpansionReport,
    ExpansionTask,
    ISKR,
    PEBC,
    ResultUniverse,
    VectorSpaceRefinement,
    eq1_score,
    fmeasure,
    precision_recall_f,
)
from repro.data import Corpus, Document, Feature, make_structured_document, make_text_document
from repro.datasets import (
    BenchmarkQuery,
    all_queries,
    build_query_log,
    build_shopping_corpus,
    build_wikipedia_corpus,
    query_by_id,
)
from repro.errors import (
    ClusteringError,
    ConfigError,
    DataError,
    ExpansionError,
    IndexingError,
    QueryError,
    ReproError,
)
from repro.eval import ExperimentSuite, UserStudySimulator, run_scalability
from repro.index import BM25Scorer, InvertedIndex, SearchEngine, SearchResult
from repro.prf import KLDivergencePRF, RobertsonPRF, RocchioPRF
from repro.text import Analyzer, PorterStemmer, tokenize

__version__ = "1.0.0"

__all__ = [
    "AdaptiveKClusterer",
    "AgglomerativeClustering",
    "Analyzer",
    "AutoClustering",
    "BM25Scorer",
    "BenchmarkQuery",
    "BisectingKMeans",
    "ClusterQueryExpander",
    "ClusterSummarization",
    "ClusteringError",
    "ConfigError",
    "Corpus",
    "CosineKMeans",
    "DataClouds",
    "DataError",
    "DeltaFMeasureRefinement",
    "Document",
    "ExhaustiveOptimalExpansion",
    "ExpandedQuery",
    "ExpansionConfig",
    "ExpansionError",
    "ExpansionReport",
    "ExpansionTask",
    "ExperimentSuite",
    "Feature",
    "ISKR",
    "IndexingError",
    "InterleavedExpander",
    "InvertedIndex",
    "KLDivergencePRF",
    "KMedoids",
    "PEBC",
    "PorterStemmer",
    "QueryError",
    "QueryLog",
    "QueryLogSuggester",
    "ReproError",
    "ResultUniverse",
    "RobertsonPRF",
    "RocchioPRF",
    "SearchEngine",
    "SearchResult",
    "TfVectorizer",
    "UserStudySimulator",
    "VectorSpaceRefinement",
    "all_queries",
    "build_query_log",
    "build_shopping_corpus",
    "build_wikipedia_corpus",
    "eq1_score",
    "fmeasure",
    "make_structured_document",
    "make_text_document",
    "precision_recall_f",
    "query_by_id",
    "run_scalability",
    "tokenize",
    "__version__",
]
