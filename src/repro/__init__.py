"""repro — reproduction of "Query Expansion Based on Clustered Results".

Liu, Natarajan, Chen. PVLDB 4(6):350-361, 2011.

The library generates, for an ambiguous or exploratory keyword query, a set
of expanded queries that *classifies* the original query's results: results
are clustered, and one expanded query is generated per cluster so that its
result set matches the cluster as closely as possible (maximum F-measure).

Quickstart
----------
The front door is :class:`repro.api.Session`: pick components by their
registry names, build once, expand many times.

>>> from repro import Session
>>> session = (Session.builder()
...            .dataset("wikipedia")
...            .algorithm("iskr")
...            .config(n_clusters=3)
...            .build())
>>> report = session.expand("java")
>>> len(report.expanded) >= 2
True
>>> batch = session.expand_many(["java", "rockets"])
>>> batch.n_ok
2
>>> report == type(report).from_dict(report.to_dict())  # stable JSON schema
True

Algorithms (``iskr``, ``pebc``, ...), clusterers (``kmeans``,
``bisecting``, ...), retrieval scorers (``tfidf``, ``bm25``, ``lm``) and
datasets are all pluggable registries — see API.md. The lower-level
pieces (:class:`SearchEngine`, :class:`ClusterQueryExpander`, the
algorithm classes) remain public for direct wiring.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.api import (
    ALGORITHMS,
    BACKENDS,
    CLUSTERERS,
    DATASETS,
    SCORERS,
    STAGES,
    BatchItem,
    BatchReport,
    CachingSearchEngine,
    Registry,
    Session,
    SessionBuilder,
)

from repro.baselines import (
    ClusterSummarization,
    DataClouds,
    QueryLog,
    QueryLogSuggester,
)
from repro.cluster import (
    AdaptiveKClusterer,
    AgglomerativeClustering,
    AutoClustering,
    BisectingKMeans,
    CosineKMeans,
    KMedoids,
    TfVectorizer,
)
from repro.core import (
    ClusterQueryExpander,
    InterleavedExpander,
    DeltaFMeasureRefinement,
    ExhaustiveOptimalExpansion,
    ExpandedQuery,
    ExpansionConfig,
    ExpansionReport,
    ExpansionTask,
    ISKR,
    PEBC,
    ResultUniverse,
    VectorSpaceRefinement,
    eq1_score,
    fmeasure,
    precision_recall_f,
)
from repro.data import Corpus, Document, Feature, make_structured_document, make_text_document
from repro.datasets import (
    BenchmarkQuery,
    all_queries,
    build_query_log,
    build_shopping_corpus,
    build_wikipedia_corpus,
    query_by_id,
)
from repro.errors import (
    ClusteringError,
    ConfigError,
    DataError,
    ExpansionError,
    IndexingError,
    PipelineError,
    QueryError,
    RegistryError,
    ReproError,
    SchemaError,
    StoreError,
)
from repro.eval import ExperimentSuite, UserStudySimulator, run_scalability
from repro.index import (
    BM25Scorer,
    DiskIndex,
    IndexBackend,
    InvertedIndex,
    SearchEngine,
    SearchResult,
    ShardedIndex,
)
from repro.pipeline import (
    ExecutionContext,
    Pipeline,
    StageTiming,
    TimingMiddleware,
    TraceMiddleware,
    default_pipeline,
)
from repro.prf import KLDivergencePRF, RobertsonPRF, RocchioPRF
from repro.store import DocumentStore, SQLiteIndexBackend
from repro.text import Analyzer, PorterStemmer, tokenize

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "AdaptiveKClusterer",
    "AgglomerativeClustering",
    "Analyzer",
    "AutoClustering",
    "BM25Scorer",
    "BatchItem",
    "BatchReport",
    "BenchmarkQuery",
    "BisectingKMeans",
    "CLUSTERERS",
    "CachingSearchEngine",
    "ClusterQueryExpander",
    "ClusterSummarization",
    "ClusteringError",
    "ConfigError",
    "Corpus",
    "CosineKMeans",
    "DATASETS",
    "DataClouds",
    "DataError",
    "DeltaFMeasureRefinement",
    "DiskIndex",
    "DocumentStore",
    "Document",
    "ExhaustiveOptimalExpansion",
    "ExpandedQuery",
    "ExpansionConfig",
    "ExpansionError",
    "ExpansionReport",
    "ExpansionTask",
    "ExecutionContext",
    "ExperimentSuite",
    "Feature",
    "ISKR",
    "IndexBackend",
    "IndexingError",
    "InterleavedExpander",
    "InvertedIndex",
    "KLDivergencePRF",
    "KMedoids",
    "PEBC",
    "Pipeline",
    "PipelineError",
    "PorterStemmer",
    "QueryError",
    "QueryLog",
    "QueryLogSuggester",
    "Registry",
    "RegistryError",
    "ReproError",
    "StoreError",
    "ResultUniverse",
    "RobertsonPRF",
    "RocchioPRF",
    "SCORERS",
    "STAGES",
    "SQLiteIndexBackend",
    "SchemaError",
    "SearchEngine",
    "SearchResult",
    "Session",
    "SessionBuilder",
    "ShardedIndex",
    "StageTiming",
    "TfVectorizer",
    "TimingMiddleware",
    "TraceMiddleware",
    "UserStudySimulator",
    "VectorSpaceRefinement",
    "all_queries",
    "build_query_log",
    "build_shopping_corpus",
    "build_wikipedia_corpus",
    "default_pipeline",
    "eq1_score",
    "fmeasure",
    "make_structured_document",
    "make_text_document",
    "precision_recall_f",
    "query_by_id",
    "run_scalability",
    "tokenize",
    "__version__",
]
