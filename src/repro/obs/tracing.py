"""Spans, trace context, and the :class:`Tracer` — stdlib only.

One request = one *trace*: a tree of :class:`Span` records sharing a
``trace_id``, each with its own ``span_id`` and its parent's as
``parent_id``. The ambient current span rides a :mod:`contextvars`
variable, so child spans created anywhere below the request handler —
pipeline stages, cache lookups, store transactions — attach to the right
parent without threading a context object through every signature.

Cross-process stitching: the coordinator folds ``_trace`` /
``_trace_parent`` into the RPC params, the replica roots its own span
tree under that parent, and ships its finished spans back in the RPC
response envelope; :func:`absorb_spans` splices them into the
coordinator's in-flight trace. One routed ``/search`` therefore yields
one tree spanning both processes.

Cost discipline: when no trace is active (tracing disabled, background
threads, CLI paths) :func:`span` is a single contextvar read and a
``None`` check — instrumented call sites pay nanoseconds, which is what
keeps the warm-path overhead gate in ``benchmarks/bench_obs.py`` honest.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from contextvars import ContextVar
from typing import Any, Mapping

__all__ = [
    "Span",
    "Tracer",
    "TRACE_PARAM",
    "TRACE_PARENT_PARAM",
    "TRACE_HEADER",
    "absorb_spans",
    "current_span",
    "current_trace_id",
    "end_stage_span",
    "leaf_span",
    "new_trace_id",
    "sanitize_trace_id",
    "span",
    "start_stage_span",
]

#: HTTP header carrying (and echoing) the request's trace id.
TRACE_HEADER = "X-Repro-Trace"

#: Reserved params keys the HTTP/RPC layers fold trace context into
#: (the same trick X-Repro-Tenant uses for the tenant name).
TRACE_PARAM = "_trace"
TRACE_PARENT_PARAM = "_trace_parent"

#: Longest accepted client-supplied trace id (header abuse guard).
_MAX_TRACE_ID = 64

_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


# Ids only need uniqueness within a trace buffer's lifetime, and spans
# from several processes can land in one trace — so: a random
# per-process prefix plus a monotonically increasing counter. An order
# of magnitude cheaper than os.urandom per id on the warm path
# (itertools.count.__next__ is atomic in CPython; no lock needed).
_TRACE_PREFIX = os.urandom(6).hex()
_TRACE_COUNTER = itertools.count(1)
_SPAN_PREFIX = os.urandom(3).hex()
_SPAN_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """A fresh trace id, unique for any plausible buffer lifetime."""
    return f"{_TRACE_PREFIX}{next(_TRACE_COUNTER):04x}"


def _new_span_id() -> str:
    return f"{_SPAN_PREFIX}-{next(_SPAN_COUNTER):x}"


_TOKEN_RE = re.compile(r"[A-Za-z0-9_-]{1,%d}\Z" % _MAX_TRACE_ID)


def sanitize_trace_id(raw: Any) -> str | None:
    """A client-supplied trace id, or ``None`` if unusable.

    Accepts modest tokens (alnum plus ``-_``) so callers can hand us
    their own correlation ids; anything else is ignored and the tracer
    mints a fresh id rather than propagating junk into logs. A single
    compiled-regex match: this runs twice per traced request (header
    fold, root mint), so it stays off the profile.
    """
    if raw is None:
        return None
    token = str(raw).strip()
    if _TOKEN_RE.match(token) is None:
        return None
    return token


class Span:
    """One timed operation inside a trace (see module docstring).

    Spans are single-threaded by construction — they live on the context
    variable of the request that created them — so they carry no lock.
    """

    __slots__ = (
        "trace_id",
        "_span_id",
        "parent_id",
        "name",
        "start",
        "duration_seconds",
        "status",
        "error",
        "attrs",
        "_t0",
        "_sink",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        sink: list,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self._span_id: str | None = None
        self.parent_id = parent_id
        self.start = time.time()
        self.duration_seconds: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.attrs: dict[str, Any] = attrs or {}
        self._t0 = time.perf_counter()
        self._sink = sink
        self._token = None

    @property
    def span_id(self) -> str:
        """This span's id, minted on first read.

        Leaf spans (a warm cache lookup, say) never parent a child and
        only surface their id when the trace is materialized for a
        reader — so the mint is deferred until someone actually asks.
        """
        sid = self._span_id
        if sid is None:
            sid = self._span_id = _new_span_id()
        return sid

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def mark_error(self, exc: BaseException | str) -> None:
        self.status = "error"
        if isinstance(exc, BaseException):
            self.error = f"{type(exc).__name__}: {exc}"
        else:
            self.error = str(exc)

    def end(self) -> None:
        """Close the span and append it to the trace's sink.

        The span object itself is appended, not a dict — building a
        9-key dict per span is warm-path work that only read paths
        (/debug/traces, RPC export) need, so the
        :class:`~repro.obs.sinks.TraceBuffer` materializes dicts lazily
        at read time instead.
        """
        if self.duration_seconds is not None:
            return  # idempotent: a double-ended span records once
        self.duration_seconds = time.perf_counter() - self._t0
        self._sink.append(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


def current_span() -> Span | None:
    """The ambient span, or ``None`` when no trace is active."""
    return _CURRENT.get()


def current_trace_id() -> str | None:
    cur = _CURRENT.get()
    return None if cur is None else cur.trace_id


def _push(parent: Span, name: str, attrs: dict[str, Any] | None) -> Span:
    child = Span(
        name, parent.trace_id, parent.span_id, parent._sink, attrs
    )
    child._token = _CURRENT.set(child)
    return child


def _pop(child: Span) -> None:
    child.end()
    if child._token is not None:
        _CURRENT.reset(child._token)
        child._token = None


class _SpanContext:
    """Hand-rolled context manager: ``@contextmanager``'s generator
    machinery costs several function calls per ``with`` — measurable on
    the warm path, where two of these run per request."""

    __slots__ = ("_name", "_attrs", "_span")

    def __init__(self, name: str, attrs: dict[str, Any] | None) -> None:
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span | None:
        parent = _CURRENT.get()
        if parent is None:
            return None
        self._span = _push(parent, self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        child = self._span
        if child is not None:
            if exc is not None:
                child.mark_error(exc)
            _pop(child)
        return False


def span(name: str, **attrs: Any) -> _SpanContext:
    """A child span of the ambient trace; a cheap no-op without one."""
    return _SpanContext(name, attrs or None)


def leaf_span(name: str, **attrs: Any) -> Span | None:
    """An already-started child span for a straight-line leaf operation.

    Unlike ``with span(...)``, the returned span is *not* pushed onto
    the context variable — it can never parent further children, which
    makes it the right (and cheaper: no ctxvar push/pop, no context
    manager) shape for timing a single operation like a cache probe on
    the warm path. The caller must call :meth:`Span.end` once; returns
    ``None`` when no trace is live.
    """
    parent = _CURRENT.get()
    if parent is None:
        return None
    return Span(name, parent.trace_id, parent.span_id, parent._sink, attrs or None)


def start_stage_span(name: str, **attrs: Any) -> Span | None:
    """Open a child span across paired hook calls (pipeline middleware).

    The pipeline's ``on_stage_start``/``on_stage_end`` hooks are separate
    invocations, not a ``with`` block, so the span is parked on the
    context variable and closed by :func:`end_stage_span`.
    """
    parent = _CURRENT.get()
    if parent is None:
        return None
    return _push(parent, name, attrs or None)


def end_stage_span(name: str, exc: BaseException | None = None) -> None:
    """Close the span :func:`start_stage_span` opened, if it is current."""
    cur = _CURRENT.get()
    if cur is None or cur.name != name or cur._token is None:
        return  # not ours (start saw no trace, or hooks were unpaired)
    if exc is not None:
        cur.mark_error(exc)
    _pop(cur)


def absorb_spans(spans: Any) -> int:
    """Splice remote (already-finished) span records into the live trace.

    The coordinator calls this with the span dicts a replica shipped
    back over the RPC; their ``trace_id`` already matches because the
    coordinator propagated it. Returns the number absorbed.
    """
    cur = _CURRENT.get()
    if cur is None or not isinstance(spans, (list, tuple)):
        return 0
    absorbed = 0
    for record in spans:
        if isinstance(record, Mapping):
            cur._sink.append(dict(record))
            absorbed += 1
    return absorbed


class _NoRequestContext:
    """Shared stateless stand-in when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_DISABLED_REQUEST = _NoRequestContext()


class _RequestContext:
    """Root-span context: pins the span to the context variable on
    enter, finishes the whole trace into the tracer's sinks on exit."""

    __slots__ = ("_tracer", "_root")

    def __init__(self, tracer: "Tracer", root: Span) -> None:
        self._tracer = tracer
        self._root = root

    def __enter__(self) -> Span:
        root = self._root
        root._token = _CURRENT.set(root)
        return root

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        root = self._root
        if exc is not None:
            root.mark_error(exc)
        if root._token is not None:
            _CURRENT.reset(root._token)
            root._token = None
        root.end()
        self._tracer._finish(root)
        return False


class Tracer:
    """Mints root spans and finishes traces into the configured sinks.

    Parameters
    ----------
    buffer:
        A :class:`~repro.obs.sinks.TraceBuffer` receiving every finished
        trace (``None`` = keep nothing).
    slow_log:
        A :class:`~repro.obs.sinks.SlowLog`; traces whose root duration
        meets its threshold are captured (always on when provided).
    logger:
        A :class:`~repro.obs.sinks.JsonLogger`; one ``request`` line per
        finished root span (the ``--log-json`` access log).
    enabled:
        ``False`` turns :meth:`request` into a no-op context manager —
        the zero-overhead baseline the benchmark gate compares against.
    tags:
        Attributes stamped on every root span (e.g. ``tier``/``replica``).
    """

    def __init__(
        self,
        buffer: Any = None,
        slow_log: Any = None,
        logger: Any = None,
        enabled: bool = True,
        tags: Mapping[str, Any] | None = None,
    ) -> None:
        self.buffer = buffer
        self.slow_log = slow_log
        self.logger = logger
        self.enabled = bool(enabled)
        self.tags: dict[str, Any] = dict(tags or {})

    def request(
        self,
        name: str,
        trace_id: Any = None,
        parent_id: Any = None,
        **attrs: Any,
    ) -> "_RequestContext":
        """The root span of one request; finishes the trace on exit."""
        if not self.enabled:
            return _DISABLED_REQUEST
        root = Span(
            name,
            sanitize_trace_id(trace_id) or new_trace_id(),
            sanitize_trace_id(parent_id),
            sink=[],
            attrs={**self.tags, **attrs},
        )
        return _RequestContext(self, root)

    def event(self, name: str, error: bool = False, **attrs: Any) -> None:
        """An instantaneous child span (+ one JSON log line if logging).

        Used for point decisions worth seeing in a trace — shed
        verdicts, cache invalidations — where a duration is meaningless.
        """
        cur = _CURRENT.get()
        if cur is not None:
            mark = Span(name, cur.trace_id, cur.span_id, cur._sink, dict(attrs))
            if error:
                mark.mark_error(attrs.get("reason", name))
            mark.end()
        logger = self.logger
        if logger is not None:
            line = {"event": name, **attrs}
            if cur is not None:
                line["trace_id"] = cur.trace_id
            logger.emit(line)

    def export(self, trace_id: str) -> list[dict[str, Any]] | None:
        """A finished trace's span records (for the RPC return envelope)."""
        if self.buffer is None:
            return None
        trace = self.buffer.get(trace_id)
        if trace is None:
            return None
        return list(trace.get("spans", ()))

    def _finish(self, root: Span) -> None:
        # Hot path by design: one deque append, one threshold compare.
        # Everything dict-shaped (the trace record, slow entries, span
        # dicts) is built lazily on the read side of the sinks.
        if self.buffer is not None:
            self.buffer.add_root(root)
        if self.slow_log is not None:
            self.slow_log.offer_root(root)
        if self.logger is not None:
            line = {
                "event": "request",
                "trace_id": root.trace_id,
                "name": root.name,
                "duration_ms": round((root.duration_seconds or 0.0) * 1e3, 3),
                "status": root.status,
            }
            if root.error:
                line["error"] = root.error
            line.update(root.attrs)
            self.logger.emit(line)
