"""``repro.obs`` — tracing, structured logging, and telemetry exposition.

The stack's observability layer, stdlib-only:

* :mod:`repro.obs.tracing` — span trees with :mod:`contextvars`
  propagation, the :class:`Tracer`, and cross-process trace stitching
  over the cluster RPC.
* :mod:`repro.obs.sinks` — the bounded :class:`TraceBuffer` behind
  ``/debug/traces``, the always-on :class:`SlowLog` behind
  ``/debug/slow``, and the ``--log-json`` :class:`JsonLogger`.
* :mod:`repro.obs.prometheus` — ``/metrics?format=prometheus`` text
  exposition of the existing metrics partitions.

See API.md § Observability for the header contract and span vocabulary.
"""

from repro.obs.prometheus import CONTENT_TYPE, PrometheusText, render_prometheus
from repro.obs.sinks import (
    DEFAULT_SLOW_THRESHOLD,
    JsonLogger,
    SlowLog,
    TraceBuffer,
)
from repro.obs.tracing import (
    TRACE_HEADER,
    TRACE_PARAM,
    TRACE_PARENT_PARAM,
    Span,
    Tracer,
    absorb_spans,
    current_span,
    current_trace_id,
    end_stage_span,
    leaf_span,
    new_trace_id,
    sanitize_trace_id,
    span,
    start_stage_span,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_SLOW_THRESHOLD",
    "JsonLogger",
    "PrometheusText",
    "SlowLog",
    "Span",
    "TRACE_HEADER",
    "TRACE_PARAM",
    "TRACE_PARENT_PARAM",
    "TraceBuffer",
    "Tracer",
    "absorb_spans",
    "current_span",
    "current_trace_id",
    "end_stage_span",
    "leaf_span",
    "new_trace_id",
    "render_prometheus",
    "sanitize_trace_id",
    "span",
    "start_stage_span",
]
