"""Render ``/metrics`` snapshots in Prometheus text exposition format.

The JSON ``/metrics`` payload stays the default and byte-compatible;
``?format=prometheus`` runs the same snapshot through
:func:`render_prometheus`, which maps the existing structures onto
standard families:

* request counters → ``repro_requests_total`` / ``repro_request_errors_total``
  / ``repro_cache_hits_total`` / ``repro_cache_misses_total`` (by
  ``endpoint``, plus ``replica`` on per-replica rows)
* :class:`~repro.serve.metrics.LatencyHistogram` snapshots → native
  histograms (cumulative ``_bucket{le=...}`` + ``_sum`` + ``_count``)
  using the histogram's existing bounds
* cache tiers, tenant partitions, coordinator routing/shed/failover and
  feed counters → labelled counters and gauges

The output is plain ``text/plain; version=0.0.4`` — every line is either
``# HELP``, ``# TYPE``, or ``name{labels} value``, so any scraper (or
the minimal parser in ``tests/test_obs.py``) can consume it without new
dependencies.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["PrometheusText", "render_prometheus", "CONTENT_TYPE"]

#: The content type Prometheus scrapers expect for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class PrometheusText(bytes):
    """Marker type: pre-encoded exposition output, not a JSON payload.

    The HTTP handlers dispatch on this to send ``text/plain`` instead of
    serializing; the cluster tier's bytes-passthrough path checks it
    first so exposition output is never mislabelled ``application/json``.
    """

    __slots__ = ()


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_labels(labels: Mapping[str, Any] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(val)}"'
        for key, val in labels.items()
        if val is not None
    )
    return "{" + inner + "}" if inner else ""


class _Exposition:
    """Accumulates samples grouped by family, renders HELP/TYPE blocks."""

    def __init__(self) -> None:
        self._families: dict[str, tuple[str, str, list[str]]] = {}
        self._order: list[str] = []

    def sample(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: Any,
        labels: Mapping[str, Any] | None = None,
        suffix: str = "",
    ) -> None:
        if name not in self._families:
            self._families[name] = (kind, help_text, [])
            self._order.append(name)
        lines = self._families[name][2]
        lines.append(
            f"{name}{suffix}{_format_labels(labels)} {_format_value(value)}"
        )

    def histogram(
        self,
        name: str,
        help_text: str,
        snap: Mapping[str, Any],
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        """One LatencyHistogram snapshot as a native histogram family.

        The snapshot's buckets are per-bucket tallies keyed ``le_<bound>``
        / ``le_inf``; exposition buckets are cumulative, so they are
        re-accumulated in bound order here.
        """
        count = int(snap.get("count", 0))
        raw = snap.get("buckets") or {}
        bounds: list[tuple[float, int]] = []
        inf_count = 0
        for key, tally in raw.items():
            if key == "le_inf":
                inf_count = int(tally)
            elif key.startswith("le_"):
                bounds.append((float(key[3:]), int(tally)))
        bounds.sort(key=lambda item: item[0])
        base = dict(labels or {})
        cumulative = 0
        for bound, tally in bounds:
            cumulative += tally
            self.sample(
                name,
                "histogram",
                help_text,
                cumulative,
                {**base, "le": f"{bound:g}"},
                suffix="_bucket",
            )
        self.sample(
            name,
            "histogram",
            help_text,
            cumulative + inf_count,
            {**base, "le": "+Inf"},
            suffix="_bucket",
        )
        self.sample(
            name, "histogram", help_text,
            float(snap.get("total_seconds", 0.0)), base, suffix="_sum",
        )
        self.sample(name, "histogram", help_text, count, base, suffix="_count")

    def render(self) -> str:
        out: list[str] = []
        for name in self._order:
            kind, help_text, lines = self._families[name]
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {kind}")
            out.extend(lines)
        return "\n".join(out) + "\n"


def _render_requests(
    exp: _Exposition,
    requests: Mapping[str, Any],
    labels: Mapping[str, Any] | None = None,
) -> None:
    # Counters render only at the scrape target's own level: the cluster
    # payload already sums replica counts, so repeating them with a
    # ``replica`` label would double-count any sum over the family.
    # Latency histograms exist only per replica (sums don't aggregate
    # percentile reservoirs), so those keep the replica label.
    base = dict(labels or {})
    for endpoint, row in requests.items():
        if not isinstance(row, Mapping):
            continue
        tags = {**base, "endpoint": endpoint}
        if not base:
            exp.sample(
                "repro_requests_total", "counter",
                "Requests handled, by endpoint.",
                int(row.get("count", 0)), tags,
            )
            exp.sample(
                "repro_request_errors_total", "counter",
                "Requests that errored, by endpoint.",
                int(row.get("errors", 0)), tags,
            )
            exp.sample(
                "repro_cache_hits_total", "counter",
                "Response-cache hits, by endpoint.",
                int(row.get("cache_hits", 0)), tags,
            )
            exp.sample(
                "repro_cache_misses_total", "counter",
                "Response-cache misses, by endpoint.",
                int(row.get("cache_misses", 0)), tags,
            )
        latency = row.get("latency")
        if isinstance(latency, Mapping) and latency.get("count"):
            exp.histogram(
                "repro_request_latency_seconds",
                "Request latency, by endpoint.",
                latency,
                tags,
            )


def _render_cache_tier(
    exp: _Exposition, tier: str, stats: Mapping[str, Any]
) -> None:
    for key, value in stats.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        kind = "counter" if key in (
            "hits", "misses", "evictions", "expirations", "invalidations"
        ) else "gauge"
        exp.sample(
            f"repro_cache_{key}", kind, f"Cache {key}, by tier.",
            value, {"tier": tier},
        )


def _render_service(
    exp: _Exposition,
    payload: Mapping[str, Any],
    labels: Mapping[str, Any] | None = None,
) -> None:
    """One single-node ``/metrics`` payload (optionally replica-labelled)."""
    base = dict(labels or {})
    if not base and "uptime_seconds" in payload:  # top-level target only
        exp.sample(
            "repro_uptime_seconds", "gauge", "Seconds since server start.",
            float(payload["uptime_seconds"]),
        )
    _render_requests(exp, payload.get("requests", {}), base)
    cache = payload.get("cache", {})
    if isinstance(cache, Mapping) and not base:
        responses = cache.get("responses")
        if isinstance(responses, Mapping):
            _render_cache_tier(exp, "responses", responses)
        sessions = cache.get("sessions")
        if isinstance(sessions, Mapping):
            for config, info in sessions.items():
                if not isinstance(info, Mapping):
                    continue
                for tier_name, tier_stats in info.items():
                    if isinstance(tier_stats, Mapping):
                        _render_cache_tier(
                            exp, f"{config}/{tier_name}", tier_stats
                        )
    stages = payload.get("stages", {})
    if isinstance(stages, Mapping):
        for config, per_stage in stages.items():
            if not isinstance(per_stage, Mapping):
                continue
            for stage, snap in per_stage.items():
                if isinstance(snap, Mapping) and snap.get("count"):
                    exp.histogram(
                        "repro_stage_latency_seconds",
                        "Pipeline stage latency, by config and stage.",
                        snap,
                        {**base, "config": config, "stage": stage},
                    )
    tenants = payload.get("tenants") if not base else None
    if isinstance(tenants, Mapping):
        for tenant, row in tenants.items():
            if not isinstance(row, Mapping):
                continue
            requests = row.get("requests", 0)
            if isinstance(requests, Mapping):
                total = sum(
                    int(r.get("count", 0))
                    for r in requests.values()
                    if isinstance(r, Mapping)
                )
            else:
                total = int(requests)
            exp.sample(
                "repro_tenant_requests_total", "counter",
                "Requests handled, by tenant.", total,
                {**base, "tenant": tenant},
            )
            exp.sample(
                "repro_tenant_sheds_total", "counter",
                "Requests shed (429), by tenant.", int(row.get("sheds", 0)),
                {**base, "tenant": tenant},
            )
    in_flight = payload.get("tenant_in_flight") if not base else None
    if isinstance(in_flight, Mapping):
        for tenant, depth in in_flight.items():
            exp.sample(
                "repro_tenant_in_flight", "gauge",
                "In-flight requests, by tenant.", int(depth),
                {**base, "tenant": tenant},
            )


def _render_cluster(exp: _Exposition, payload: Mapping[str, Any]) -> None:
    exp.sample(
        "repro_uptime_seconds", "gauge", "Seconds since server start.",
        float(payload.get("uptime_seconds", 0.0)),
    )
    _render_requests(exp, payload.get("requests", {}))
    cluster = payload.get("cluster", {})
    if isinstance(cluster, Mapping):
        for replica, routed in (cluster.get("routed") or {}).items():
            exp.sample(
                "repro_cluster_routed_total", "counter",
                "Requests routed, by replica.", int(routed),
                {"replica": replica},
            )
        exp.sample(
            "repro_cluster_shed_total", "counter",
            "Requests shed by cluster admission.",
            int(cluster.get("shed", 0)),
        )
        for replica, count in (cluster.get("failovers") or {}).items():
            exp.sample(
                "repro_cluster_failovers_total", "counter",
                "Failovers, by replica.", int(count), {"replica": replica},
            )
        for replica, count in (cluster.get("restarts") or {}).items():
            exp.sample(
                "repro_cluster_restarts_total", "counter",
                "Supervised restarts, by replica.", int(count),
                {"replica": replica},
            )
        for replica, depth in (cluster.get("in_flight") or {}).items():
            exp.sample(
                "repro_cluster_in_flight", "gauge",
                "In-flight proxied requests, by replica.", int(depth),
                {"replica": replica},
            )
        exp.sample(
            "repro_cluster_queue_depth", "gauge",
            "Per-replica admission bound.", int(cluster.get("queue_depth", 0)),
        )
        proxy = cluster.get("proxy_latency")
        if isinstance(proxy, Mapping) and proxy.get("count"):
            exp.histogram(
                "repro_cluster_proxy_latency_seconds",
                "End-to-end proxied request latency.", proxy,
            )
        shed = cluster.get("shed_latency")
        if isinstance(shed, Mapping) and shed.get("count"):
            exp.histogram(
                "repro_cluster_shed_latency_seconds",
                "Latency of shed (429) responses.", shed,
            )
        feed = cluster.get("feed")
        if isinstance(feed, Mapping):
            exp.sample(
                "repro_cluster_follow", "gauge",
                "1 when replicas tail the source changefeed.",
                bool(feed.get("follow", False)),
            )
        tenants = cluster.get("tenants")
        in_flight = cluster.get("tenant_in_flight")
        if tenants or in_flight:
            _render_service(
                exp,
                {
                    "tenants": tenants or {},
                    "tenant_in_flight": in_flight or {},
                },
            )
    replicas = payload.get("replicas", {})
    if isinstance(replicas, Mapping):
        for name, sub in replicas.items():
            exp.sample(
                "repro_replica_up", "gauge",
                "1 when the replica answered the metrics scrape.",
                isinstance(sub, Mapping) and "error" not in sub,
                {"replica": name},
            )
            if isinstance(sub, Mapping) and "error" not in sub:
                _render_service(exp, sub, {"replica": name})


def render_prometheus(payload: Mapping[str, Any]) -> PrometheusText:
    """The exposition bytes for a ``/metrics`` JSON payload (either tier)."""
    exp = _Exposition()
    if "cluster" in payload and "replicas" in payload:
        _render_cluster(exp, payload)
    else:
        _render_service(exp, payload)
    return PrometheusText(exp.render().encode("utf-8"))
