"""Trace sinks: bounded buffer, slow-request ring, JSON line logger.

All three are small, lock-protected, allocation-light containers — they
sit on the warm path, so every operation under a lock is a dict/deque
mutation, never I/O (the JSON logger formats outside its lock and only
serializes the ``write`` call itself).
"""

from __future__ import annotations

import json
import sys
import threading
from collections import OrderedDict, deque
from typing import Any, Iterable, Mapping, TextIO

__all__ = ["TraceBuffer", "SlowLog", "JsonLogger", "DEFAULT_SLOW_THRESHOLD"]

#: Requests at or above this many seconds land in the slow log.
DEFAULT_SLOW_THRESHOLD = 0.25

#: Hard cap on spans kept per trace: a client replaying one trace id
#: forever must not grow a single entry (and re-copy it) without bound.
MAX_SPANS_PER_TRACE = 1024


def _materialize(trace: dict[str, Any]) -> None:
    """Convert any still-live Span objects in ``trace`` to dicts, in place.

    Spans land in the sink as objects (see :meth:`repro.obs.Span.end`);
    readers pay the dict construction, the warm path does not. Idempotent
    — already-materialized entries (including spans absorbed from a
    remote process, which arrive as dicts) pass through untouched.
    """
    spans = trace.get("spans")
    if isinstance(spans, list):
        for i, record in enumerate(spans):
            if not isinstance(record, dict):
                spans[i] = record.to_dict()


def _trace_record(root: Any) -> dict[str, Any]:
    """Build the canonical trace dict from a finished root span."""
    return {
        "trace_id": root.trace_id,
        "name": root.name,
        "start": root.start,
        "duration_seconds": root.duration_seconds,
        "status": root.status,
        "error": root.error,
        "attrs": dict(root.attrs),
        "spans": [
            s if isinstance(s, dict) else s.to_dict() for s in root._sink
        ],
    }


class TraceBuffer:
    """The last ``capacity`` finished traces, keyed by trace_id.

    Two-stage: finishes append to a bounded intake deque (lock-free on
    the warm path) and readers fold them into an
    :class:`~collections.OrderedDict` used as an LRU-ish ring — inserts
    evict the oldest entry once full, and the intake's ``maxlen``
    enforces the same bound when nobody reads. A re-finished trace_id
    (coordinator + replica sharing an id never hits this — only the
    coordinator's tracer owns a buffer on the routed path, but a direct
    replica request can) refreshes the existing entry by merging spans
    rather than dropping either half.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        # Write-behind intake: finishing a request appends its root span
        # here — a single lock-free deque.append (atomic under the GIL)
        # — and readers fold pending entries into the keyed ring. The
        # maxlen bound gives ring semantics even if nobody ever reads.
        self._pending: "deque[Any]" = deque(maxlen=self.capacity)

    def add(self, trace: Mapping[str, Any]) -> None:
        """Queue a finished trace (a mapping, or a root span object).

        A bare ``deque.append`` — atomic under the GIL; keeping the
        warm path lock-free is this class's point.
        """
        self._pending.append(trace)

    def add_root(self, root: Any) -> None:
        """Queue a finished root :class:`~repro.obs.Span` (the hot path)."""
        self._pending.append(root)

    def _drain_locked(self) -> None:
        """Fold pending finishes into the keyed ring (lock held)."""
        while True:
            try:
                item = self._pending.popleft()
            except IndexError:
                break
            if isinstance(item, Mapping):
                record = dict(item)
            else:
                record = _trace_record(item)
            trace_id = record.get("trace_id")
            if not trace_id:
                continue
            _materialize(record)
            existing = self._traces.pop(trace_id, None)
            if existing is not None:
                merged = list(existing.get("spans", ()))
                merged.extend(record.get("spans", ()))
                record["spans"] = merged[:MAX_SPANS_PER_TRACE]
            self._traces[trace_id] = record
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> dict[str, Any] | None:
        with self._lock:
            self._drain_locked()
            trace = self._traces.get(trace_id)
            if trace is None:
                return None
            return dict(trace)

    def list(
        self,
        min_duration: float | None = None,
        status: str | None = None,
        tenant: str | None = None,
        limit: int = 50,
    ) -> list[dict[str, Any]]:
        """Newest-first traces matching the filters (see /debug/traces)."""
        out: list[dict[str, Any]] = []
        with self._lock:
            self._drain_locked()
            for trace in reversed(self._traces.values()):
                if min_duration is not None:
                    if (trace.get("duration_seconds") or 0.0) < min_duration:
                        continue
                if status is not None and trace.get("status") != status:
                    continue
                if tenant is not None:
                    if trace.get("attrs", {}).get("tenant") != tenant:
                        continue
                out.append(dict(trace))
                if len(out) >= limit:
                    break
        return out

    def __len__(self) -> int:
        with self._lock:
            self._drain_locked()
            return len(self._traces)


class SlowLog:
    """Always-on ring of requests slower than ``threshold`` seconds.

    Stores a compact summary per trace (not the span tree) so a burst of
    slow requests costs bounded memory; the trace_id links back to the
    full tree in the :class:`TraceBuffer` while it survives there.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_SLOW_THRESHOLD,
        capacity: int = 128,
    ) -> None:
        self.threshold = float(threshold)
        self._lock = threading.Lock()
        self._entries: "deque[dict[str, Any]]" = deque(maxlen=max(1, int(capacity)))
        self._seen = 0
        self._captured = 0

    def offer(self, trace: Mapping[str, Any]) -> bool:
        """Record the trace if it crossed the threshold; return whether."""
        duration = trace.get("duration_seconds") or 0.0
        if duration < self.threshold:
            self._note_fast()
            return False
        attrs = trace.get("attrs", {})
        self._capture({
            "trace_id": trace.get("trace_id"),
            "name": trace.get("name"),
            "duration_seconds": duration,
            "status": trace.get("status"),
            "tenant": attrs.get("tenant"),
            "path": attrs.get("path"),
            "ts": trace.get("start"),
        })
        return True

    def offer_root(self, root: Any) -> bool:
        """:meth:`offer`, reading a finished root span directly (hot path)."""
        duration = root.duration_seconds or 0.0
        if duration < self.threshold:
            self._note_fast()
            return False
        attrs = root.attrs
        self._capture({
            "trace_id": root.trace_id,
            "name": root.name,
            "duration_seconds": duration,
            "status": root.status,
            "tenant": attrs.get("tenant"),
            "path": attrs.get("path"),
            "ts": root.start,
        })
        return True

    def _note_fast(self) -> None:
        # analyze: ignore[GUARD001] - deliberately lock-free: the seen
        # counter is diagnostic telemetry and a lost increment under
        # thread-switch races is acceptable; taking the lock on every
        # fast request is not.
        self._seen += 1

    def _capture(self, entry: dict[str, Any]) -> None:
        with self._lock:
            self._seen += 1
            self._captured += 1
            self._entries.append(entry)

    def entries(self, limit: int = 50) -> list[dict[str, Any]]:
        """Newest-first slow entries, at most ``limit``."""
        with self._lock:
            items = list(self._entries)
        items.reverse()
        return items[: max(0, int(limit))]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            seen, captured, held = self._seen, self._captured, len(self._entries)
        return {
            "threshold_seconds": self.threshold,
            "seen": seen,
            "captured": captured,
            "held": held,
        }


class JsonLogger:
    """One JSON object per line to a text stream (stderr by default).

    The serialized line is built outside the lock; only the write+flush
    is serialized so concurrent request threads never interleave bytes.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, record: Mapping[str, Any]) -> None:
        try:
            line = json.dumps(record, separators=(",", ":"), default=str)
        except (TypeError, ValueError):
            line = json.dumps({"event": "log_error", "repr": repr(record)})
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass  # a closed/broken log stream must never fail a request


def iter_json_lines(text: str) -> Iterable[dict[str, Any]]:
    """Parse captured JsonLogger output back into records (test helper)."""
    for line in text.splitlines():
        line = line.strip()
        if line:
            yield json.loads(line)
