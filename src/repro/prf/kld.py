"""Information-theoretic PRF term scoring [7] (Carpineto et al.).

Terms are scored by their contribution to the Kullback-Leibler divergence
between the language model of the pseudo-relevant set and the language
model of the whole corpus::

    score(t) = p(t | R) * log( p(t | R) / p(t | Corpus) )

Terms that are much more likely in the feedback set than in the collection
get high scores. Corpus probabilities use Laplace smoothing so unseen-in-
corpus terms (impossible here, but cheap to guard) never divide by zero.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping, Sequence

from repro.index.search import SearchEngine, SearchResult
from repro.prf.base import PRFSuggester


class KLDivergencePRF(PRFSuggester):
    """KLD term scoring over the pseudo-relevant set."""

    name = "KLD"

    def score_terms(
        self,
        engine: SearchEngine,
        seed_terms: tuple[str, ...],
        relevant: Sequence[SearchResult],
    ) -> Mapping[str, float]:
        seed = set(seed_terms)
        rel_counts: Counter[str] = Counter()
        for result in relevant:
            for term, tf in result.document.terms.items():
                if term not in seed:
                    rel_counts[term] += tf
        rel_total = sum(rel_counts.values())
        if rel_total == 0:
            return {}

        corpus = engine.corpus
        corpus_counts: Counter[str] = Counter()
        for doc in corpus:
            for term, tf in doc.terms.items():
                corpus_counts[term] += tf
        corpus_total = sum(corpus_counts.values())
        vocab_size = max(len(corpus_counts), 1)

        scores: dict[str, float] = {}
        for term, count in rel_counts.items():
            p_rel = count / rel_total
            p_corpus = (corpus_counts.get(term, 0) + 1.0) / (
                corpus_total + vocab_size
            )
            ratio = p_rel / p_corpus
            if ratio > 1.0:
                scores[term] = p_rel * math.log(ratio)
        return scores
