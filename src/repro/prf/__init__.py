"""Pseudo-relevance-feedback query expansion baselines.

The paper's related-work section (§F) positions cluster-based expansion
against the classic corpus-driven PRF family: "the pseudo feedback approach
assumes that relevant documents are similar to each other ... thus relevance
feedback approach is not suitable for ambiguous or exploratory queries". To
reproduce that comparison we implement the three canonical term-selection
schemes the paper cites:

- :class:`~repro.prf.rocchio.RocchioPRF` — vector-space Rocchio feedback in
  the spirit of local analysis [24] (Xu & Croft).
- :class:`~repro.prf.kld.KLDivergencePRF` — the information-theoretic
  Kullback-Leibler term scoring of [7] (Carpineto et al.).
- :class:`~repro.prf.robertson.RobertsonPRF` — Robertson's offer weight /
  relevance-weight term selection [20].

All three share the :class:`~repro.prf.base.PRFSuggester` skeleton: take the
top-R ranked results as the pseudo-relevant set, score every candidate term,
and emit one expanded query per top-scored term (the same suggestion shape
as Data Clouds, so the harness can compare them on equal footing).
"""

from repro.prf.base import PRFSuggester
from repro.prf.kld import KLDivergencePRF
from repro.prf.robertson import RobertsonPRF
from repro.prf.rocchio import RocchioPRF

__all__ = [
    "KLDivergencePRF",
    "PRFSuggester",
    "RobertsonPRF",
    "RocchioPRF",
]
