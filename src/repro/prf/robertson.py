"""Robertson term selection for query expansion [20].

Robertson's classic result: rank candidate expansion terms by the *offer
weight* ``r * RW``, where ``r`` is the number of (pseudo-)relevant documents
containing the term and ``RW`` is the Robertson/Sparck-Jones relevance
weight::

    RW(t) = log( (r + 0.5) (N - n - R + r + 0.5)
               / ((n - r + 0.5) (R - r + 0.5)) )

with ``N`` collection size, ``n`` document frequency of ``t``, ``R`` the
pseudo-relevant set size. The +0.5 terms are the standard point-5 smoothing.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.index.search import SearchEngine, SearchResult
from repro.prf.base import PRFSuggester


def relevance_weight(r: int, n: int, big_r: int, big_n: int) -> float:
    """Robertson/Sparck-Jones relevance weight with point-5 smoothing.

    Arguments follow the traditional naming: ``r`` relevant docs containing
    the term, ``n`` total docs containing the term, ``big_r`` relevant set
    size, ``big_n`` collection size.
    """
    numerator = (r + 0.5) * (big_n - n - big_r + r + 0.5)
    denominator = (n - r + 0.5) * (big_r - r + 0.5)
    if numerator <= 0.0 or denominator <= 0.0:
        return 0.0
    return math.log(numerator / denominator)


class RobertsonPRF(PRFSuggester):
    """Offer-weight term selection: ``score(t) = r(t) * RW(t)``."""

    name = "Robertson"

    def score_terms(
        self,
        engine: SearchEngine,
        seed_terms: tuple[str, ...],
        relevant: Sequence[SearchResult],
    ) -> Mapping[str, float]:
        seed = set(seed_terms)
        big_n = max(engine.index.num_documents, 1)
        big_r = len(relevant)
        r_counts: dict[str, int] = {}
        for result in relevant:
            for term in result.document.terms:
                if term not in seed:
                    r_counts[term] = r_counts.get(term, 0) + 1
        scores: dict[str, float] = {}
        for term, r in r_counts.items():
            n = engine.index.document_frequency(term)
            rw = relevance_weight(r, n, big_r, big_n)
            if rw > 0.0:
                scores[term] = r * rw
        return scores
