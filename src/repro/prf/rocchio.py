"""Rocchio-style pseudo-relevance feedback [24].

Classic vector-space feedback: move the query vector toward the centroid of
the pseudo-relevant documents (and, with ``gamma > 0``, away from the
centroid of the lowest-ranked results, the usual pseudo-non-relevant
stand-in). Candidate terms are then scored by their weight in the updated
query vector. With AND semantics the suggested queries are the seed terms
plus the heaviest feedback terms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from repro.errors import ConfigError
from repro.index.search import SearchEngine, SearchResult
from repro.prf.base import PRFSuggester


class RocchioPRF(PRFSuggester):
    """Rocchio term scoring: ``beta * mean tfidf(rel) - gamma * mean tfidf(nonrel)``.

    ``alpha`` (the original-query component) does not influence term
    *selection* — seed terms are always kept — so only ``beta`` and
    ``gamma`` matter here. ``n_nonrelevant`` lowest-ranked results form the
    pseudo-non-relevant set when ``gamma > 0``.
    """

    name = "Rocchio"

    def __init__(
        self,
        n_feedback: int = 10,
        n_queries: int = 3,
        terms_per_query: int = 1,
        beta: float = 0.75,
        gamma: float = 0.0,
        n_nonrelevant: int = 5,
    ) -> None:
        super().__init__(n_feedback, n_queries, terms_per_query)
        if beta <= 0.0:
            raise ConfigError(f"beta must be > 0, got {beta}")
        if gamma < 0.0:
            raise ConfigError(f"gamma must be >= 0, got {gamma}")
        if n_nonrelevant < 0:
            raise ConfigError(f"n_nonrelevant must be >= 0, got {n_nonrelevant}")
        self._beta = beta
        self._gamma = gamma
        self._n_nonrelevant = n_nonrelevant
        self._all_results: Sequence[SearchResult] = ()

    def suggest(self, engine, seed_query, results):
        # Stash the full ranked list so score_terms can see the tail (the
        # pseudo-non-relevant set) even though the driver slices the head.
        self._all_results = list(results)
        return super().suggest(engine, seed_query, results)

    def _centroid(
        self,
        engine: SearchEngine,
        docs: Sequence[SearchResult],
        seed: set[str],
    ) -> dict[str, float]:
        acc: dict[str, float] = defaultdict(float)
        if not docs:
            return acc
        scorer = engine.scorer
        for result in docs:
            for term, tf in result.document.terms.items():
                if term in seed:
                    continue
                acc[term] += scorer.tf_weight(tf) * scorer.idf(term)
        inv = 1.0 / len(docs)
        return {t: w * inv for t, w in acc.items()}

    def score_terms(
        self,
        engine: SearchEngine,
        seed_terms: tuple[str, ...],
        relevant: Sequence[SearchResult],
    ) -> Mapping[str, float]:
        seed = set(seed_terms)
        positive = self._centroid(engine, relevant, seed)
        scores = {t: self._beta * w for t, w in positive.items()}
        if self._gamma > 0.0 and self._n_nonrelevant > 0:
            tail = self._all_results[len(relevant) :]
            negative_docs = tail[-self._n_nonrelevant :] if tail else []
            negative = self._centroid(engine, negative_docs, seed)
            for term, w in negative.items():
                scores[term] = scores.get(term, 0.0) - self._gamma * w
        return scores
