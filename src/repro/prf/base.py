"""Shared skeleton for pseudo-relevance-feedback suggesters.

A PRF suggester sees the ranked results of the seed query, treats the top-R
of them as pseudo-relevant, scores every non-seed term by a scheme-specific
weight, and suggests expanded queries built from the best terms. Because
the pseudo-relevant set is dominated by the highest-ranked interpretation
of an ambiguous query, every suggester in this family inherits the ranking
bias the paper's introduction describes — which is exactly the behaviour
the comparison benchmark measures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.baselines.base import BaselineSuggestions
from repro.errors import ConfigError
from repro.index.search import SearchEngine, SearchResult


class PRFSuggester(ABC):
    """Template for PRF baselines: pseudo-relevant top-R, score, suggest.

    Parameters
    ----------
    n_feedback:
        Size R of the pseudo-relevant set (top-ranked results).
    n_queries:
        Number of expanded queries to emit.
    terms_per_query:
        Number of expansion terms added to the seed per suggestion. 1 gives
        Data-Clouds-shaped suggestions ("seed + word"); larger values emit
        the top terms in score order, chunked.
    """

    name = "PRF"

    def __init__(
        self,
        n_feedback: int = 10,
        n_queries: int = 3,
        terms_per_query: int = 1,
    ) -> None:
        if n_feedback < 1:
            raise ConfigError(f"n_feedback must be >= 1, got {n_feedback}")
        if n_queries < 1:
            raise ConfigError(f"n_queries must be >= 1, got {n_queries}")
        if terms_per_query < 1:
            raise ConfigError(
                f"terms_per_query must be >= 1, got {terms_per_query}"
            )
        self._n_feedback = n_feedback
        self._n_queries = n_queries
        self._terms_per_query = terms_per_query

    @property
    def n_feedback(self) -> int:
        return self._n_feedback

    @property
    def n_queries(self) -> int:
        return self._n_queries

    # -- scheme-specific hook -------------------------------------------------

    @abstractmethod
    def score_terms(
        self,
        engine: SearchEngine,
        seed_terms: tuple[str, ...],
        relevant: Sequence[SearchResult],
    ) -> Mapping[str, float]:
        """Score every candidate term over the pseudo-relevant set.

        Implementations must not score seed terms; the driver filters them
        anyway as a safety net.
        """

    # -- shared driver ---------------------------------------------------------

    def suggest(
        self,
        engine: SearchEngine,
        seed_query: str,
        results: Sequence[SearchResult],
    ) -> BaselineSuggestions:
        """Emit expanded queries from the top-R pseudo-relevant results."""
        seed_terms = tuple(engine.parse(seed_query))
        relevant = list(results[: self._n_feedback])
        if relevant:
            raw = self.score_terms(engine, seed_terms, relevant)
        else:
            raw = {}
        seed = set(seed_terms)
        ranked = sorted(
            ((t, s) for t, s in raw.items() if t not in seed and s > 0.0),
            key=lambda kv: (-kv[1], kv[0]),
        )
        needed = self._n_queries * self._terms_per_query
        top = [t for t, _ in ranked[:needed]]
        queries: list[tuple[str, ...]] = []
        for i in range(0, len(top), self._terms_per_query):
            chunk = tuple(top[i : i + self._terms_per_query])
            if chunk:
                queries.append(seed_terms + chunk)
        return BaselineSuggestions(
            system=self.name,
            seed_query=seed_query,
            queries=tuple(queries[: self._n_queries]),
        )
