"""Harness comparing PRF suggesters against cluster-based expansion.

Reproduces the paper's related-work claim (§F): pseudo-relevance feedback
"is not suitable for ambiguous or exploratory queries" because the
pseudo-relevant set (top-ranked results) reflects only the dominant
interpretation. The harness runs each PRF scheme and ISKR on the same
seed-query results and measures comprehensiveness (cluster coverage) and
diversity (pairwise result-set overlap) of the suggestion sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.api import ALGORITHMS, Session
from repro.core.universe import ResultUniverse
from repro.eval.ir_metrics import cluster_coverage_f, pairwise_overlap
from repro.index.search import SearchEngine
from repro.prf.base import PRFSuggester


@dataclass(frozen=True)
class SuggesterComparison:
    """Coverage/diversity of one system's suggestions on one seed query."""

    system: str
    seed_query: str
    queries: tuple[tuple[str, ...], ...]
    coverage: float  # fraction of result clusters covered (comprehensiveness)
    overlap: float  # mean pairwise Jaccard of result sets (lower = diverse)
    n_clusters: int

    @property
    def diversity(self) -> float:
        return 1.0 - self.overlap


def _mask_positions(mask: np.ndarray) -> set[int]:
    return set(int(p) for p in np.nonzero(mask)[0])


def _suggestion_sets(
    universe: ResultUniverse, queries: Sequence[tuple[str, ...]]
) -> list[set[int]]:
    return [_mask_positions(universe.results_mask(q)) for q in queries]


def compare_suggesters(
    engine: SearchEngine,
    seed_query: str,
    prf_suggesters: Sequence[PRFSuggester],
    n_clusters: int = 3,
    top_k_results: int | None = 30,
    min_f: float = 0.5,
    seed: int = 0,
) -> list[SuggesterComparison]:
    """Run ISKR and each PRF suggester on ``seed_query``; measure both axes.

    All systems see the same retrieval; cluster ground truth comes from the
    shared k-means clustering that the ISKR pipeline uses (the paper's
    setup: comprehensiveness is judged against the classification of the
    original result set).
    """
    session = (
        Session.builder()
        .engine(engine)
        .algorithm("iskr")
        .config(n_clusters=n_clusters, top_k_results=top_k_results)
        .seed(seed)
        .build()
    )
    # One partial pipeline run (retrieve → ... → tasks): the same stage
    # objects the full expansion executes, stopped before per-cluster
    # expansion so every suggester sees identical artifacts.
    ctx = session.run_stages(seed_query, until="tasks")
    results, universe, tasks = list(ctx.results), ctx.universe, list(ctx.tasks)
    members = [_mask_positions(t.cluster_mask) for t in tasks]

    comparisons: list[SuggesterComparison] = []

    iskr = ALGORITHMS.create("iskr", seed=seed)
    iskr_queries = tuple(iskr.expand(t).terms for t in tasks)
    iskr_sets = _suggestion_sets(universe, iskr_queries)
    comparisons.append(
        SuggesterComparison(
            system="ISKR",
            seed_query=seed_query,
            queries=iskr_queries,
            coverage=cluster_coverage_f(iskr_sets, members, min_f=min_f),
            overlap=pairwise_overlap(iskr_sets),
            n_clusters=len(members),
        )
    )

    for suggester in prf_suggesters:
        suggestions = suggester.suggest(engine, seed_query, results)
        sets = _suggestion_sets(universe, suggestions.queries)
        comparisons.append(
            SuggesterComparison(
                system=suggester.name,
                seed_query=seed_query,
                queries=suggestions.queries,
                coverage=cluster_coverage_f(sets, members, min_f=min_f),
                overlap=pairwise_overlap(sets),
                n_clusters=len(members),
            )
        )
    return comparisons
