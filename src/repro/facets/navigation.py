"""Expected navigation cost of a faceted interface (FACeTOR-style [14]).

The cost model: a user looking for one uniformly-random target result first
scans the facet's value list (cost = number of values x ``scan_cost``),
clicks the value their target carries, and then reads the narrowed result
list (cost = its size x ``read_cost``). Results not covered by the facet
must be read from the full list. Lower is better; a facet whose values
split the results evenly into small buckets wins.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.facets.extraction import Facet


def expected_navigation_cost(
    facet: Facet,
    n_results: int,
    scan_cost: float = 0.2,
    read_cost: float = 1.0,
) -> float:
    """Expected cost to reach a uniformly-random target via ``facet``.

    ``E[cost] = V*scan + Σ_v (|v|/N) * |v|*read + (uncovered/N) * N*read``

    where V is the number of facet values. Overlapping values (a result
    listed under two values) are charged per-value, matching a user who
    clicks the value their target actually carries.
    """
    if n_results < 1:
        raise ConfigError(f"n_results must be >= 1, got {n_results}")
    if scan_cost < 0.0 or read_cost <= 0.0:
        raise ConfigError("scan_cost must be >= 0 and read_cost > 0")
    covered: set[int] = set()
    partition_term = 0.0
    for fv in facet.values:
        covered |= fv.positions
        partition_term += (fv.count / n_results) * fv.count * read_cost
    uncovered = n_results - len(covered & set(range(n_results)))
    fallback_term = (uncovered / n_results) * n_results * read_cost
    return facet.n_values * scan_cost + partition_term + fallback_term


def rank_facets(
    facets: Sequence[Facet],
    n_results: int,
    scan_cost: float = 0.2,
    read_cost: float = 1.0,
) -> list[tuple[Facet, float]]:
    """Facets with their expected costs, cheapest first (ties by key)."""
    scored = [
        (f, expected_navigation_cost(f, n_results, scan_cost, read_cost))
        for f in facets
    ]
    scored.sort(key=lambda fc: (fc[1], fc[0].key))
    return scored
