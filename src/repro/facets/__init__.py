"""Faceted search comparator (related work: [8], [14], [16]).

The paper argues cluster-based query expansion beats faceted navigation in
two situations: "(1) when it is difficult to extract facets, such as
searching text documents; and (2) when the query is ambiguous", because
results of different senses "may have completely different facets".

This subpackage implements the comparator needed to reproduce that
argument:

- :mod:`repro.facets.extraction` — facet discovery over structured query
  results (attribute → value histogram, with coverage filters). Text
  results expose no attributes, so extraction degrades exactly as the
  paper describes.
- :mod:`repro.facets.navigation` — an expected-navigation-cost model in
  the spirit of FACeTOR [14]: facets are ranked by how cheaply a user can
  reach a target result through them.
- :mod:`repro.facets.comparator` — converts the chosen facet's values
  into expanded queries (feature-triplet terms) so the harness can score
  a faceted interface on the same Eq. 1 / coverage / diversity axes as
  the expansion systems.
"""

from repro.facets.comparator import FacetedSearchComparator
from repro.facets.extraction import Facet, FacetValue, extract_facets
from repro.facets.navigation import expected_navigation_cost, rank_facets

__all__ = [
    "Facet",
    "FacetValue",
    "FacetedSearchComparator",
    "expected_navigation_cost",
    "extract_facets",
    "rank_facets",
]
