"""Faceted search as a query-expansion comparator.

Converts the best facet of a result list into expanded queries — one per
facet value, each being the seed terms plus the value's feature-triplet
term — so the harness can score a faceted interface on the same axes as
the paper's expansion systems (Eq. 1 against the shared clustering,
coverage, diversity).

Expected behaviour, mirroring the paper's related-work argument:

* on structured shopping results the best facet is usually the category
  attribute, whose values align with the clusters, so the faceted
  suggestions score well — faceted search *works* there;
* on text results no facets are extractable and the comparator returns no
  suggestions — the paper's case (1);
* on ambiguous queries whose senses have disjoint attribute schemas, no
  single facet covers the results, so coverage collapses — case (2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.metrics import eq1_score, precision_recall_f
from repro.core.universe import ResultUniverse
from repro.data.documents import Document, Feature
from repro.errors import ConfigError
from repro.facets.extraction import Facet, extract_facets
from repro.facets.navigation import rank_facets


@dataclass(frozen=True)
class FacetedSuggestions:
    """The faceted interface rendered as expanded queries."""

    seed_query: str
    facet_key: str | None  # None when no facet was extractable
    queries: tuple[tuple[str, ...], ...]
    fmeasures: tuple[float, ...]  # best-F against clusters, per query
    score: float | None  # Eq. 1 over per-cluster best matches; None if empty
    coverage: float  # fraction of results under some suggested value

    @property
    def is_empty(self) -> bool:
        return not self.queries


class FacetedSearchComparator:
    """Builds a facet-based suggestion set from clustered query results.

    Parameters
    ----------
    max_queries:
        Cap on emitted facet-value queries (the paper caps expanded queries
        at 5 per approach).
    min_coverage / max_values:
        Facet extraction filters (see
        :func:`repro.facets.extraction.extract_facets`).
    """

    name = "Faceted"

    def __init__(
        self,
        max_queries: int = 5,
        min_coverage: float = 0.3,
        max_values: int = 10,
    ) -> None:
        if max_queries < 1:
            raise ConfigError(f"max_queries must be >= 1, got {max_queries}")
        self._max_queries = max_queries
        self._min_coverage = min_coverage
        self._max_values = max_values

    def best_facet(self, documents: Sequence[Document]) -> Facet | None:
        """The navigation-cost-optimal facet, or None when none exists."""
        facets = extract_facets(
            documents,
            min_coverage=self._min_coverage,
            max_values=self._max_values,
        )
        if not facets:
            return None
        ranked = rank_facets(facets, n_results=len(documents))
        return ranked[0][0]

    def suggest(
        self,
        seed_terms: tuple[str, ...],
        universe: ResultUniverse,
        cluster_masks: Sequence[np.ndarray],
    ) -> FacetedSuggestions:
        """Render the best facet as queries and score them vs the clusters.

        Each facet value becomes ``seed_terms + (entity:attribute:value,)``.
        Per-cluster scoring follows the paper's Eq. 1 discipline: for each
        cluster take the best-matching suggestion's F-measure, then combine
        with the harmonic mean. Clusters no suggestion matches contribute
        F = 0, making Eq. 1 collapse — the paper's "different facets per
        sense" failure mode.
        """
        documents = universe.documents
        facet = self.best_facet(documents)
        seed_query = " ".join(seed_terms)
        if facet is None:
            return FacetedSuggestions(
                seed_query=seed_query,
                facet_key=None,
                queries=(),
                fmeasures=(),
                score=None,
                coverage=0.0,
            )
        entity, attribute = facet.key.split(":", 1)
        queries: list[tuple[str, ...]] = []
        masks: list[np.ndarray] = []
        for fv in facet.values[: self._max_queries]:
            term = Feature(entity, attribute, fv.value).as_term()
            query = seed_terms + (term,)
            queries.append(query)
            masks.append(universe.results_mask(query))

        fmeasures = tuple(
            max(
                (
                    precision_recall_f(universe, mask, cmask)[2]
                    for cmask in cluster_masks
                ),
                default=0.0,
            )
            for mask in masks
        )
        per_cluster_best = [
            max(
                (precision_recall_f(universe, mask, cmask)[2] for mask in masks),
                default=0.0,
            )
            for cmask in cluster_masks
        ]
        score = eq1_score(per_cluster_best) if per_cluster_best else None

        union = universe.empty_mask()
        for mask in masks:
            union |= mask
        coverage = (
            universe.weight_of(union) / universe.total_weight()
            if universe.total_weight() > 0
            else 0.0
        )
        return FacetedSuggestions(
            seed_query=seed_query,
            facet_key=facet.key,
            queries=tuple(queries),
            fmeasures=fmeasures,
            score=score,
            coverage=coverage,
        )
