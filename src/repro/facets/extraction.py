"""Facet extraction from structured query results.

A facet is an attribute key shared by many results (``memory:category``,
``tv:brand``); its values partition the results. Facets come from the
``fields`` metadata of structured documents — plain text documents carry no
fields, so a text result list yields no facets, which is precisely the
degradation the paper attributes to faceted search on text data.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.data.documents import Document
from repro.errors import ConfigError


@dataclass(frozen=True)
class FacetValue:
    """One value of a facet with the positions of results carrying it."""

    value: str
    positions: frozenset[int]

    @property
    def count(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class Facet:
    """An attribute key and its value histogram over the result list."""

    key: str  # "entity:attribute"
    values: tuple[FacetValue, ...]  # sorted by descending count
    coverage: float  # fraction of results having this attribute

    @property
    def n_values(self) -> int:
        return len(self.values)

    def positions_for(self, value: str) -> frozenset[int]:
        for fv in self.values:
            if fv.value == value:
                return fv.positions
        return frozenset()


def extract_facets(
    documents: Sequence[Document],
    min_coverage: float = 0.3,
    max_values: int = 10,
    min_values: int = 2,
) -> list[Facet]:
    """Discover facets over ``documents``.

    Parameters
    ----------
    documents:
        The query results (text documents contribute nothing).
    min_coverage:
        Keep only attributes present in at least this fraction of results.
    max_values:
        Keep only attributes with at most this many distinct values (an
        attribute where every result has a unique value — a serial number —
        navigates nowhere).
    min_values:
        Require at least this many distinct values (a constant attribute
        cannot partition anything).

    Returns facets sorted by descending coverage, then key.
    """
    if not 0.0 < min_coverage <= 1.0:
        raise ConfigError(f"min_coverage must be in (0, 1], got {min_coverage}")
    if min_values < 2:
        raise ConfigError(f"min_values must be >= 2, got {min_values}")
    if max_values < min_values:
        raise ConfigError(
            f"max_values ({max_values}) must be >= min_values ({min_values})"
        )
    if not documents:
        return []
    value_positions: dict[str, dict[str, set[int]]] = defaultdict(
        lambda: defaultdict(set)
    )
    present: Counter[str] = Counter()
    for pos, doc in enumerate(documents):
        for key, value in doc.fields.items():
            normalized = " ".join(str(value).lower().split())
            if not normalized:
                continue
            value_positions[key][normalized].add(pos)
            present[key] += 1
    n = len(documents)
    facets: list[Facet] = []
    for key, by_value in value_positions.items():
        coverage = present[key] / n
        if coverage < min_coverage:
            continue
        if not min_values <= len(by_value) <= max_values:
            continue
        values = tuple(
            FacetValue(value=v, positions=frozenset(ps))
            for v, ps in sorted(
                by_value.items(), key=lambda kv: (-len(kv[1]), kv[0])
            )
        )
        facets.append(Facet(key=key, values=values, coverage=coverage))
    facets.sort(key=lambda f: (-f.coverage, f.key))
    return facets
