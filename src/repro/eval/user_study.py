"""Simulated user study (Figures 1-4).

The paper ran 45 Amazon Mechanical Turk raters; we cannot. Part 3 of the
study records what those raters said they value: *individually*, an
expanded query should be related to the search and retrieve useful results;
*collectively*, a set of expanded queries should be comprehensive (cover
the meanings of the original query) and diverse (little result overlap).

The simulator encodes exactly those stated preferences as a noisy utility
model over signals measured by the experiment harness:

* individual utility  = max(grounded, familiarity_weight × popularity),
  where *grounded* is the suggestion's best F-measure against any result
  cluster and *popularity* is its query-log frequency (known only for the
  log-based system). A rater finds a suggestion useful either because it
  retrieves a coherent slice of the results or because it is a familiar,
  popular query — the paper's Google observation ("generally very popular
  with the users" even when the keywords do not occur in the results);
* collective utility = 0.5 × coverage + 0.5 × diversity (the two
  properties Part 3 of the study says users want).

Each simulated rater perturbs the utility with Gaussian noise, maps it to
the 1-5 scale, and picks the option (A)/(B)/(C) by thresholds. Absolute
levels are synthetic; the reproduced artifact is the *ranking* of systems
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.experiment import QueryExperiment

# Figure 2 options (individual): (A) related & helpful, (B) related but
# better exists, (C) not related.
INDIVIDUAL_OPTIONS = ("A", "B", "C")
# Figure 4 options (collective): (A) not comprehensive & not diverse,
# (B) either missing, (C) comprehensive and diverse.
COLLECTIVE_OPTIONS = ("A", "B", "C")


@dataclass(frozen=True)
class UserStudyResult:
    """Aggregated panel outcome across all queries and raters."""

    individual_scores: dict[str, float]  # system -> mean 1-5 (Fig. 1)
    individual_options: dict[str, dict[str, float]]  # system -> option -> % (Fig. 2)
    collective_scores: dict[str, float]  # Fig. 3
    collective_options: dict[str, dict[str, float]]  # Fig. 4


class UserStudySimulator:
    """A reproducible panel of simulated raters."""

    def __init__(
        self,
        n_users: int = 45,
        seed: int = 7,
        noise_sd: float = 0.12,
        familiarity_weight: float = 0.85,
    ) -> None:
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        self._n_users = n_users
        self._seed = seed
        self._noise_sd = noise_sd
        self._familiarity = familiarity_weight

    # -- utility signals -----------------------------------------------------

    def individual_utility(self, best_f: float, popularity: float) -> float:
        """Noise-free utility of one suggested query, in [0, 1]."""
        return float(
            np.clip(max(best_f, self._familiarity * popularity), 0.0, 1.0)
        )

    @staticmethod
    def collective_utility(coverage: float, diversity: float) -> float:
        """Noise-free utility of a suggestion *set*, in [0, 1]."""
        return float(np.clip(0.5 * coverage + 0.5 * diversity, 0.0, 1.0))

    # -- panel ------------------------------------------------------------------

    def evaluate(self, experiments: list[QueryExperiment]) -> UserStudyResult:
        """Run the panel over the experiments' outputs."""
        if not experiments:
            raise ValueError("need at least one experiment to rate")
        rng = np.random.default_rng(self._seed)
        systems = sorted({s for e in experiments for s in e.runs})
        ind_scores: dict[str, list[float]] = {s: [] for s in systems}
        ind_options: dict[str, dict[str, int]] = {
            s: {o: 0 for o in INDIVIDUAL_OPTIONS} for s in systems
        }
        col_scores: dict[str, list[float]] = {s: [] for s in systems}
        col_options: dict[str, dict[str, int]] = {
            s: {o: 0 for o in COLLECTIVE_OPTIONS} for s in systems
        }

        for exp in experiments:
            for system in systems:
                run = exp.runs.get(system)
                if run is None:
                    continue
                utilities = [
                    self.individual_utility(f, p)
                    for f, p in zip(run.best_f_per_query, run.popularity)
                ]
                cutil = self.collective_utility(run.coverage, run.diversity)
                for _ in range(self._n_users):
                    for u in utilities:
                        noisy = float(
                            np.clip(u + rng.normal(0.0, self._noise_sd), 0.0, 1.0)
                        )
                        ind_scores[system].append(1.0 + 4.0 * noisy)
                        ind_options[system][_individual_option(noisy)] += 1
                    noisy_c = float(
                        np.clip(cutil + rng.normal(0.0, self._noise_sd), 0.0, 1.0)
                    )
                    col_scores[system].append(1.0 + 4.0 * noisy_c)
                    col_options[system][_collective_option(noisy_c)] += 1

        return UserStudyResult(
            individual_scores={
                s: float(np.mean(v)) for s, v in ind_scores.items() if v
            },
            individual_options={
                s: _percentages(counts) for s, counts in ind_options.items()
            },
            collective_scores={
                s: float(np.mean(v)) for s, v in col_scores.items() if v
            },
            collective_options={
                s: _percentages(counts) for s, counts in col_options.items()
            },
        )


def _individual_option(utility: float) -> str:
    """(A) highly related & helpful / (B) related, better exists / (C) unrelated."""
    if utility > 0.75:
        return "A"
    if utility > 0.45:
        return "B"
    return "C"


def _collective_option(utility: float) -> str:
    """(C) comprehensive & diverse / (B) one missing / (A) neither."""
    if utility > 0.8:
        return "C"
    if utility > 0.5:
        return "B"
    return "A"


def _percentages(counts: dict[str, int]) -> dict[str, float]:
    total = sum(counts.values())
    if total == 0:
        return {o: 0.0 for o in counts}
    return {o: 100.0 * c / total for o, c in counts.items()}
