"""Wall-clock measurement helpers."""

from __future__ import annotations

import time
from typing import Callable


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(100))
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start


def measure_seconds(fn: Callable[[], object], repeat: int = 1) -> float:
    """Best-of-``repeat`` wall time of calling ``fn`` with no arguments."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
