"""ASCII rendering of paper-shaped tables and bar charts.

The benchmark harness prints every reproduced figure/table through these
helpers, so running ``pytest benchmarks/ --benchmark-only -s`` shows the
same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A plain aligned ASCII table. Floats are rendered with 3 decimals."""
    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 40,
    max_value: float | None = None,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal text bars, one per (label, value)."""
    if not items:
        raise ValueError("bar chart needs at least one item")
    peak = max_value if max_value is not None else max(v for _, v in items)
    peak = max(peak, 1e-12)
    label_w = max(len(label) for label, _ in items)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in items:
        n = int(round(width * min(value, peak) / peak))
        lines.append(f"{label.ljust(label_w)} | {'#' * n} {value:.3f}{unit}")
    return "\n".join(lines)


def format_grouped_series(
    row_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """A table with one row per label and one column per named series.

    Used for the per-query figures (Fig. 5, Fig. 6): rows are QS1..QW10,
    columns are systems.
    """
    headers = ["query"] + list(series)
    rows = []
    for i, label in enumerate(row_labels):
        row: list[object] = [label]
        for name in series:
            values = series[name]
            if len(values) != len(row_labels):
                raise ValueError(
                    f"series {name!r} has {len(values)} values "
                    f"for {len(row_labels)} rows"
                )
            row.append(values[i])
        rows.append(row)
    return format_table(headers, rows, title=title)
