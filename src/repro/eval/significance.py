"""Statistical significance testing for paired system comparisons.

Standard IR evaluation practice: when system A beats system B on mean
score over a query set, check that the difference is not noise. Two
classic paired tests, both exact-by-resampling and seeded:

* :func:`randomization_test` — Fisher's paired randomization (permutation)
  test: under H0 the per-query (a_i, b_i) labels are exchangeable, so the
  observed mean difference is compared against random sign flips.
* :func:`paired_bootstrap` — bootstrap resampling of queries; reports the
  probability that A fails to beat B on a resampled query set.

Both return conservative two-sided or one-sided p-values suitable for the
small query sets of this reproduction (n = 10 or 20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a paired test between two systems."""

    mean_a: float
    mean_b: float
    delta: float  # mean_a - mean_b
    p_value: float
    n_queries: int
    method: str

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _validate(a: Sequence[float], b: Sequence[float], rounds: int) -> None:
    if len(a) != len(b):
        raise ConfigError(f"paired lists differ in length: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ConfigError("need at least 2 paired observations")
    if rounds < 100:
        raise ConfigError(f"rounds must be >= 100, got {rounds}")


def randomization_test(
    a: Sequence[float],
    b: Sequence[float],
    rounds: int = 10000,
    seed: int = 0,
    two_sided: bool = True,
) -> SignificanceResult:
    """Paired randomization (sign-flip permutation) test.

    p = fraction of random sign assignments whose |mean difference| is at
    least the observed one (with the +1/+1 smoothing that keeps p > 0).
    """
    _validate(a, b, rounds)
    diffs = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    observed = float(diffs.mean())
    rng = np.random.default_rng(seed)
    signs = rng.choice((-1.0, 1.0), size=(rounds, diffs.size))
    samples = (signs * diffs).mean(axis=1)
    if two_sided:
        hits = int((np.abs(samples) >= abs(observed) - 1e-15).sum())
    else:
        hits = int((samples >= observed - 1e-15).sum())
    p = (hits + 1) / (rounds + 1)
    return SignificanceResult(
        mean_a=float(np.mean(a)),
        mean_b=float(np.mean(b)),
        delta=observed,
        p_value=float(p),
        n_queries=diffs.size,
        method="randomization",
    )


def paired_bootstrap(
    a: Sequence[float],
    b: Sequence[float],
    rounds: int = 10000,
    seed: int = 0,
) -> SignificanceResult:
    """One-sided paired bootstrap: P(A does not beat B on a resample).

    Queries are resampled with replacement; the p-value is the smoothed
    fraction of resamples where the mean difference is <= 0.
    """
    _validate(a, b, rounds)
    diffs = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    rng = np.random.default_rng(seed)
    n = diffs.size
    idx = rng.integers(0, n, size=(rounds, n))
    samples = diffs[idx].mean(axis=1)
    hits = int((samples <= 0.0).sum())
    p = (hits + 1) / (rounds + 1)
    return SignificanceResult(
        mean_a=float(np.mean(a)),
        mean_b=float(np.mean(b)),
        delta=float(diffs.mean()),
        p_value=float(p),
        n_queries=n,
        method="bootstrap",
    )
