"""Experiment runner: all systems × the 20 benchmark queries (§5).

The six systems of the paper's evaluation:

====================  =====================================================
ISKR                  §3 (benefit/cost refinement)
PEBC                  §4 (partial-elimination convergence, §4.3 strategy)
F-measure             ISKR control loop with exact delta-F values (§5.1)
CS                    TF-ICF cluster labels [6]
DataClouds            popular words over ranked results [15]
QueryLog              Google stand-in (synthetic query log)
====================  =====================================================

For comparability all cluster-based systems (ISKR, PEBC, F-measure, CS)
share the same retrieval and the same k-means clustering of each query's
results, mirroring the paper's setup. Per system we record the expanded
queries, per-cluster F-measures, the Eq. 1 score (cluster-based systems
only, §5.2.2), wall time, and the coverage/diversity signals consumed by
the user-study simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.api import ALGORITHMS, Session
from repro.baselines.cluster_summarization import ClusterSummarization
from repro.baselines.dataclouds import DataClouds
from repro.baselines.querylog import QueryLogSuggester
from repro.core.config import ExpansionConfig
from repro.core.metrics import eq1_score, precision_recall_f
from repro.core.universe import ResultUniverse
from repro.datasets.queries import BenchmarkQuery, all_queries
from repro.datasets.querylog_data import build_query_log
from repro.errors import ConfigError
from repro.index.search import SearchEngine
from repro.text.analyzer import Analyzer

CLUSTER_SYSTEMS = ("ISKR", "PEBC", "F-measure", "CS")
ALL_SYSTEMS = ("ISKR", "PEBC", "F-measure", "CS", "DataClouds", "QueryLog")

# Expansion-algorithm systems → their repro.api.ALGORITHMS registry names.
_SYSTEM_ALGORITHMS = {"ISKR": "iskr", "PEBC": "pebc", "F-measure": "fmeasure"}


@dataclass(frozen=True)
class SystemRun:
    """One system's output on one benchmark query."""

    system: str
    queries: tuple[tuple[str, ...], ...]
    fmeasures: tuple[float, ...]  # vs own cluster; empty if cluster-agnostic
    score: float | None  # Eq. 1; None for cluster-agnostic systems
    seconds: float
    # User-study signals (see repro.eval.user_study):
    best_f_per_query: tuple[float, ...] = field(default_factory=tuple)
    coverage: float = 0.0
    diversity: float = 0.0
    popularity: tuple[float, ...] = field(default_factory=tuple)

    def display_queries(self) -> list[str]:
        return [", ".join(q) for q in self.queries]


@dataclass(frozen=True)
class QueryExperiment:
    """All systems' outputs for one benchmark query."""

    query: BenchmarkQuery
    n_results: int
    n_clusters: int
    clustering_seconds: float
    runs: dict[str, SystemRun]


class ExperimentSuite:
    """Builds the corpora/engines once and runs per-query experiments.

    Parameters
    ----------
    seed:
        Master seed for corpus generation and the algorithms' RNGs.
    shopping_scale / wiki_docs_per_sense:
        Corpus sizing (defaults match DESIGN.md's workload shaping).
    use_stemming:
        The synthetic corpora emit canonical word forms, so experiments
        default to no stemming for readable expanded queries; retrieval is
        unaffected because queries and documents share the analyzer.
    """

    def __init__(
        self,
        seed: int = 0,
        shopping_scale: float = 1.0,
        wiki_docs_per_sense: int = 40,
        use_stemming: bool = False,
    ) -> None:
        self._seed = seed
        self._analyzer = Analyzer(use_stemming=use_stemming)
        self._sessions = {
            "shopping": (
                Session.builder()
                .dataset("shopping", scale=shopping_scale)
                .analyzer(self._analyzer)
                .seed(seed)
                .build()
            ),
            "wikipedia": (
                Session.builder()
                .dataset("wikipedia", docs_per_sense=wiki_docs_per_sense)
                .analyzer(self._analyzer)
                .seed(seed)
                .build()
            ),
        }
        self._query_log = build_query_log()

    @property
    def analyzer(self) -> Analyzer:
        return self._analyzer

    def session(self, dataset: str) -> Session:
        try:
            return self._sessions[dataset]
        except KeyError:
            raise ConfigError(f"unknown dataset {dataset!r}") from None

    def engine(self, dataset: str) -> SearchEngine:
        return self.session(dataset).engine

    def config_for(self, query: BenchmarkQuery) -> ExpansionConfig:
        """Paper setup: top-30 results on Wikipedia, all results on shopping."""
        return ExpansionConfig(
            n_clusters=query.n_clusters,
            top_k_results=30 if query.dataset == "wikipedia" else None,
            cluster_seed=self._seed,
        )

    # -- single query ---------------------------------------------------------

    def run_query(
        self,
        query: BenchmarkQuery,
        systems: tuple[str, ...] = ALL_SYSTEMS,
    ) -> QueryExperiment:
        """Run the requested systems on one benchmark query."""
        unknown = set(systems) - set(ALL_SYSTEMS)
        if unknown:
            raise ConfigError(f"unknown systems: {sorted(unknown)}")
        config = self.config_for(query)
        # Shared retrieval + clustering for all cluster-based systems, via a
        # config-override view of the dataset's session (engine and caches
        # are shared across queries; retrieval of repeated queries is free).
        session = self.session(query.dataset).with_config(
            n_clusters=config.n_clusters, top_k_results=config.top_k_results
        )
        engine = session.engine
        # One partial pipeline run supplies every cluster-based system with
        # identical artifacts; clustering time comes from the pipeline's
        # timing middleware instead of an ad-hoc stopwatch.
        ctx = session.run_stages(query.text, until="tasks")
        results = list(ctx.results)
        labels = ctx.labels
        clustering_seconds = ctx.seconds_for("cluster")
        universe = ctx.universe
        tasks = list(ctx.tasks)
        cluster_masks = [t.cluster_mask for t in tasks]

        runs: dict[str, SystemRun] = {}
        for system in systems:
            if system in ("ISKR", "PEBC", "F-measure"):
                runs[system] = self._run_expansion_algorithm(
                    system, tasks, universe, cluster_masks
                )
            elif system == "CS":
                runs[system] = self._run_cs(
                    engine, query, results, labels, universe, cluster_masks, config
                )
            elif system == "DataClouds":
                runs[system] = self._run_dataclouds(
                    engine, query, results, universe, cluster_masks
                )
            else:  # QueryLog
                runs[system] = self._run_querylog(query, universe, cluster_masks)
        return QueryExperiment(
            query=query,
            n_results=len(results),
            n_clusters=len(set(int(lab) for lab in labels)),
            clustering_seconds=clustering_seconds,
            runs=runs,
        )

    def run_all(
        self,
        systems: tuple[str, ...] = ALL_SYSTEMS,
        queries: tuple[BenchmarkQuery, ...] | None = None,
    ) -> list[QueryExperiment]:
        """Run the requested systems on every benchmark query."""
        return [
            self.run_query(q, systems=systems) for q in (queries or all_queries())
        ]

    # -- per-system runners --------------------------------------------------

    def _make_algorithm(self, system: str):
        return ALGORITHMS.create(_SYSTEM_ALGORITHMS[system], seed=self._seed)

    def _run_expansion_algorithm(
        self, system, tasks, universe, cluster_masks
    ) -> SystemRun:
        algorithm = self._make_algorithm(system)
        t0 = time.perf_counter()
        outcomes = [algorithm.expand(task) for task in tasks]
        seconds = time.perf_counter() - t0
        queries = tuple(o.terms for o in outcomes)
        fmeasures = tuple(o.fmeasure for o in outcomes)
        return self._finish_run(
            system, queries, fmeasures, eq1_score(fmeasures), seconds,
            universe, cluster_masks,
        )

    def _run_cs(
        self, engine, query, results, labels, universe, cluster_masks, config
    ) -> SystemRun:
        cs = ClusterSummarization()
        t0 = time.perf_counter()
        suggestions = cs.suggest(
            engine, query.text, results, labels, universe,
            max_queries=config.max_expanded_queries,
        )
        seconds = time.perf_counter() - t0
        return self._finish_run(
            "CS", suggestions.queries, suggestions.fmeasures,
            eq1_score(suggestions.fmeasures) if suggestions.fmeasures else None,
            seconds, universe, cluster_masks,
        )

    def _run_dataclouds(
        self, engine, query, results, universe, cluster_masks
    ) -> SystemRun:
        dc = DataClouds(n_queries=query.n_clusters)
        t0 = time.perf_counter()
        suggestions = dc.suggest(engine, query.text, results)
        seconds = time.perf_counter() - t0
        return self._finish_run(
            "DataClouds", suggestions.queries, (), None, seconds,
            universe, cluster_masks,
        )

    def _run_querylog(self, query, universe, cluster_masks) -> SystemRun:
        suggester = QueryLogSuggester(
            self._query_log, n_queries=query.n_clusters, analyzer=self._analyzer
        )
        t0 = time.perf_counter()
        suggestions = suggester.suggest(query.text)
        seconds = time.perf_counter() - t0
        # Familiarity is relative to this query's suggestion list: the top
        # suggestion is maximally familiar (raters see ranked suggestions,
        # not absolute log counts).
        counts = [
            self._query_log.popularity(" ".join(q)) for q in suggestions.queries
        ]
        peak = max(counts, default=0)
        popularity = tuple(
            (c / peak if peak > 0 else 0.0) for c in counts
        )
        return self._finish_run(
            "QueryLog", suggestions.queries, (), None, seconds,
            universe, cluster_masks, popularity=popularity,
        )

    # -- shared signal computation ---------------------------------------------

    def _finish_run(
        self,
        system: str,
        queries: tuple[tuple[str, ...], ...],
        fmeasures: tuple[float, ...],
        score: float | None,
        seconds: float,
        universe: ResultUniverse,
        cluster_masks: list[np.ndarray],
        popularity: tuple[float, ...] = (),
    ) -> SystemRun:
        masks = [universe.results_mask(q) for q in queries]
        best_f = tuple(
            max(
                (precision_recall_f(universe, m, cm)[2] for cm in cluster_masks),
                default=0.0,
            )
            for m in masks
        )
        coverage = 0.0
        diversity = 0.0
        if masks:
            union = universe.empty_mask()
            for m in masks:
                union |= m
            total = universe.total_weight()
            coverage = universe.weight_of(union) / total if total > 0 else 0.0
            diversity = 1.0 - _mean_pairwise_overlap(universe, masks)
        if not popularity:
            popularity = tuple(0.0 for _ in queries)
        return SystemRun(
            system=system,
            queries=queries,
            fmeasures=fmeasures,
            score=score,
            seconds=seconds,
            best_f_per_query=best_f,
            coverage=coverage,
            diversity=diversity,
            popularity=popularity,
        )


def _mean_pairwise_overlap(
    universe: ResultUniverse, masks: list[np.ndarray]
) -> float:
    """Mean weighted Jaccard overlap between the queries' result sets.

    A single query (or all-empty results) counts as zero overlap: one
    suggestion cannot be redundant with itself.
    """
    if len(masks) < 2:
        return 0.0
    overlaps: list[float] = []
    for i in range(len(masks)):
        for j in range(i + 1, len(masks)):
            union = universe.weight_of(masks[i] | masks[j])
            if union <= 0.0:
                overlaps.append(0.0)
            else:
                inter = universe.weight_of(masks[i] & masks[j])
                overlaps.append(inter / union)
    return float(np.mean(overlaps))
