"""Evaluation harness: experiments, user-study simulation, reporting.

Maps one-to-one onto the paper's §5:

- :mod:`~repro.eval.experiment` — runs all six systems on the 20 benchmark
  queries, recording Eq. 1 scores (Fig. 5), wall times (Fig. 6) and the
  generated expanded queries (Figs. 8-9).
- :mod:`~repro.eval.user_study` — the simulated AMT panel (Figs. 1-4).
- :mod:`~repro.eval.scalability` — time vs result-count sweep (Fig. 7).
- :mod:`~repro.eval.reporting` — ASCII tables and bar charts used by the
  benchmark harness to print paper-shaped artifacts.
- :mod:`~repro.eval.timing` — measurement helpers.
"""

from repro.eval.experiment import ExperimentSuite, QueryExperiment, SystemRun
from repro.eval.presentation import render_expansion_report
from repro.eval.reporting import format_bar_chart, format_table
from repro.eval.scalability import ScalabilityPoint, run_scalability
from repro.eval.significance import (
    SignificanceResult,
    paired_bootstrap,
    randomization_test,
)
from repro.eval.timing import Timer, measure_seconds
from repro.eval.user_study import UserStudyResult, UserStudySimulator

__all__ = [
    "ExperimentSuite",
    "QueryExperiment",
    "ScalabilityPoint",
    "SignificanceResult",
    "SystemRun",
    "Timer",
    "UserStudyResult",
    "UserStudySimulator",
    "format_bar_chart",
    "format_table",
    "measure_seconds",
    "paired_bootstrap",
    "randomization_test",
    "render_expansion_report",
    "run_scalability",
]
