"""Rendering expansion reports for humans: queries, clusters, snippets.

The expansion pipeline returns structured data; search UIs show text.
:func:`render_expansion_report` produces the full presentation the paper's
framework implies: each expanded query with its cluster statistics, plus
query-biased snippets ([13]) of the cluster's top-ranked results, so the
user can judge which interpretation each suggestion captures.
"""

from __future__ import annotations

from typing import Callable

from repro.core.expander import ExpansionReport
from repro.errors import ConfigError
from repro.snippets import generate_snippet


def render_expansion_report(
    report: ExpansionReport,
    max_results_per_cluster: int = 3,
    snippet_width: int = 72,
    idf: Callable[[str], float] | None = None,
) -> str:
    """Multi-line text rendering of an :class:`ExpansionReport`.

    Results inside each cluster keep their ranking order; ``idf`` (when
    provided, typically ``engine.scorer.idf``) sharpens the structured
    snippets' feature selection.
    """
    if max_results_per_cluster < 1:
        raise ConfigError(
            f"max_results_per_cluster must be >= 1, got {max_results_per_cluster}"
        )
    if snippet_width < 10:
        raise ConfigError(f"snippet_width must be >= 10, got {snippet_width}")
    lines: list[str] = []
    lines.append(
        f"seed query {report.seed_query!r}: {report.n_results} results in "
        f"{report.n_clusters} clusters, Eq.1 score {report.score:.3f}"
    )
    # cluster_labels is aligned with the retrieval order of report.results.
    members_by_cluster: dict[int, list[int]] = {}
    for idx, label in enumerate(report.cluster_labels):
        members_by_cluster.setdefault(int(label), []).append(idx)

    for eq in report.expanded:
        lines.append("")
        lines.append(
            f"[cluster {eq.cluster_id}] {eq.display()}  "
            f"(F={eq.fmeasure:.3f}, P={eq.precision:.3f}, "
            f"R={eq.recall:.3f}, {eq.cluster_size} results)"
        )
        members = members_by_cluster.get(eq.cluster_id, [])
        for shown, result_idx in enumerate(members):
            if shown >= max_results_per_cluster:
                lines.append(f"    ... and {len(members) - shown} more")
                break
            result = report.results[result_idx]
            snippet = generate_snippet(
                result.document, eq.terms, idf=idf
            )[:snippet_width]
            lines.append(f"    {result.document.doc_id}: {snippet}")
    return "\n".join(lines)
