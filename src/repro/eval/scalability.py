"""Scalability experiment (Figure 7): time vs number of results.

The paper uses QW2 "columbia" and varies the result count from 100 to 500;
reported times include both clustering and query generation, and grow
roughly linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ExpansionConfig
from repro.core.expander import ClusterQueryExpander
from repro.core.iskr import ISKR
from repro.core.pebc import PEBC
from repro.datasets.vocab import WIKIPEDIA_SENSES
from repro.datasets.wikipedia import build_wikipedia_corpus
from repro.index.search import SearchEngine
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class ScalabilityPoint:
    """Times (clustering + expansion, seconds) at one result count."""

    n_results: int
    iskr_seconds: float
    pebc_seconds: float


def run_scalability(
    sizes: tuple[int, ...] = (100, 200, 300, 400, 500),
    term: str = "columbia",
    seed: int = 0,
    n_clusters: int = 3,
) -> list[ScalabilityPoint]:
    """Run the Fig. 7 sweep and return one point per requested size."""
    analyzer = Analyzer(use_stemming=False)
    n_senses = len(WIKIPEDIA_SENSES[term])
    points: list[ScalabilityPoint] = []
    for size in sizes:
        docs_per_sense = -(-size // n_senses)  # ceil division
        corpus = build_wikipedia_corpus(
            seed=seed,
            docs_per_sense=docs_per_sense,
            terms=[term],
            analyzer=analyzer,
        )
        engine = SearchEngine(corpus, analyzer)
        config = ExpansionConfig(
            n_clusters=n_clusters, top_k_results=size, cluster_seed=seed
        )
        iskr_report = ClusterQueryExpander(engine, ISKR(), config).expand(term)
        pebc_report = ClusterQueryExpander(engine, PEBC(seed=seed), config).expand(term)
        points.append(
            ScalabilityPoint(
                n_results=iskr_report.n_results,
                iskr_seconds=iskr_report.clustering_seconds
                + iskr_report.expansion_seconds,
                pebc_seconds=pebc_report.clustering_seconds
                + pebc_report.expansion_seconds,
            )
        )
    return points
