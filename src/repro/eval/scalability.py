"""Scalability experiment (Figure 7): time vs number of results.

The paper uses QW2 "columbia" and varies the result count from 100 to 500;
reported times include both clustering and query generation, and grow
roughly linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Session
from repro.datasets.vocab import WIKIPEDIA_SENSES


@dataclass(frozen=True)
class ScalabilityPoint:
    """Times (clustering + expansion, seconds) at one result count."""

    n_results: int
    iskr_seconds: float
    pebc_seconds: float


def run_scalability(
    sizes: tuple[int, ...] = (100, 200, 300, 400, 500),
    term: str = "columbia",
    seed: int = 0,
    n_clusters: int = 3,
    backend: str = "memory",
    **backend_kwargs,
) -> list[ScalabilityPoint]:
    """Run the Fig. 7 sweep and return one point per requested size.

    ``backend`` picks the index storage by registry name, so the sweep
    doubles as a backend scalability probe (``backend="sharded",
    shards=8`` and so on).
    """
    n_senses = len(WIKIPEDIA_SENSES[term])
    points: list[ScalabilityPoint] = []
    for size in sizes:
        docs_per_sense = -(-size // n_senses)  # ceil division
        # One session per corpus size; ISKR and PEBC share its retrieval
        # and candidate caches, so the corpus is searched once per size.
        session = (
            Session.builder()
            .dataset("wikipedia", docs_per_sense=docs_per_sense, terms=[term])
            .backend(backend, **backend_kwargs)
            .algorithm("iskr")
            .config(n_clusters=n_clusters, top_k_results=size)
            .seed(seed)
            .build()
        )
        iskr_report = session.expand(term)
        pebc_report = session.expand(term, algorithm="pebc")
        points.append(
            ScalabilityPoint(
                n_results=iskr_report.n_results,
                iskr_seconds=iskr_report.clustering_seconds
                + iskr_report.expansion_seconds,
                pebc_seconds=pebc_report.clustering_seconds
                + pebc_report.expansion_seconds,
            )
        )
    return points
