"""Classic IR effectiveness metrics plus suggestion-set quality measures.

Two groups:

* **Ranked-list metrics** (``precision_at_k``, ``average_precision``,
  ``reciprocal_rank``, ``ndcg_at_k``, ``mean_over_queries``) — standard
  textbook definitions, used to evaluate the retrieval substrate and the
  PRF baselines against sense-labeled ground truth.
* **Suggestion-set metrics** (``cluster_coverage``, ``sense_coverage``,
  ``pairwise_overlap``, ``distinct_result_fraction``) — quantify the two
  properties the paper's user study says a good set of expanded queries
  must have (§5.2.1 Part 3): *comprehensiveness* (the suggestions cover all
  interpretations / clusters of the original results) and *diversity*
  (their result sets have little overlap). These are the measurable
  counterparts of the study's options (A)/(B)/(C).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Set

from repro.errors import ConfigError

# --------------------------------------------------------------------------
# Ranked-list metrics
# --------------------------------------------------------------------------


def precision_at_k(ranked: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the top-``k`` ranked ids that are relevant.

    ``k`` larger than the list length treats missing positions as
    non-relevant (the conventional padded definition).
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if not relevant:
        return 0.0
    hits = sum(1 for doc_id in ranked[:k] if doc_id in relevant)
    return hits / k


def recall_at_k(ranked: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the relevant set found in the top-``k``."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if not relevant:
        return 0.0
    hits = sum(1 for doc_id in ranked[:k] if doc_id in relevant)
    return hits / len(relevant)


def average_precision(ranked: Sequence[str], relevant: Set[str]) -> float:
    """Average of precision@rank over the ranks of relevant documents.

    Unretrieved relevant documents contribute 0, so the value is the
    standard (uninterpolated) AP used in MAP.
    """
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, doc_id in enumerate(ranked, start=1):
        if doc_id in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def reciprocal_rank(ranked: Sequence[str], relevant: Set[str]) -> float:
    """1 / rank of the first relevant document; 0 if none is retrieved."""
    for rank, doc_id in enumerate(ranked, start=1):
        if doc_id in relevant:
            return 1.0 / rank
    return 0.0


def dcg_at_k(gains: Sequence[float], k: int) -> float:
    """Discounted cumulative gain with log2 discounts (position 1 undiscounted)."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    total = 0.0
    for i, gain in enumerate(gains[:k], start=1):
        if gain < 0.0:
            raise ConfigError(f"gains must be >= 0, got {gain}")
        total += gain / math.log2(i + 1)
    return total


def ndcg_at_k(ranked: Sequence[str], relevance: dict[str, float], k: int) -> float:
    """Normalized DCG@k against graded relevance (missing ids grade 0)."""
    gains = [relevance.get(doc_id, 0.0) for doc_id in ranked]
    ideal = sorted(relevance.values(), reverse=True)
    denom = dcg_at_k(ideal, k)
    if denom == 0.0:
        return 0.0
    return dcg_at_k(gains, k) / denom


def mean_over_queries(values: Iterable[float]) -> float:
    """Arithmetic mean, 0.0 for an empty iterable (e.g. MAP, mean nDCG)."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


# --------------------------------------------------------------------------
# Suggestion-set metrics (comprehensiveness & diversity)
# --------------------------------------------------------------------------


def cluster_coverage(
    suggestion_results: Sequence[Set[int]],
    cluster_members: Sequence[Set[int]],
    min_recall: float = 0.2,
) -> float:
    """Fraction of clusters "covered" by at least one suggestion.

    A cluster counts as covered when some suggestion retrieves at least
    ``min_recall`` of its members. This is the comprehensiveness axis of the
    user study: a suggestion set that only reflects the dominant sense
    leaves the minority clusters uncovered.
    """
    if not 0.0 < min_recall <= 1.0:
        raise ConfigError(f"min_recall must be in (0, 1], got {min_recall}")
    if not cluster_members:
        return 0.0
    covered = 0
    for members in cluster_members:
        if not members:
            continue
        for retrieved in suggestion_results:
            if len(retrieved & members) / len(members) >= min_recall:
                covered += 1
                break
    return covered / len(cluster_members)


def cluster_coverage_f(
    suggestion_results: Sequence[Set[int]],
    cluster_members: Sequence[Set[int]],
    min_f: float = 0.5,
) -> float:
    """Fraction of clusters matched by some suggestion with F-measure ≥ ``min_f``.

    Stricter than :func:`cluster_coverage`: a suggestion only covers a
    cluster if its result set *classifies* it — both retrieving the members
    (recall) and not drowning them in other results (precision). This is
    the per-cluster quality notion of the paper's Definition 2.2 turned
    into a coverage measure, so a near-universal suggestion ("seed + very
    common word") covers nothing small.
    """
    if not 0.0 < min_f <= 1.0:
        raise ConfigError(f"min_f must be in (0, 1], got {min_f}")
    if not cluster_members:
        return 0.0
    covered = 0
    for members in cluster_members:
        if not members:
            continue
        for retrieved in suggestion_results:
            if not retrieved:
                continue
            inter = len(retrieved & members)
            if inter == 0:
                continue
            precision = inter / len(retrieved)
            recall = inter / len(members)
            f = 2 * precision * recall / (precision + recall)
            if f >= min_f:
                covered += 1
                break
    return covered / len(cluster_members)


def sense_coverage(
    suggestion_results: Sequence[Set[int]],
    sense_of: dict[int, str],
) -> float:
    """Fraction of ground-truth senses hit by at least one suggestion.

    ``sense_of`` maps result position → sense label (dataset ground truth).
    A sense is hit if any suggestion retrieves at least one result of that
    sense. Stricter than :func:`cluster_coverage` in that it uses dataset
    truth rather than the clustering.
    """
    senses = set(sense_of.values())
    if not senses:
        return 0.0
    hit: set[str] = set()
    for retrieved in suggestion_results:
        for pos in retrieved:
            label = sense_of.get(pos)
            if label is not None:
                hit.add(label)
    return len(hit & senses) / len(senses)


def pairwise_overlap(suggestion_results: Sequence[Set[int]]) -> float:
    """Mean Jaccard overlap between all suggestion result-set pairs.

    0 means perfectly diverse suggestions (disjoint result sets); 1 means
    every suggestion retrieves the same results. Pairs of empty sets count
    as overlap 0 (they are vacuously diverse). Fewer than two suggestions
    → 0.0 by convention.
    """
    n = len(suggestion_results)
    if n < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            a, b = suggestion_results[i], suggestion_results[j]
            union = a | b
            total += (len(a & b) / len(union)) if union else 0.0
            pairs += 1
    return total / pairs


def distinct_result_fraction(
    suggestion_results: Sequence[Set[int]],
    universe_size: int,
) -> float:
    """Fraction of the universe retrieved by at least one suggestion.

    A combined comprehensiveness measure: the union of the suggestions'
    result sets over the seed query's result count.
    """
    if universe_size < 1:
        raise ConfigError(f"universe_size must be >= 1, got {universe_size}")
    union: set[int] = set()
    for retrieved in suggestion_results:
        union |= retrieved
    return len(union) / universe_size
