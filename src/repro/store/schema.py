"""SQLite schema and connection configuration for the document store.

One database file holds one corpus: a ``documents`` table (the durable
corpus, tombstones included), a ``vocabulary`` table interning terms, a
``postings`` table mirroring the inverted index, and a ``meta`` table
carrying the schema version and the monotonic generation counter.

Positions are permanent: a document's integer corpus position is
assigned at first upsert and never reused or shifted — deletes set the
``deleted`` flag (a tombstone) and compaction drops the tombstoned
*postings*, never the document rows. That keeps every position-addressed
structure above the store (corpus, search results, clustering labels)
stable across the whole mutate/compact/restart lifecycle.

Pragmas follow the embedded-store idiom (see SNIPPETS.md): WAL journal
mode so readers never block the writer, ``synchronous=NORMAL`` (safe
with WAL), and a generous ``busy_timeout`` so concurrent openers wait
instead of failing.
"""

from __future__ import annotations

import sqlite3

#: Bump when the table layout changes incompatibly.
SCHEMA_VERSION = 1

#: Applied to every connection (writer and per-thread readers).
PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA busy_timeout=30000",
    "PRAGMA foreign_keys=ON",
)

#: Schema DDL; idempotent so ``init`` can run against an existing store.
DDL = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS documents (
        pos     INTEGER PRIMARY KEY,
        doc_id  TEXT NOT NULL UNIQUE,
        kind    TEXT NOT NULL DEFAULT 'text',
        title   TEXT NOT NULL DEFAULT '',
        fields  TEXT NOT NULL DEFAULT '{}',
        terms   TEXT NOT NULL,
        length  INTEGER NOT NULL,
        deleted INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS vocabulary (
        term_id INTEGER PRIMARY KEY,
        term    TEXT NOT NULL UNIQUE
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS postings (
        term_id INTEGER NOT NULL REFERENCES vocabulary(term_id),
        pos     INTEGER NOT NULL REFERENCES documents(pos),
        tf      INTEGER NOT NULL,
        PRIMARY KEY (term_id, pos)
    ) WITHOUT ROWID
    """,
)


def configure(conn: sqlite3.Connection) -> None:
    """Apply the store pragmas to ``conn``."""
    for pragma in PRAGMAS:
        conn.execute(pragma)


def create_tables(conn: sqlite3.Connection) -> None:
    """Create the store tables (idempotent) and seed ``meta``."""
    for statement in DDL:
        conn.execute(statement)
    conn.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
        (str(SCHEMA_VERSION),),
    )
    conn.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES ('generation', '0')"
    )
