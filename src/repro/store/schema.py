"""SQLite schema and connection configuration for the document store.

One database file holds one corpus: a ``documents`` table (the durable
corpus, tombstones included), a ``vocabulary`` table interning terms, a
``postings`` table mirroring the inverted index, a ``changelog`` table
(the replication log tailed by :mod:`repro.feed`), a ``feed_claims``
table (per-consumer applied bookmarks), and a ``meta`` table carrying
the schema version, the monotonic generation counter, and the changelog
floor (the truncated prefix boundary).

Positions are permanent: a document's integer corpus position is
assigned at first upsert and never reused or shifted — deletes set the
``deleted`` flag (a tombstone) and compaction drops the tombstoned
*postings*, never the document rows. That keeps every position-addressed
structure above the store (corpus, search results, clustering labels)
stable across the whole mutate/compact/restart lifecycle.

Pragmas follow the embedded-store idiom (see SNIPPETS.md): WAL journal
mode so readers never block the writer, ``synchronous=NORMAL`` (safe
with WAL), and a generous ``busy_timeout`` so concurrent openers wait
instead of failing.
"""

from __future__ import annotations

import sqlite3

#: Bump when the table layout changes incompatibly.
SCHEMA_VERSION = 1

#: Applied to every connection (writer and per-thread readers).
PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA busy_timeout=30000",
    "PRAGMA foreign_keys=ON",
)

#: Schema DDL; idempotent so ``init`` can run against an existing store.
DDL = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS documents (
        pos     INTEGER PRIMARY KEY,
        doc_id  TEXT NOT NULL UNIQUE,
        kind    TEXT NOT NULL DEFAULT 'text',
        title   TEXT NOT NULL DEFAULT '',
        fields  TEXT NOT NULL DEFAULT '{}',
        terms   TEXT NOT NULL,
        length  INTEGER NOT NULL,
        deleted INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS vocabulary (
        term_id INTEGER PRIMARY KEY,
        term    TEXT NOT NULL UNIQUE
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS postings (
        term_id INTEGER NOT NULL REFERENCES vocabulary(term_id),
        pos     INTEGER NOT NULL REFERENCES documents(pos),
        tf      INTEGER NOT NULL,
        PRIMARY KEY (term_id, pos)
    ) WITHOUT ROWID
    """,
    # The replication log: one row per committed mutation batch, written
    # in the same transaction as the batch itself, so the log and the
    # data commit (or roll back) atomically. ``doc_ids`` and ``payload``
    # are JSON; document payloads are NOT duplicated here — changefeed
    # readers materialize them from ``documents`` at read time.
    """
    CREATE TABLE IF NOT EXISTS changelog (
        generation INTEGER PRIMARY KEY,
        kind       TEXT NOT NULL,
        doc_ids    TEXT NOT NULL,
        payload    TEXT NOT NULL DEFAULT '{}'
    )
    """,
    # Consumer bookmarks: the newest generation each named changefeed
    # consumer has durably applied. Compaction truncates the changelog
    # only up to the slowest claim, so an attached tailer never sees a
    # gap it didn't earn by falling behind a configured keep-window.
    """
    CREATE TABLE IF NOT EXISTS feed_claims (
        consumer   TEXT PRIMARY KEY,
        generation INTEGER NOT NULL,
        updated    REAL NOT NULL
    )
    """,
)


def configure(conn: sqlite3.Connection) -> None:
    """Apply the store pragmas to ``conn``."""
    for pragma in PRAGMAS:
        conn.execute(pragma)


def create_tables(conn: sqlite3.Connection) -> None:
    """Create the store tables (idempotent) and seed ``meta``."""
    for statement in DDL:
        conn.execute(statement)
    conn.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
        (str(SCHEMA_VERSION),),
    )
    conn.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES ('generation', '0')"
    )
    # ``changelog_floor`` = the newest generation NOT in the changelog
    # (log rows cover floor+1 .. generation, contiguously). Seeding it
    # from the *current* generation migrates pre-changelog stores
    # transparently: their history is simply not replayable, and a
    # tailer asking for it gets a gap signal (fall back to a snapshot).
    # Fresh stores seed generation='0' above, so their floor is 0.
    conn.execute(
        "INSERT OR IGNORE INTO meta (key, value) "
        "SELECT 'changelog_floor', value FROM meta WHERE key = 'generation'"
    )
