"""repro.store — durable, mutable document storage on SQLite.

The persistence subsystem: everything the in-memory backends cannot do.

* :class:`DocumentStore` — one SQLite file holding the corpus *and* its
  inverted index; WAL journal mode, transactional upsert/delete with
  tombstones, a monotonic generation counter, compaction, and
  backup-API snapshots. Restart-safe: reopening the file recovers
  exactly the committed state.
* :class:`SQLiteIndexBackend` — the
  :class:`~repro.index.backend.IndexBackend` face of a store
  (``capabilities(): persistent=True, mutable=True,
  concurrent_reads=True``), registered as ``"sqlite"`` in
  :data:`repro.api.registries.BACKENDS`::

      session = (Session.builder()
                 .dataset("wikipedia")
                 .backend("sqlite", path="corpus.sqlite")
                 .build())

  First build bulk-loads the dataset into the file; later builds verify
  and reuse it. The serving layer points a configuration at a store
  with ``store=<path>`` (see API.md: Persistence) so ingestion writes
  through and restarts lose nothing.
"""

from repro.store.backend import SQLiteIndexBackend
from repro.store.schema import SCHEMA_VERSION
from repro.store.store import DocumentStore

__all__ = [
    "DocumentStore",
    "SQLiteIndexBackend",
    "SCHEMA_VERSION",
]
