"""The durable, mutable document store behind the ``"sqlite"`` backend.

A :class:`DocumentStore` owns one SQLite database (see
:mod:`repro.store.schema`) and exposes the full write path the rest of
the library lacks:

* **upsert** — new ``doc_id`` values append at the next position; known
  ``doc_id`` values are rewritten in place at their existing position
  (payload and postings replaced, tombstone cleared), so the mapping
  ``doc_id -> position`` is stable for the lifetime of the store;
* **delete** — a tombstone: the document row stays (positions are
  permanent), its postings stop matching queries immediately, and
  :meth:`compact` later rewrites the postings table without them;
* **compact** — drops tombstoned postings and orphaned vocabulary
  entries, then ``VACUUM``\\ s the file;
* **snapshot / restore** — a transactionally consistent copy of the
  whole store via the SQLite backup API, safe while readers and the
  writer are live;
* **generation** — a monotonic counter bumped by every committed
  mutation and persisted in ``meta``, feeding the serving layer's
  cache-invalidation keys exactly like
  :attr:`repro.index.dynamic.DynamicIndex.generation`;
* **changelog** — a persisted replication log: one generation-stamped
  record per committed mutation batch, written in the *same transaction*
  as the batch, tailed by :mod:`repro.feed` for incremental replica
  maintenance and truncated (behind consumer claims) by background
  compaction;
* **subscribe** — mutation listeners mirroring
  :meth:`DynamicIndex.subscribe <repro.index.dynamic.DynamicIndex.subscribe>`
  (notified once per batch, exceptions isolated, empty batches silent).

Concurrency: one writer connection guarded by a lock, plus one lazily
opened read connection per thread — under WAL, readers never block the
writer and always see the last committed state. Hot per-document state
(lengths, tombstones, the vocabulary interning map) is mirrored in
memory so scorers pay no SQL per ``doc_length`` call. The mirrors are
rebuilt from the database at open, which is what makes a reopen after a
crash (or a plain restart) land in exactly the committed state.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.obs import span as _trace_span
from repro.errors import StoreError
from repro.store import schema

StoreListener = Callable[["DocumentStore"], None]


class DocumentStore:
    """Durable corpus + inverted index in one SQLite file.

    Parameters
    ----------
    path:
        Database file; created (with parent directories) if missing.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._write_lock = threading.RLock()
        self._local = threading.local()
        self._listeners: list[StoreListener] = []
        self._closed = False
        # The writer connection; shared across threads, always used under
        # the write lock. isolation_level=None = explicit transactions.
        self._writer = sqlite3.connect(
            str(self._path), check_same_thread=False, isolation_level=None
        )
        schema.configure(self._writer)
        with self._write_lock:  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            self._writer.execute("BEGIN IMMEDIATE")
            try:
                schema.create_tables(self._writer)
                self._writer.execute("COMMIT")
            except BaseException:
                self._writer.execute("ROLLBACK")
                raise
        version = int(self._meta("schema_version"))
        if version != schema.SCHEMA_VERSION:
            raise StoreError(
                f"store at {self._path} has schema version {version}; "
                f"this build reads version {schema.SCHEMA_VERSION}"
            )
        self._load_mirrors()

    # -- connections ---------------------------------------------------------

    def _read_conn(self) -> sqlite3.Connection:
        """This thread's read connection (WAL: never blocks the writer)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._closed:
                raise StoreError(f"store at {self._path} is closed")
            conn = sqlite3.connect(str(self._path), isolation_level=None)
            schema.configure(conn)
            self._local.conn = conn
        return conn

    def _meta(self, key: str) -> str:
        row = self._writer.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise StoreError(f"store at {self._path} has no meta key {key!r}")
        return row[0]

    def _load_mirrors(self) -> None:
        """Rebuild the in-memory hot state from the committed database."""
        self._generation = int(self._meta("generation"))
        self._changelog_floor = int(self._meta("changelog_floor"))
        self._doc_lengths: list[int] = []
        self._deleted: set[int] = set()
        self._pos_by_doc_id: dict[str, int] = {}
        for pos, doc_id, length, deleted in self._writer.execute(
            "SELECT pos, doc_id, length, deleted FROM documents ORDER BY pos"
        ):
            if pos != len(self._doc_lengths):
                raise StoreError(
                    f"store at {self._path} has a position gap at {pos}; "
                    f"the documents table is corrupt"
                )
            self._doc_lengths.append(int(length))
            self._pos_by_doc_id[doc_id] = pos
            if deleted:
                self._deleted.add(pos)
        self._term_ids: dict[str, int] = {
            term: term_id
            for term_id, term in self._writer.execute(
                "SELECT term_id, term FROM vocabulary"
            )
        }

    def close(self) -> None:
        """Close the writer connection (per-thread readers close with GC)."""
        self._closed = True
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
        self._writer.close()

    def __enter__(self) -> "DocumentStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def generation(self) -> int:
        """Monotone change counter; bump = every snapshot above is stale."""
        return self._generation

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def __len__(self) -> int:
        """Total allocated positions, tombstones included."""
        return len(self._doc_lengths)

    @property
    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def num_positions(self) -> int:
        return len(self._doc_lengths)

    @property
    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def num_live(self) -> int:
        """Documents that queries can still match."""
        return len(self._doc_lengths) - len(self._deleted)

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def __contains__(self, doc_id: object) -> bool:
        pos = self._pos_by_doc_id.get(doc_id)  # type: ignore[arg-type]
        return pos is not None and pos not in self._deleted

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def position(self, doc_id: str) -> int:
        """Position of ``doc_id`` (live or tombstoned)."""
        try:
            return self._pos_by_doc_id[doc_id]
        except KeyError:
            raise StoreError(f"unknown doc_id: {doc_id!r}") from None

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def is_deleted(self, pos: int) -> bool:
        return pos in self._deleted

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def deleted_positions(self) -> frozenset[int]:
        return frozenset(self._deleted)

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def doc_length(self, pos: int) -> int:
        return self._doc_lengths[pos]

    # -- document access -----------------------------------------------------

    @staticmethod
    def _row_to_document(row: tuple) -> Document:
        doc_id, kind, title, fields, terms = row
        # Term counts round-trip as JSON integers (upsert wrote them as
        # ints), so no per-term coercion on the hot cold-open path.
        return Document(
            doc_id=doc_id,
            terms=json.loads(terms),
            kind=kind,
            title=title,
            fields=json.loads(fields),
        )

    def document(self, pos: int) -> Document:
        """The document at ``pos`` (tombstoned documents keep their payload)."""
        row = self._read_conn().execute(
            "SELECT doc_id, kind, title, fields, terms FROM documents "
            "WHERE pos = ?",
            (pos,),
        ).fetchone()
        if row is None:
            raise StoreError(f"no document at position {pos}")
        return self._row_to_document(row)

    def documents(self) -> Iterator[Document]:
        """Every document in position order, tombstones included."""
        for row in self._read_conn().execute(
            "SELECT doc_id, kind, title, fields, terms FROM documents "
            "ORDER BY pos"
        ):
            yield self._row_to_document(row)

    def corpus(self) -> Corpus:
        """A :class:`Corpus` of *all* positions, in position order.

        Tombstoned documents are included so corpus positions line up
        with the store's permanent positions — the backend never returns
        them from queries, so they are unreachable through retrieval.
        """
        return Corpus(self.documents())

    # -- postings access -----------------------------------------------------

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def term_postings(self, term: str) -> list[tuple[int, int]]:
        """Live ``(position, tf)`` pairs for ``term``, position-sorted."""
        term_id = self._term_ids.get(term)
        if term_id is None:
            return []
        rows = self._read_conn().execute(
            "SELECT pos, tf FROM postings WHERE term_id = ? ORDER BY pos",
            (term_id,),
        ).fetchall()
        if self._deleted:
            dead = self._deleted
            return [(pos, tf) for pos, tf in rows if pos not in dead]
        return [(int(pos), int(tf)) for pos, tf in rows]

    def document_frequency(self, term: str) -> int:
        return len(self.term_postings(term))

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def vocabulary(self) -> list[str]:
        """Terms with at least one live posting, sorted."""
        if not self._deleted:
            # No tombstones: every interned term either has postings or
            # was orphaned by an upsert rewrite; filter via EXISTS.
            rows = self._read_conn().execute(
                "SELECT v.term FROM vocabulary v WHERE EXISTS "
                "(SELECT 1 FROM postings p WHERE p.term_id = v.term_id) "
                "ORDER BY v.term"
            ).fetchall()
        else:
            rows = self._read_conn().execute(
                "SELECT DISTINCT v.term FROM vocabulary v "
                "JOIN postings p ON p.term_id = v.term_id "
                "JOIN documents d ON d.pos = p.pos "
                "WHERE d.deleted = 0 ORDER BY v.term"
            ).fetchall()
        return [term for (term,) in rows]

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def num_terms(self) -> int:
        """Count of terms with at least one live posting."""
        if not self._deleted:
            (count,) = self._read_conn().execute(
                "SELECT COUNT(DISTINCT term_id) FROM postings"
            ).fetchone()
        else:
            (count,) = self._read_conn().execute(
                "SELECT COUNT(DISTINCT p.term_id) FROM postings p "
                "JOIN documents d ON d.pos = p.pos WHERE d.deleted = 0"
            ).fetchone()
        return int(count)

    # -- mutation listeners --------------------------------------------------

    def subscribe(self, listener: StoreListener) -> Callable[[], None]:
        """Register ``listener(store)`` to run after every committed mutation.

        Same contract as :meth:`DynamicIndex.subscribe
        <repro.index.dynamic.DynamicIndex.subscribe>`: one notification
        per batch, exceptions isolated, unsubscribe callable returned.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self) -> None:
        for listener in list(self._listeners):
            try:
                listener(self)
            except Exception:  # noqa: BLE001 — listener isolation
                continue

    # -- write path ----------------------------------------------------------

    def _transaction(self):
        """Context manager: write lock + BEGIN IMMEDIATE .. COMMIT/ROLLBACK."""
        return _WriteTransaction(self)

    def _intern_terms(self, terms: Iterable[str]) -> dict[str, int]:
        """Term → term_id, inserting unseen terms (writer lock held)."""
        missing = [t for t in terms if t not in self._term_ids]
        for term in missing:
            cur = self._writer.execute(
                "INSERT OR IGNORE INTO vocabulary (term) VALUES (?)", (term,)
            )
            if cur.lastrowid and cur.rowcount:
                self._term_ids[term] = cur.lastrowid
            else:  # pragma: no cover - interned by a racing process
                row = self._writer.execute(
                    "SELECT term_id FROM vocabulary WHERE term = ?", (term,)
                ).fetchone()
                self._term_ids[term] = row[0]
        return self._term_ids

    def _upsert_one(self, doc: Document) -> int:
        """Write one document inside the open transaction; return its pos."""
        existing = self._pos_by_doc_id.get(doc.doc_id)
        payload = (
            doc.kind,
            doc.title,
            json.dumps(dict(doc.fields), sort_keys=True),
            json.dumps({t: int(c) for t, c in doc.terms.items()}, sort_keys=True),
            doc.length(),
        )
        if existing is None:
            pos = len(self._doc_lengths)
            self._writer.execute(
                "INSERT INTO documents (pos, doc_id, kind, title, fields, "
                "terms, length) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (pos, doc.doc_id) + payload,
            )
            self._doc_lengths.append(doc.length())
            self._pos_by_doc_id[doc.doc_id] = pos
        else:
            pos = existing
            self._writer.execute(
                "UPDATE documents SET kind = ?, title = ?, fields = ?, "
                "terms = ?, length = ?, deleted = 0 WHERE pos = ?",
                payload + (pos,),
            )
            self._writer.execute("DELETE FROM postings WHERE pos = ?", (pos,))
            self._doc_lengths[pos] = doc.length()
            self._deleted.discard(pos)
        ids = self._intern_terms(sorted(doc.terms))
        self._writer.executemany(
            "INSERT INTO postings (term_id, pos, tf) VALUES (?, ?, ?)",
            [(ids[t], pos, int(doc.terms[t])) for t in sorted(doc.terms)],
        )
        return pos

    def upsert(self, doc: Document) -> int:
        """Insert or rewrite one document; returns its permanent position."""
        return self.upsert_all([doc])[0]

    def upsert_all(
        self,
        documents: Iterable[Document],
        on_committed: Callable[[list[int]], None] | None = None,
        guard: Callable[["DocumentStore", list[Document]], None] | None = None,
    ) -> list[int]:
        """Upsert a batch in one transaction; listeners notified once.

        An empty batch commits nothing, bumps nothing, and notifies
        nobody. On any error the whole batch rolls back (the in-memory
        mirrors are reloaded from the committed state), so a partially
        bad batch never becomes durable.

        ``guard(store, docs)`` — if given — runs under the write lock
        *before* the transaction begins; raising from it (e.g. a tenant
        quota check) rejects the batch atomically: no row written, no
        generation bump, mirrors untouched.

        ``on_committed(positions)`` runs after the COMMIT but *before*
        the write lock is released and before listeners fire — the hook
        the backend uses to sync its adopted corpus, so concurrent
        batches apply their corpus updates in commit order and every
        listener observes a consistent (store, corpus) pair.
        """
        docs = list(documents)
        if not docs:
            return []
        # The span opens before the write lock, so lock-wait under
        # contention is visible in the trace; no-op outside a request.
        with _trace_span("store.transaction", op="upsert", docs=len(docs)), \
                self._write_lock:  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            if guard is not None:
                guard(self, docs)
            self._writer.execute("BEGIN IMMEDIATE")
            try:
                positions = [self._upsert_one(doc) for doc in docs]
                self._bump_generation()
                self._log_change("upsert", [doc.doc_id for doc in docs])
                self._writer.execute("COMMIT")
            except BaseException:
                self._writer.execute("ROLLBACK")
                self._load_mirrors()
                raise
            if on_committed is not None:
                on_committed(positions)
        self._notify()
        return positions

    def delete(self, doc_id: str) -> int:
        """Tombstone ``doc_id``; returns the position it keeps forever.

        The payload and postings rows stay until :meth:`compact`;
        queries stop matching the document immediately. Deleting an
        unknown or already-deleted id raises :class:`StoreError`.
        """
        return self.delete_all([doc_id])[0]

    def delete_all(self, doc_ids: Iterable[str]) -> list[int]:
        """Tombstone a batch in one transaction; listeners notified once."""
        ids = list(doc_ids)
        if not ids:
            return []
        with _trace_span("store.transaction", op="delete", docs=len(ids)), \
                self._transaction():  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            positions = []
            for doc_id in ids:
                pos = self._pos_by_doc_id.get(doc_id)
                if pos is None:
                    raise StoreError(f"unknown doc_id: {doc_id!r}")
                if pos in self._deleted:
                    raise StoreError(f"doc_id already deleted: {doc_id!r}")
                self._writer.execute(
                    "UPDATE documents SET deleted = 1 WHERE pos = ?", (pos,)
                )
                self._deleted.add(pos)
                positions.append(pos)
            self._bump_generation()
            self._log_change("delete", ids)
        self._notify()
        return positions

    def _bump_generation(self) -> None:
        self._generation += 1
        self._writer.execute(
            "UPDATE meta SET value = ? WHERE key = 'generation'",
            (str(self._generation),),
        )

    def _log_change(
        self,
        kind: str,
        doc_ids: Iterable[str],
        payload: dict[str, Any] | None = None,
    ) -> None:
        """Append one replication-log record inside the open transaction.

        Runs right after :meth:`_bump_generation`, so the record carries
        the batch's generation and commits (or rolls back) atomically
        with the data it describes. Document payloads are not copied
        here — the changefeed materializes them from ``documents`` at
        read time, so the log stays O(batch) small and replays always
        converge on the latest stored payload.
        """
        self._writer.execute(
            "INSERT INTO changelog (generation, kind, doc_ids, payload) "
            "VALUES (?, ?, ?, ?)",
            (
                self._generation,
                kind,
                json.dumps(list(doc_ids)),
                json.dumps(payload or {}, sort_keys=True),
            ),
        )

    # -- maintenance ---------------------------------------------------------

    def compact(self, vacuum: bool = True) -> dict[str, int]:
        """Rewrite postings without tombstones, prune vocabulary, VACUUM.

        Document rows (and their positions) survive — including
        tombstoned ones, which keep their payload so position-aligned
        corpora stay loadable. Returns counts of what was dropped.

        ``vacuum=False`` skips the VACUUM + WAL checkpoint — the
        background :class:`~repro.feed.CompactionScheduler` uses it so
        its periodic compactions hold the write lock for microseconds
        instead of a full file rewrite; reclaiming disk bytes is then an
        explicit ``repro store compact`` decision.

        Compaction is itself a logged mutation (``kind="compact"``):
        changefeed tailers replay it against their private snapshot, so
        a replica's postings stay as dense as the source's and its
        generation counter stays aligned with the source's.
        """
        with _trace_span("store.transaction", op="compact"), \
                self._transaction():  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            dropped = self._writer.execute(
                "DELETE FROM postings WHERE pos IN "
                "(SELECT pos FROM documents WHERE deleted = 1)"
            ).rowcount
            orphaned = self._writer.execute(
                "DELETE FROM vocabulary WHERE NOT EXISTS "
                "(SELECT 1 FROM postings p WHERE p.term_id = vocabulary.term_id)"
            ).rowcount
            self._bump_generation()
            self._log_change(
                "compact",
                [],
                {"postings_dropped": int(dropped), "terms_dropped": int(orphaned)},
            )
        with self._write_lock:  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            # The term-map rebuild uses the writer connection and replaces
            # a guarded mirror; outside the lock it would race a concurrent
            # upsert's term interning and clobber its newly-added terms.
            self._term_ids = {
                term: term_id
                for term_id, term in self._writer.execute(
                    "SELECT term_id, term FROM vocabulary"
                )
            }
            if vacuum:
                self._writer.execute("VACUUM")
                # Fold the WAL back into the main file so the VACUUM's
                # space savings are visible on disk, not parked in the
                # -wal file.
                self._writer.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._notify()
        return {"postings_dropped": int(dropped), "terms_dropped": int(orphaned)}

    # -- replication log -----------------------------------------------------

    @property
    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def changelog_floor(self) -> int:
        """Newest generation *not* in the log (rows cover floor+1..generation)."""
        return self._changelog_floor

    def changelog_length(self) -> int:
        """Count of replication-log records still retained."""
        (count,) = self._read_conn().execute(
            "SELECT COUNT(*) FROM changelog"
        ).fetchone()
        return int(count)

    def truncate_changelog(self, upto: int) -> int:
        """Drop log records with ``generation <= upto``; returns how many.

        Raises the changelog floor (never lowers it, never past the
        current generation). Truncation is maintenance, not mutation: it
        does **not** bump the generation — the log must stay contiguous
        from floor+1 to generation — and does not notify listeners.
        """
        with self._transaction():  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            floor = max(self._changelog_floor, min(int(upto), self._generation))
            dropped = self._writer.execute(
                "DELETE FROM changelog WHERE generation <= ?", (floor,)
            ).rowcount
            self._writer.execute(
                "UPDATE meta SET value = ? WHERE key = 'changelog_floor'",
                (str(floor),),
            )
            self._changelog_floor = floor
        return int(dropped)

    def claim(self, consumer: str, generation: int) -> None:
        """Record that ``consumer`` has applied everything up to ``generation``.

        Claims bound changelog truncation (:meth:`truncate_changelog`
        callers take ``min`` over them) so an attached tailer is never
        handed a gap while it is keeping up.
        """
        if not consumer:
            raise StoreError("feed consumers need a non-empty name")
        with self._write_lock:  # analyze: ignore[LOCK001] - sqlite ops on the writer connection run under the write lock by design: one writer, mutators serialized
            self._writer.execute(
                "INSERT INTO feed_claims (consumer, generation, updated) "
                "VALUES (?, ?, ?) ON CONFLICT(consumer) DO UPDATE SET "
                "generation = excluded.generation, updated = excluded.updated",
                (consumer, int(generation), time.time()),
            )

    def claims(self) -> dict[str, int]:
        """Per-consumer applied generations (see :meth:`claim`)."""
        return {
            consumer: int(generation)
            for consumer, generation in self._read_conn().execute(
                "SELECT consumer, generation FROM feed_claims"
            )
        }

    def oldest_unclaimed_generation(self) -> int:
        """First generation some registered consumer has yet to apply.

        With no registered consumers every committed generation is
        considered applied, so this is ``generation + 1`` — the
        compaction trigger reads it as "the log prefix is free".
        """
        claims = self.claims()
        if not claims:
            return self.generation + 1
        return min(claims.values()) + 1

    def refresh(self) -> None:
        """Reload the in-memory mirrors if another process moved the file.

        The store assumes one writer *process*; tooling that hands the
        file between processes sequentially (CLI ingest, then a serving
        coordinator) calls this before writing so position allocation
        starts from the committed state, not a stale mirror. Cheap when
        nothing changed: a single meta read decides whether to reload.
        """
        with self._write_lock:
            if int(self._meta("generation")) != self._generation:
                self._load_mirrors()

    def snapshot(self, dest: str | Path) -> Path:
        """Write a consistent copy of the store to ``dest`` (backup API).

        Safe with live readers and a live writer: the backup sees one
        transactionally consistent point in time. The snapshot is a
        complete store file — open it with ``DocumentStore(dest)`` or
        copy it back with :meth:`restore`.
        """
        dest = Path(dest)
        if dest.resolve() == self._path.resolve():
            raise StoreError("snapshot destination must differ from the store path")
        dest.parent.mkdir(parents=True, exist_ok=True)
        if dest.exists():
            dest.unlink()
        target = sqlite3.connect(str(dest))
        try:
            with self._write_lock:  # analyze: ignore[LOCK001] - the backup runs under the write lock on purpose: a consistent copy requires the writer paused
                self._writer.backup(target)
        finally:
            target.close()
        return dest

    @classmethod
    def restore(cls, snapshot: str | Path, dest: str | Path) -> "DocumentStore":
        """Copy ``snapshot`` to ``dest`` and open the restored store."""
        snapshot = Path(snapshot)
        if not snapshot.exists():
            raise StoreError(f"no snapshot at {snapshot}")
        dest = Path(dest)
        if dest.resolve() == snapshot.resolve():
            raise StoreError("restore destination must differ from the snapshot")
        dest.parent.mkdir(parents=True, exist_ok=True)
        if dest.exists():
            dest.unlink()
        src = sqlite3.connect(str(snapshot))
        target = sqlite3.connect(str(dest))
        try:
            src.backup(target)
        finally:
            target.close()
            src.close()
        return cls(dest)

    # analyze: ignore[GUARD001] - lock-free reader by design: mirror bindings are replaced atomically (GIL) and a slightly stale view is acceptable to concurrent readers
    def stats(self) -> dict[str, Any]:
        """JSON-ready store statistics (for ``repro store stats`` and tests)."""
        conn = self._read_conn()
        (postings,) = conn.execute("SELECT COUNT(*) FROM postings").fetchone()
        (terms,) = conn.execute("SELECT COUNT(*) FROM vocabulary").fetchone()
        size = 0
        for suffix in ("", "-wal"):
            try:
                size += os.path.getsize(str(self._path) + suffix)
            except OSError:
                continue
        documents = len(self._doc_lengths)
        tombstones = len(self._deleted)
        return {
            "path": str(self._path),
            "schema_version": schema.SCHEMA_VERSION,
            "generation": self._generation,
            "documents": documents,
            "live_documents": self.num_live,
            "tombstones": tombstones,
            # The compaction trigger's inputs (see repro.feed): how much
            # of the store is dead weight, how long the replication log
            # has grown, and where the slowest feed consumer stands.
            "tombstone_ratio": tombstones / documents if documents else 0.0,
            "changelog_len": self.changelog_length(),
            "changelog_floor": self._changelog_floor,
            "oldest_unclaimed_generation": self.oldest_unclaimed_generation(),
            "terms": int(terms),
            "postings": int(postings),
            "file_bytes": int(size),
        }


class _WriteTransaction:
    """Write lock + explicit transaction; rollback reloads the mirrors."""

    def __init__(self, store: DocumentStore) -> None:
        self._store = store

    def __enter__(self) -> DocumentStore:
        self._store._write_lock.acquire()
        try:
            self._store._writer.execute("BEGIN IMMEDIATE")
        except BaseException:
            self._store._write_lock.release()
            raise
        return self._store

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self._store._writer.execute("COMMIT")
            else:
                self._store._writer.execute("ROLLBACK")
                # The in-memory mirrors may have advanced past the
                # rolled-back writes; rebuild them from committed state.
                self._store._load_mirrors()
        finally:
            self._store._write_lock.release()
