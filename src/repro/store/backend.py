"""``SQLiteIndexBackend`` — the :class:`IndexBackend` face of the store.

The backend adapts a :class:`~repro.store.store.DocumentStore` to the
retrieval protocol every scorer and engine already speaks, and adds the
mutation surface the serving layer expects from a mutable backend
(:meth:`add` / :meth:`add_all` / :meth:`remove` / :meth:`subscribe` /
``generation``), writing through to the store so every committed
document survives a restart.

Corpus adoption works like :class:`~repro.index.dynamic.DynamicIndex`:
the backend shares the engine's :class:`~repro.data.corpus.Corpus`
object, so documents upserted after construction are immediately
retrievable through the engine. Construction has three modes:

* no corpus — the corpus is loaded *from* the store (the restart path);
* a corpus and an empty store — the corpus is bulk-loaded into the
  store (the first-boot path, one transaction);
* a corpus and a populated store — the two are verified to describe the
  same documents (position-aligned ``doc_id`` and length), and a
  mismatch raises instead of silently serving other data, exactly like
  the ``"disk"`` backend's stale-file check.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import IndexingError, StoreError
from repro.index.backend import BackendCapabilities
from repro.index.postings import Posting, PostingList, intersect_all, union_all
from repro.store.store import DocumentStore


class SQLiteIndexBackend:
    """Persistent, mutable, concurrently readable index over a store.

    Parameters
    ----------
    store:
        An open :class:`DocumentStore` or a path to one.
    corpus:
        The corpus to align with (see module docstring); ``None`` loads
        it from the store.
    """

    def __init__(
        self,
        store: DocumentStore | str | Path,
        corpus: Corpus | None = None,
    ) -> None:
        if not isinstance(store, DocumentStore):
            store = DocumentStore(store)
        self._store = store
        if corpus is None:
            corpus = store.corpus()
        elif len(store) == 0:
            if len(corpus):
                store.upsert_all(list(corpus))
        else:
            self._verify_alignment(store, corpus)
        self._corpus = corpus

    @staticmethod
    def _verify_alignment(store: DocumentStore, corpus: Corpus) -> None:
        if len(store) != len(corpus):
            raise IndexingError(
                f"store at {store.path} holds {len(store)} positions but the "
                f"corpus has {len(corpus)} documents; they must describe the "
                f"same data (delete the store file to rebuild)"
            )
        for pos, doc in enumerate(corpus):
            try:
                aligned = store.position(doc.doc_id) == pos
            except StoreError:
                aligned = False
            if not aligned or store.doc_length(pos) != doc.length():
                raise IndexingError(
                    f"store at {store.path} disagrees with the corpus at "
                    f"position {pos} ({doc.doc_id!r}); delete the store "
                    f"file to rebuild"
                )

    # -- store plumbing ------------------------------------------------------

    @property
    def store(self) -> DocumentStore:
        return self._store

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def generation(self) -> int:
        """The store's monotonic change counter (cache-invalidation key)."""
        return self._store.generation

    def subscribe(self, listener: Callable) -> Callable[[], None]:
        """Register ``listener(backend)`` after every committed mutation.

        Mirrors :meth:`DynamicIndex.subscribe
        <repro.index.dynamic.DynamicIndex.subscribe>` — one notification
        per batch, exceptions isolated, unsubscribe callable returned.
        """
        return self._store.subscribe(lambda _store: listener(self))

    # -- mutation (write-through) --------------------------------------------

    def add(self, doc: Document) -> int:
        """Upsert one document durably; returns its permanent position."""
        positions = self.add_all([doc])
        return positions[0]

    def add_all(
        self,
        documents: Iterable[Document],
        guard: Callable[[DocumentStore, list[Document]], None] | None = None,
    ) -> list[int]:
        """Upsert a batch durably (one transaction, one notification).

        New ``doc_id`` values append to the adopted corpus; known ones
        are rewritten in place (corpus entry replaced), so engine
        lookups at any returned position always see the stored payload.
        The corpus sync runs in the store's ``on_committed`` hook —
        under the write lock, in commit order, before listeners fire —
        so concurrent ingests cannot interleave corpus appends out of
        store-position order, and every mutation listener observes a
        consistent (store, corpus) pair.

        ``guard`` is forwarded to :meth:`DocumentStore.upsert_all` and
        runs under the write lock before the transaction begins — the
        tenancy layer's transactional quota hook.
        """
        docs = list(documents)
        if not docs:
            return []

        def sync_corpus(_positions: list[int]) -> None:
            for doc in docs:
                if doc.doc_id in self._corpus:
                    self._corpus.replace(doc)
                else:
                    self._corpus.add(doc)

        return self._store.upsert_all(docs, on_committed=sync_corpus, guard=guard)

    def remove(self, target: str | int) -> int:
        """Tombstone a document (by ``doc_id`` or integer position).

        Queries stop matching it immediately; the corpus keeps the
        document (positions are permanent) and the postings stay until
        :meth:`DocumentStore.compact` physically drops them. Accepting
        either identity form keeps parity with
        :meth:`DynamicIndex.remove <repro.index.dynamic.DynamicIndex.remove>`.
        """
        if isinstance(target, int):
            target = self._corpus[target].doc_id
        return self._store.delete(target)

    # -- IndexBackend protocol -----------------------------------------------

    @property
    def num_documents(self) -> int:
        """Total allocated positions (tombstones included), = corpus length."""
        return len(self._store)

    @property
    def num_live_documents(self) -> int:
        return self._store.num_live

    @property
    def num_terms(self) -> int:
        return self._store.num_terms()

    def __contains__(self, term: object) -> bool:
        return isinstance(term, str) and self._store.document_frequency(term) > 0

    def vocabulary(self) -> list[str]:
        return self._store.vocabulary()

    def postings(self, term: str) -> PostingList:
        return PostingList(
            Posting(pos, tf) for pos, tf in self._store.term_postings(term)
        )

    def document_frequency(self, term: str) -> int:
        return self._store.document_frequency(term)

    def doc_length(self, pos: int) -> int:
        return self._store.doc_length(pos)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="sqlite",
            persistent=True,
            mutable=True,
            concurrent_reads=True,
        )

    def _visible(self, positions: list[int]) -> list[int]:
        """Drop positions the adopted corpus cannot resolve yet.

        A lock-free reader can observe a committed batch's postings in
        the instant before :meth:`add_all`'s corpus sync runs; such
        positions become visible on the very next query instead of
        crashing result materialization.
        """
        bound = len(self._corpus)
        if positions and positions[-1] >= bound:
            return [pos for pos in positions if pos < bound]
        return positions

    def and_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("AND query needs at least one term")
        lists = [self.postings(t) for t in term_list]
        if any(not pl for pl in lists):
            return []
        return self._visible(intersect_all(lists).doc_ids())

    def or_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("OR query needs at least one term")
        return self._visible(
            union_all([self.postings(t) for t in term_list]).doc_ids()
        )

    def close(self) -> None:
        self._store.close()
