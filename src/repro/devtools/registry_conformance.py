"""Registry/protocol conformance: registered classes must honor contracts.

* **REG001** — every class reachable from a ``BACKENDS`` / ``ALGORITHMS``
  / ``CLUSTERERS`` / ``SCORERS`` / ``STAGES`` registration (decorated
  factory, direct ``register(name, cls)`` call, or factory return value)
  must define the registry's protocol surface. The surface is read from
  the live ``Protocol`` class when it is part of the analyzed tree
  (``IndexBackend`` for backends, ``Stage`` for stages) and falls back
  to a pinned method list otherwise (so fixture subsets still check).
* **REG002** — ``capabilities()`` claims must match reality: a backend
  constructing ``BackendCapabilities(mutable=True, ...)`` must define
  ``add_all`` + ``remove``; ``sharded=True`` requires a ``shards``
  member (the fan-out accessor ``collection_term_frequencies`` uses).

Factory resolution is static: ``return Cls(...)``, ``return
Cls.build(...)`` (classmethod constructors), and ``x = Cls(...); return
x`` all resolve; factories whose return value cannot be traced to a
project class are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.devtools.engine import (
    ClassInfo,
    Finding,
    Module,
    Project,
    dotted,
)


@dataclass(frozen=True)
class RegistrySpec:
    """What one registry demands of the classes registered in it."""

    registry: str
    protocol: str | None  # qualified Protocol class to read the surface from
    fallback: frozenset[str]  # surface when the protocol isn't analyzed
    capability_rules: Mapping[str, frozenset[str]] = field(default_factory=dict)


_BACKEND_SURFACE = frozenset(
    {
        "num_documents",
        "num_terms",
        "__contains__",
        "vocabulary",
        "postings",
        "document_frequency",
        "doc_length",
        "and_query",
        "or_query",
        "capabilities",
    }
)

DEFAULT_SPECS: tuple[RegistrySpec, ...] = (
    RegistrySpec(
        registry="BACKENDS",
        protocol="repro.index.backend.IndexBackend",
        fallback=_BACKEND_SURFACE,
        capability_rules={
            "mutable": frozenset({"add_all", "remove"}),
            "sharded": frozenset({"shards"}),
        },
    ),
    RegistrySpec(
        registry="STAGES",
        protocol="repro.pipeline.pipeline.Stage",
        fallback=frozenset({"name", "run"}),
    ),
    RegistrySpec(
        registry="ALGORITHMS",
        protocol=None,
        fallback=frozenset({"name", "expand"}),
    ),
    RegistrySpec(
        registry="CLUSTERERS",
        protocol=None,
        fallback=frozenset({"fit_predict"}),
    ),
    RegistrySpec(
        registry="SCORERS",
        protocol=None,
        fallback=frozenset({"score", "rank"}),
    ),
)


@dataclass
class _Registration:
    spec: RegistrySpec
    reg_name: str  # the string key, e.g. "sqlite"
    module: Module
    line: int
    symbol: str


class RegistryConformanceChecker:
    """REG001 (surface) and REG002 (capabilities claims)."""

    name = "registry"

    def __init__(self, specs: Iterable[RegistrySpec] = DEFAULT_SPECS) -> None:
        self.specs = {s.registry: s for s in specs}

    # -- discovery ---------------------------------------------------------

    def _registrations(
        self, project: Project
    ) -> list[tuple[_Registration, ClassInfo | None]]:
        out: list[tuple[_Registration, ClassInfo | None]] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    for dec in node.decorator_list:
                        reg = self._match_register(dec)
                        if reg is None:
                            continue
                        spec_name, key, line = reg
                        spec = self.specs.get(spec_name)
                        if spec is None:
                            continue
                        meta = _Registration(spec, key, module, line, node.name)
                        if isinstance(node, ast.ClassDef):
                            out.append((meta, module.classes.get(node.name)))
                        else:
                            for cls in self._factory_classes(module, project, node):
                                out.append((meta, cls))
                elif isinstance(node, ast.Call):
                    reg = self._match_register(node)
                    if reg is None or len(node.args) < 2:
                        continue
                    spec_name, key, line = reg
                    spec = self.specs.get(spec_name)
                    if spec is None:
                        continue
                    target = node.args[1]
                    name = dotted(target)
                    if name is None:
                        continue
                    meta = _Registration(spec, key, module, line, name)
                    resolved = project.resolve_class(module.qualify(name))
                    if resolved is not None:
                        out.append((meta, resolved))
                    elif name in module.functions:
                        for cls in self._factory_classes(
                            module, project, module.functions[name]
                        ):
                            out.append((meta, cls))
        return out

    def _match_register(self, node: ast.expr) -> tuple[str, str, int] | None:
        """(registry_name, key, line) for ``<REG>.register("key", ...)``."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "register"):
            return None
        reg = dotted(func.value)
        if reg is None:
            return None
        reg_leaf = reg.rsplit(".", 1)[-1]
        key = ""
        if node.args and isinstance(node.args[0], ast.Constant):
            key = str(node.args[0].value)
        return reg_leaf, key, node.lineno

    def _factory_classes(
        self,
        module: Module,
        project: Project,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[ClassInfo]:
        """Classes a factory can return, traced statically."""
        aliases = module.function_aliases(func)
        assigns: dict[str, ast.expr] = {}
        returns: list[ast.expr] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        assigns[t.id] = node.value
            elif isinstance(node, ast.Return) and node.value is not None:
                returns.append(node.value)

        def resolve_call(call: ast.Call) -> ClassInfo | None:
            name = dotted(call.func)
            if name is None:
                return None
            # Cls(...) or Cls.build(...) / Cls.load(...) classmethod ctors.
            for candidate in (name, name.rsplit(".", 1)[0] if "." in name else None):
                if not candidate:
                    continue
                root, _, rest = candidate.partition(".")
                base = aliases.get(root, f"{module.name}.{root}")
                qual = f"{base}.{rest}" if rest else base
                cls = project.resolve_class(qual)
                if cls is not None:
                    return cls
            return None

        found: list[ClassInfo] = []
        for ret in returns:
            target: ast.expr | None = ret
            if isinstance(target, ast.Name):
                target = assigns.get(target.id)
            if isinstance(target, ast.Call):
                cls = resolve_call(target)
                if cls is not None and cls not in found:
                    found.append(cls)
        return found

    # -- surface / capabilities --------------------------------------------

    def _surface(self, spec: RegistrySpec, project: Project) -> frozenset[str]:
        if spec.protocol is not None:
            proto = project.resolve_class(spec.protocol)
            if proto is not None:
                names = {
                    m for m in proto.methods if m not in ("__init__",)
                } | {a for a in proto.class_attrs}
                if names:
                    return frozenset(names)
        return spec.fallback

    def check(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for meta, cls in self._registrations(project):
            if cls is None:
                continue
            members, complete = project.class_members(cls)
            surface = self._surface(meta.spec, project)
            missing = sorted(surface - members)
            if missing and complete:
                findings.append(
                    Finding(
                        rule="REG001",
                        path=meta.module.rel,
                        line=meta.line,
                        symbol=meta.symbol,
                        message=(
                            f"'{meta.reg_name}' in {meta.spec.registry} resolves "
                            f"to {cls.name}, which is missing: {', '.join(missing)}"
                        ),
                    )
                )
            findings.extend(self._check_capabilities(meta, cls, members))
        return findings

    def _check_capabilities(
        self, meta: _Registration, cls: ClassInfo, members: set[str]
    ) -> list[Finding]:
        rules = meta.spec.capability_rules
        caps = cls.methods.get("capabilities")
        if not rules or caps is None:
            return []
        findings: list[Finding] = []
        for node in ast.walk(caps):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted(node.func) or ""
            if callee.rsplit(".", 1)[-1] != "BackendCapabilities":
                continue
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                required = rules.get(kw.arg)
                if required is None:
                    continue
                if not (isinstance(kw.value, ast.Constant) and kw.value.value is True):
                    continue
                lacking = sorted(required - members)
                if lacking:
                    findings.append(
                        Finding(
                            rule="REG002",
                            path=cls.module.rel,
                            line=node.lineno,
                            symbol=f"{cls.name}.capabilities",
                            message=(
                                f"claims {kw.arg}=True but {cls.name} does not "
                                f"define: {', '.join(lacking)}"
                            ),
                        )
                    )
        return findings
