"""Schema sync: ``to_dict``/``from_dict`` pairs must cover every field.

The wire format (``repro.api.schema``) serializes dataclasses through
module-level ``<name>_to_dict`` / ``<name>_from_dict`` function pairs,
and a few dataclasses carry method-form ``to_dict`` / ``from_dict``
(e.g. ``StageTiming``). Either way the round-trip contract is the same:
every constructor field must be written by the serializer and passed by
the deserializer, otherwise a field silently drops on the wire.

* **SCHEMA001** (error) — ``to_dict`` never reads some constructor
  field of the target class (``dataclasses.asdict``/``dict(obj)`` on
  the object counts as full coverage).
* **SCHEMA002** (error) — ``from_dict``'s constructor call does not
  pass some field (positionally or by keyword; ``**kwargs`` counts as
  full coverage).
* **SCHEMA003** (warning) — key asymmetry: ``to_dict`` writes a payload
  key ``from_dict`` never reads, or vice versa (envelope keys
  ``schema_version``/``kind`` are exempt).

Only *pairs* are checked: a lone ``to_dict`` is a view, not a
round-trip, and carries no sync obligation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.devtools.engine import (
    ClassInfo,
    Finding,
    Module,
    Project,
    dotted,
)

_ENVELOPE_KEYS = {"schema_version", "kind"}


@dataclass
class _Pair:
    to_fn: ast.FunctionDef | ast.AsyncFunctionDef
    from_fn: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ClassInfo
    module: Module
    symbol_prefix: str
    obj_param: str  # the serialized object's name inside to_fn ("self", ...)


def _class_fields(cls: ClassInfo) -> list[str]:
    """Constructor fields: dataclass/NamedTuple AnnAssigns, else __init__."""
    fields: list[str] = []
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = dotted(stmt.annotation) or ""
            if "ClassVar" in ann:
                continue
            fields.append(stmt.target.id)
    if fields:
        return fields
    init = cls.methods.get("__init__")
    if init is None:
        return []
    args = init.args
    return [a.arg for a in args.posonlyargs + args.args if a.arg != "self"]


def _reads_of(func: ast.AST, obj: str) -> tuple[set[str], bool]:
    """(attributes read off ``obj``, full_coverage_via_asdict)."""
    attrs: set[str] = set()
    full = False
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == obj
        ):
            attrs.add(node.attr)
        elif isinstance(node, ast.Call):
            # asdict(self) / dict(obj) — and plain delegation like
            # ``return report_to_dict(self)``, where the callee (checked
            # separately as a function pair) owns field coverage.
            if any(isinstance(a, ast.Name) and a.id == obj for a in node.args):
                full = True
    return attrs, full


def _written_keys(func: ast.AST) -> set[str]:
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    keys.add(k.value)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.slice, ast.Constant)
                    and isinstance(t.slice.value, str)
                ):
                    keys.add(t.slice.value)
    return keys


def _read_keys(func: ast.AST) -> set[str]:
    keys: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        elif isinstance(node, ast.Call):
            callee = (dotted(node.func) or "").rsplit(".", 1)[-1]
            if callee in ("get", "require", "pop"):
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        keys.add(arg.value)
                        break
    return keys


def _ctor_coverage(
    func: ast.AST, cls: ClassInfo, fields: list[str], alias_names: set[str]
) -> tuple[set[str], bool] | None:
    """Fields passed to the class constructor inside ``from_dict``.

    Returns None when no constructor call is found (nothing to check);
    the bool is true when ``**kwargs`` makes coverage total.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted(node.func)
        if callee is None:
            continue
        leaf = callee.rsplit(".", 1)[-1]
        if leaf != cls.name and callee not in alias_names and callee != "cls":
            continue
        covered = set(fields[: len(node.args)])  # positional prefix
        star = False
        for kw in node.keywords:
            if kw.arg is None:
                star = True
            else:
                covered.add(kw.arg)
        return covered, star
    return None


class SchemaSyncChecker:
    """SCHEMA001/002/003 over function pairs and method pairs."""

    name = "schema"

    def check(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for pair in self._pairs(module, project):
                findings.extend(self._check_pair(pair))
        return findings

    def _pairs(self, module: Module, project: Project) -> Iterable[_Pair]:
        # Module-level <x>_to_dict / <x>_from_dict function pairs.
        for fname, func in module.functions.items():
            if not fname.endswith("_to_dict"):
                continue
            stem = fname[: -len("_to_dict")]
            from_fn = module.functions.get(f"{stem}_from_dict")
            if from_fn is None:
                continue
            cls = self._from_dict_target(module, project, from_fn)
            if cls is None:
                continue
            args = func.args.posonlyargs + func.args.args
            if not args:
                continue
            yield _Pair(
                to_fn=func,
                from_fn=from_fn,
                cls=cls,
                module=module,
                symbol_prefix=stem,
                obj_param=args[0].arg,
            )
        # Method-form pairs on classes defining both.
        for cls in module.classes.values():
            to_m, from_m = cls.methods.get("to_dict"), cls.methods.get("from_dict")
            if to_m is None or from_m is None:
                continue
            yield _Pair(
                to_fn=to_m,
                from_fn=from_m,
                cls=cls,
                module=module,
                symbol_prefix=cls.name,
                obj_param="self",
            )

    def _from_dict_target(
        self,
        module: Module,
        project: Project,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> ClassInfo | None:
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                name = dotted(node.value.func)
                if name is None:
                    continue
                cls = project.resolve_class(module.qualify(name))
                if cls is not None:
                    return cls
        return None

    def _check_pair(self, pair: _Pair) -> list[Finding]:
        findings: list[Finding] = []
        fields = _class_fields(pair.cls)
        if not fields:
            return findings
        public = [f for f in fields if not f.startswith("_")]

        reads, full = _reads_of(pair.to_fn, pair.obj_param)
        if not full:
            for missed in (f for f in public if f not in reads):
                findings.append(
                    Finding(
                        rule="SCHEMA001",
                        path=pair.module.rel,
                        line=pair.to_fn.lineno,
                        symbol=f"{pair.symbol_prefix}.to_dict"
                        if pair.obj_param == "self"
                        else pair.to_fn.name,
                        message=(
                            f"does not serialize {pair.cls.name}.{missed} "
                            "(field dropped on the wire)"
                        ),
                    )
                )

        coverage = _ctor_coverage(
            pair.from_fn, pair.cls, fields, {pair.cls.qualname}
        )
        if coverage is not None:
            covered, star = coverage
            if not star:
                for missed in (f for f in public if f not in covered):
                    findings.append(
                        Finding(
                            rule="SCHEMA002",
                            path=pair.module.rel,
                            line=pair.from_fn.lineno,
                            symbol=f"{pair.symbol_prefix}.from_dict"
                            if pair.obj_param == "self"
                            else pair.from_fn.name,
                            message=(
                                f"does not pass {pair.cls.name}.{missed} to the "
                                "constructor (field dropped on load)"
                            ),
                        )
                    )

        written = _written_keys(pair.to_fn) - _ENVELOPE_KEYS
        read = _read_keys(pair.from_fn) - _ENVELOPE_KEYS
        if written:  # a to_dict with no dict literal has nothing to compare
            for key in sorted(written - read):
                findings.append(
                    Finding(
                        rule="SCHEMA003",
                        path=pair.module.rel,
                        line=pair.to_fn.lineno,
                        symbol=pair.to_fn.name
                        if pair.obj_param != "self"
                        else f"{pair.symbol_prefix}.to_dict",
                        message=f"writes key '{key}' that from_dict never reads",
                    )
                )
            for key in sorted(read - written):
                findings.append(
                    Finding(
                        rule="SCHEMA003",
                        path=pair.module.rel,
                        line=pair.from_fn.lineno,
                        symbol=pair.from_fn.name
                        if pair.obj_param != "self"
                        else f"{pair.symbol_prefix}.from_dict",
                        message=f"reads key '{key}' that to_dict never writes",
                    )
                )
        return findings
