"""Static analysis for the repro codebase (``repro analyze``).

The :mod:`repro.devtools` package is development tooling, not runtime
machinery: an AST-walking engine (:mod:`~repro.devtools.engine`) plus
project-specific checkers that encode the concurrency and architecture
invariants the rest of the tree relies on:

* :mod:`~repro.devtools.locks` — blocking calls under a held lock and a
  cross-module lock-acquisition-order graph with cycle detection
  (LOCK001/LOCK002/LOCK003);
* :mod:`~repro.devtools.guarded` — attributes written under a class's
  lock must not be touched outside it (GUARD001, the shape of the PR 6
  torn-read bug);
* :mod:`~repro.devtools.registry_conformance` — registered classes must
  implement their protocol surface and ``capabilities()`` claims must
  match defined methods (REG001/REG002);
* :mod:`~repro.devtools.schema_sync` — ``to_dict``/``from_dict`` pairs
  must cover every constructor field (SCHEMA001/SCHEMA002/SCHEMA003).

Findings are suppressed either by an inline waiver comment
(``# analyze: ignore[RULE] - justification``) or by a committed JSON
baseline; see :func:`repro.devtools.engine.run_analysis`.
"""

from repro.devtools.engine import (
    Finding,
    Project,
    RULES,
    default_checkers,
    run_analysis,
)

__all__ = [
    "Finding",
    "Project",
    "RULES",
    "default_checkers",
    "run_analysis",
]
