"""AST analysis engine: file loading, scopes, findings, waivers, baseline.

The engine owns everything rule-agnostic:

* **Project model** — every analyzed file becomes a :class:`Module`
  (import alias map, top-level classes/functions, module-level lock
  objects); modules aggregate into a :class:`Project` with a
  cross-module class index and re-export-chasing name resolution.
* **Lock model** — :func:`sync_attrs` finds a class's synchronization
  primitives (``threading.Lock/RLock/Condition/(Bounded)Semaphore``
  constructors, with a name fallback for ``*lock*``/``*_cv``/``*_sem``
  attributes) and :func:`scan_function` walks a function body tracking
  the stack of held locks, emitting events checkers consume. Nested
  ``def``/``lambda`` bodies are *not* scanned under the enclosing
  lock — they execute later, not where they are defined.
* **Waivers** — ``# analyze: ignore[RULE1,RULE2] - justification``.
  On a code line the waiver covers that line; on a ``def``/``class``/
  ``with`` header (or a standalone comment directly above one) it
  covers the whole block. Waivers without a justification are findings
  themselves (ANA001), as are waivers that suppress nothing (ANA002).
* **Baseline** — a committed JSON map of finding fingerprints (stable
  across line-number drift: rule + path + symbol + message) to counts;
  baselined findings are reported but do not fail the run.

Checkers implement :class:`Checker` and are registered in
:func:`default_checkers`; :func:`run_analysis` ties it all together and
is what the ``repro analyze`` CLI calls.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Protocol, Sequence

from repro.errors import ReproError


class AnalysisError(ReproError):
    """A file could not be loaded or a baseline could not be parsed."""


# --------------------------------------------------------------------------
# Rule catalog
# --------------------------------------------------------------------------

#: rule id -> (severity, one-line description). The single source of truth
#: used by the CLI's rule listing and the API.md catalog.
RULES: dict[str, tuple[str, str]] = {
    "LOCK001": (
        "warning",
        "blocking call (sqlite/socket/subprocess/sleep/join/...) inside a "
        "`with <lock>:` body",
    ),
    "LOCK002": (
        "warning",
        "acquires a second lock while already holding one (feeds the "
        "lock-order graph)",
    ),
    "LOCK003": (
        "error",
        "cycle in the cross-module lock-acquisition-order graph "
        "(potential deadlock)",
    ),
    "GUARD001": (
        "error",
        "attribute written under a class lock is read/written elsewhere "
        "without the lock (torn read/write)",
    ),
    "REG001": (
        "error",
        "class registered in BACKENDS/ALGORITHMS/CLUSTERERS/SCORERS/STAGES "
        "is missing part of the protocol surface",
    ),
    "REG002": (
        "error",
        "capabilities() claims a capability whose required methods are not "
        "defined",
    ),
    "SCHEMA001": (
        "error",
        "to_dict does not serialize every constructor field",
    ),
    "SCHEMA002": (
        "error",
        "from_dict does not pass every constructor field",
    ),
    "SCHEMA003": (
        "warning",
        "to_dict writes / from_dict reads asymmetric payload keys",
    ),
    "ANA000": ("error", "file cannot be parsed / read"),
    "ANA001": ("error", "waiver comment has no justification text"),
    "ANA002": ("warning", "waiver comment suppresses no finding"),
}


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # as-given (posix, repo-relative when run from the root)
    line: int
    message: str
    symbol: str = ""  # "Class.method" / "function" when known
    severity: str = ""  # filled from RULES when empty
    status: str = "active"  # "active" | "waived" | "baselined"
    waiver_reason: str = ""

    def __post_init__(self) -> None:
        if not self.severity:
            self.severity = RULES.get(self.rule, ("warning", ""))[0]

    @property
    def fingerprint(self) -> str:
        """Stable identity: survives line drift, not message/symbol edits."""
        raw = f"{self.rule}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "status": self.status,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}: {self.rule} {self.severity}: "
            f"{self.message}{sym}"
        )


# --------------------------------------------------------------------------
# Waivers
# --------------------------------------------------------------------------

_WAIVER_RE = re.compile(
    r"#\s*analyze:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(?:[-:–—]\s*(\S.*))?$"
)


@dataclass
class Waiver:
    """One ``# analyze: ignore[...]`` comment and the lines it covers."""

    line: int
    rules: frozenset[str]
    reason: str
    span: tuple[int, int]  # inclusive line range the waiver applies to
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        return (
            finding.rule in self.rules
            and self.span[0] <= finding.line <= self.span[1]
        )


def _block_spans(tree: ast.AST) -> list[tuple[int, int, int]]:
    """(header_start, header_end, block_end) for def/class/with nodes."""
    spans: list[tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.With, ast.AsyncWith),
        ):
            body = getattr(node, "body", None)
            if not body:
                continue
            header_end = body[0].lineno - 1
            spans.append((node.lineno, max(node.lineno, header_end), node.end_lineno or node.lineno))
    return spans


def _comment_lines(source: str, source_lines: Sequence[str]) -> list[tuple[int, str]]:
    """(lineno, comment_text) for real COMMENT tokens only.

    Tokenizing (rather than regex over raw lines) keeps waiver syntax
    quoted inside strings/docstrings — like the examples in this very
    package — from being parsed as live waivers.
    """
    import io
    import tokenize

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [
            (i, line) for i, line in enumerate(source_lines, start=1) if "#" in line
        ]
    return [
        (tok.start[0], tok.string)
        for tok in tokens
        if tok.type == tokenize.COMMENT
    ]


def parse_waivers(
    source_lines: Sequence[str], tree: ast.AST, source: str | None = None
) -> list[Waiver]:
    spans = _block_spans(tree)
    if source is None:
        source = "\n".join(source_lines)
    waivers: list[Waiver] = []
    for lineno, text in _comment_lines(source, source_lines):
        m = _WAIVER_RE.search(text)
        if m is None:
            continue
        rules = frozenset(
            r.strip() for r in m.group(1).split(",") if r.strip()
        )
        reason = (m.group(2) or "").strip()
        code_line = source_lines[lineno - 1] if lineno - 1 < len(source_lines) else ""
        standalone = code_line.lstrip().startswith("#")
        target = lineno
        if standalone:
            # Skip over the rest of the comment block (a justification may
            # span several lines) to the code line the waiver governs.
            target = lineno + 1
            while target <= len(source_lines):
                stripped = source_lines[target - 1].lstrip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
        cover = (target, target)
        for start, header_end, end in spans:
            if start <= target <= header_end:
                cover = (start, end)
                break
        waivers.append(Waiver(line=lineno, rules=rules, reason=reason, span=cover))
    return waivers


# --------------------------------------------------------------------------
# Name / alias resolution helpers
# --------------------------------------------------------------------------


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` source text for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _collect_imports(
    body: Iterable[ast.stmt], module_name: str, is_package: bool
) -> dict[str, str]:
    """local name -> fully qualified dotted target."""
    aliases: dict[str, str] = {}
    for stmt in body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                pkg_parts = module_name.split(".")
                if not is_package:
                    pkg_parts = pkg_parts[:-1]
                drop = stmt.level - 1
                if drop:
                    pkg_parts = pkg_parts[: len(pkg_parts) - drop]
                base = ".".join(pkg_parts + ([stmt.module] if stmt.module else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


# --------------------------------------------------------------------------
# Lock detection
# --------------------------------------------------------------------------

SYNC_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: name fallback: attributes that *look* like locks are treated as locks even
#: when the constructor is not resolvable (e.g. assigned from a factory).
_LOCK_NAME_RE = re.compile(r"lock|mutex|_cv$|_sem$")

#: methods used as `with self.m():` that acquire a lock by convention
#: (contextmanager wrappers like PooledSession.locked or
#: DocumentStore._transaction).
_LOCK_METHOD_RE = re.compile(r"^_?(locked|lock|transaction)$")


def _is_sync_constructor(call: ast.expr, aliases: Mapping[str, str]) -> bool:
    if not isinstance(call, ast.Call):
        return False
    name = dotted(call.func)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    if leaf not in SYNC_CONSTRUCTORS:
        return False
    # `Lock()` via `from threading import Lock` — assume threading when the
    # name is bare and unshadowed; `threading.Lock()` via the module root.
    if "." not in name:
        return aliases.get(name, f"threading.{name}").startswith("threading")
    root = name.split(".", 1)[0]
    return aliases.get(root, root).startswith("threading")


def sync_attrs(cls: "ClassInfo") -> frozenset[str]:
    """Names of ``self.X`` attributes holding synchronization primitives."""
    found: set[str] = set()
    init = cls.methods.get("__init__")
    bodies = [init] if init is not None else []
    for meth in bodies:
        for node in ast.walk(meth):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    if _is_sync_constructor(node.value, cls.module.aliases):
                        found.add(attr)
                    elif _LOCK_NAME_RE.search(attr) and isinstance(
                        node.value, (ast.Call, ast.Dict, ast.DictComp)
                    ):
                        found.add(attr)
    return frozenset(found)


@dataclass(frozen=True)
class LockRef:
    """A lock acquired by a ``with`` item, canonicalized for the graph."""

    id: str  # "pkg.mod.Class._lock", "pkg.mod.Class.locked()", ...
    text: str  # source text of the context expression
    node: ast.expr = field(compare=False, hash=False, repr=False, default=None)  # type: ignore[assignment]


class LockResolver:
    """Classify ``with`` context expressions as lock acquisitions."""

    def __init__(
        self,
        module: "Module",
        cls: "ClassInfo | None" = None,
        func: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
        project: "Project | None" = None,
    ) -> None:
        self.module = module
        self.cls = cls
        self.lock_attrs = cls.lock_attrs if cls is not None else frozenset()
        self.project = project
        self.param_types: dict[str, str] = {}
        if func is not None and project is not None:
            args = func.args
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                if a.annotation is None:
                    continue
                ann = dotted(a.annotation)
                if ann is None:
                    continue
                resolved = project.resolve_class(module.qualify(ann))
                if resolved is not None:
                    self.param_types[a.arg] = resolved.qualname

    def _owner(self) -> str:
        return self.cls.qualname if self.cls is not None else self.module.name

    def classify(self, expr: ast.expr) -> LockRef | None:
        text = ast.unparse(expr)
        # with self._lock:  /  with self._build_locks[key]:
        target = expr
        suffix = ""
        if isinstance(target, ast.Subscript):
            target = target.value
            suffix = "[]"
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            attr = target.attr
            if attr in self.lock_attrs or _LOCK_NAME_RE.search(attr):
                return LockRef(f"{self._owner()}.{attr}{suffix}", text, expr)
            return None
        # with module_level_lock:
        if isinstance(target, ast.Name):
            if target.id in self.module.module_locks:
                return LockRef(f"{self.module.name}.{target.id}", text, expr)
            return None
        # with self._transaction(): / with entry.locked():
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            meth = expr.func.attr
            if not _LOCK_METHOD_RE.match(meth):
                return None
            recv = expr.func.value
            if isinstance(recv, ast.Name):
                if recv.id == "self":
                    return LockRef(f"{self._owner()}.{meth}()", text, expr)
                owner = self.param_types.get(recv.id)
                if owner is not None:
                    return LockRef(f"{owner}.{meth}()", text, expr)
                return LockRef(f"?{recv.id}.{meth}()", text, expr)
            recv_text = dotted(recv)
            return LockRef(f"?{recv_text or '<expr>'}.{meth}()", text, expr)
        return None


@dataclass(frozen=True)
class WithEvent:
    """A ``with`` statement that acquires locks, plus the locks already held."""

    node: ast.stmt
    acquired: tuple[LockRef, ...]
    held: tuple[LockRef, ...]


def scan_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    resolver: LockResolver,
    on_with: Callable[[WithEvent], None] | None = None,
    on_node: Callable[[ast.AST, tuple[LockRef, ...]], None] | None = None,
) -> None:
    """Walk ``func`` tracking held locks; emit events for checkers.

    ``on_node`` fires for every expression-level AST node reachable at
    runtime while the listed locks are held (including an empty tuple
    outside any lock). Nested function/lambda bodies are skipped.
    """

    def emit_exprs(node: ast.AST, held: tuple[LockRef, ...]) -> None:
        if on_node is None:
            return
        stack = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            on_node(cur, held)
            stack.extend(ast.iter_child_nodes(cur))

    def visit_block(stmts: Sequence[ast.stmt], held: tuple[LockRef, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[LockRef] = []
                for item in stmt.items:
                    ref = resolver.classify(item.context_expr)
                    if ref is not None:
                        acquired.append(ref)
                    emit_exprs(item.context_expr, held)
                    if item.optional_vars is not None:
                        emit_exprs(item.optional_vars, held)
                if acquired and on_with is not None:
                    on_with(WithEvent(node=stmt, acquired=tuple(acquired), held=held))
                visit_block(stmt.body, held + tuple(acquired))
                continue
            # Emit the statement's own expressions, then recurse into bodies.
            for fname, value in ast.iter_fields(stmt):
                if fname in ("body", "orelse", "finalbody", "handlers", "cases"):
                    continue
                if isinstance(value, ast.AST):
                    emit_exprs(value, held)
                elif isinstance(value, list):
                    for v in value:
                        if isinstance(v, ast.AST):
                            emit_exprs(v, held)
            for sub in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, sub, None)
                if inner:
                    visit_block(inner, held)
            for handler in getattr(stmt, "handlers", []) or []:
                visit_block(handler.body, held)
            for case in getattr(stmt, "cases", []) or []:
                visit_block(case.body, held)

    visit_block(func.body, ())


# --------------------------------------------------------------------------
# Project model
# --------------------------------------------------------------------------


@dataclass
class ClassInfo:
    name: str
    node: ast.ClassDef
    module: "Module"

    def __post_init__(self) -> None:
        self.qualname = f"{self.module.name}.{self.name}"
        self.bases: list[str] = [
            d for d in (dotted(b) for b in self.node.bases) if d is not None
        ]
        self.decorators: list[str] = [
            d for d in (dotted(dec if not isinstance(dec, ast.Call) else dec.func)
                        for dec in self.node.decorator_list)
            if d is not None
        ]
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.properties: set[str] = set()
        self.class_attrs: set[str] = set()
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
                for dec in stmt.decorator_list:
                    dn = dotted(dec)
                    if dn in ("property", "cached_property", "functools.cached_property"):
                        self.properties.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        self.class_attrs.add(t.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self.class_attrs.add(stmt.target.id)
        self.init_attrs: set[str] = set()
        init = self.methods.get("__init__")
        if init is not None:
            for node in ast.walk(init):
                if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                    if node.value.id == "self" and isinstance(node.ctx, ast.Store):
                        self.init_attrs.add(node.attr)
        self.lock_attrs: frozenset[str] = frozenset()
        self.lock_attrs = sync_attrs(self)

    def own_members(self) -> set[str]:
        return set(self.methods) | self.class_attrs | self.init_attrs

    @property
    def is_protocol(self) -> bool:
        return any(b.rsplit(".", 1)[-1] == "Protocol" for b in self.bases)


@dataclass
class Module:
    path: Path
    rel: str
    name: str  # dotted module name
    source: str
    tree: ast.Module

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self.is_package = self.path.name == "__init__.py"
        self.aliases = _collect_imports(self.tree.body, self.name, self.is_package)
        self.waivers = parse_waivers(self.lines, self.tree, self.source)
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.module_locks: set[str] = set()
        for stmt in self.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = ClassInfo(stmt.name, stmt, self)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name) and _is_sync_constructor(
                        stmt.value, self.aliases
                    ):
                        self.module_locks.add(t.id)

    def qualify(self, name: str) -> str:
        """Resolve a dotted source name through this module's imports."""
        root, _, rest = name.partition(".")
        base = self.aliases.get(root)
        if base is None:
            # Unimported bare name: assume it is defined in this module.
            return f"{self.name}.{name}" if "." not in name else name
        return f"{base}.{rest}" if rest else base

    def function_aliases(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """Module aliases overlaid with the function's local imports."""
        local = _collect_imports(
            [s for s in ast.walk(func) if isinstance(s, (ast.Import, ast.ImportFrom))],
            self.name,
            self.is_package,
        )
        merged = dict(self.aliases)
        merged.update(local)
        return merged


class Project:
    """All analyzed modules plus cross-module name resolution."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules = list(modules)
        self.by_name: dict[str, Module] = {m.name: m for m in self.modules}
        self.class_index: dict[str, ClassInfo] = {}
        for mod in self.modules:
            for cls in mod.classes.values():
                self.class_index[cls.qualname] = cls

    def resolve_class(self, qualname: str, _depth: int = 0) -> ClassInfo | None:
        """Find a class by qualified name, chasing package re-exports."""
        if _depth > 6 or not qualname:
            return None
        hit = self.class_index.get(qualname)
        if hit is not None:
            return hit
        mod_name, _, leaf = qualname.rpartition(".")
        mod = self.by_name.get(mod_name)
        if mod is None:
            return None
        target = mod.aliases.get(leaf)
        if target is None:
            return None
        return self.resolve_class(target, _depth + 1)

    def class_members(self, cls: ClassInfo) -> tuple[set[str], bool]:
        """(members incl. inherited, all_bases_resolved)."""
        members: set[str] = set()
        complete = True
        seen: set[str] = set()

        def add(c: ClassInfo) -> None:
            nonlocal complete
            if c.qualname in seen:
                return
            seen.add(c.qualname)
            members.update(c.own_members())
            for base in c.bases:
                leaf = base.rsplit(".", 1)[-1]
                if leaf in ("object", "Protocol", "Generic", "ABC", "Enum",
                            "NamedTuple", "Exception", "TypedDict"):
                    continue
                resolved = self.resolve_class(c.module.qualify(base))
                if resolved is None:
                    complete = False
                else:
                    add(resolved)

        add(cls)
        return members, complete


# --------------------------------------------------------------------------
# Checkers
# --------------------------------------------------------------------------


class Checker(Protocol):  # pragma: no cover — typing only
    name: str

    def check(self, project: Project) -> Iterable[Finding]: ...


def default_checkers() -> list[Checker]:
    """The four project checkers, imported lazily to avoid cycles."""
    from repro.devtools.guarded import GuardedAttributeChecker
    from repro.devtools.locks import LockDisciplineChecker
    from repro.devtools.registry_conformance import RegistryConformanceChecker
    from repro.devtools.schema_sync import SchemaSyncChecker

    return [
        LockDisciplineChecker(),
        GuardedAttributeChecker(),
        RegistryConformanceChecker(),
        SchemaSyncChecker(),
    ]


# --------------------------------------------------------------------------
# Loading
# --------------------------------------------------------------------------


def _module_name_for(path: Path) -> str:
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p not in ("", ".", ".."))


def iter_source_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            yield p
        else:
            raise AnalysisError(f"not a python file or directory: {p}")


def load_project(paths: Sequence[str | Path]) -> tuple[Project, list[Finding]]:
    modules: list[Module] = []
    errors: list[Finding] = []
    for path in iter_source_files(paths):
        rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            errors.append(
                Finding(
                    rule="ANA000",
                    path=rel,
                    line=getattr(exc, "lineno", 1) or 1,
                    message=f"cannot analyze file: {exc}",
                    severity="error",
                )
            )
            continue
        modules.append(
            Module(path=path, rel=rel, name=_module_name_for(path), source=source, tree=tree)
        )
    return Project(modules), errors


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: Path) -> dict[str, int]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError:
        return {}
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    fps = payload.get("fingerprints", {})
    if not isinstance(fps, Mapping):
        raise AnalysisError(f"baseline {path} has no 'fingerprints' map")
    return {str(k): int(v) for k, v in fps.items()}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    counts: dict[str, int] = {}
    meta: dict[str, str] = {}
    for f in findings:
        counts[f.fingerprint] = counts.get(f.fingerprint, 0) + 1
        meta.setdefault(f.fingerprint, f"{f.rule} {f.path} {f.symbol}".strip())
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted pre-existing findings (repro analyze --baseline). "
            "Fingerprints are stable across line-number drift; prefer "
            "inline waivers with justifications for anything new."
        ),
        "fingerprints": dict(sorted(counts.items())),
        "notes": {k: meta[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------
# Orchestration
# --------------------------------------------------------------------------


@dataclass
class AnalysisResult:
    findings: list[Finding]  # every finding, with status set
    files: int
    baseline_path: Path | None = None

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "active"]

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "waived"]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "baselined"]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def summary(self) -> dict[str, Any]:
        active = self.active
        return {
            "files": self.files,
            "active": len(active),
            "errors": sum(1 for f in active if f.severity == "error"),
            "warnings": sum(1 for f in active if f.severity == "warning"),
            "waived": len(self.waived),
            "baselined": len(self.baselined),
        }

    def render_text(self, verbose: bool = False) -> str:
        out: list[str] = []
        for f in sorted(self.active, key=lambda f: (f.path, f.line, f.rule)):
            out.append(f.render())
        if verbose:
            for f in sorted(self.waived, key=lambda f: (f.path, f.line, f.rule)):
                reason = f" ({f.waiver_reason})" if f.waiver_reason else ""
                out.append(f"waived: {f.render()}{reason}")
            for f in sorted(self.baselined, key=lambda f: (f.path, f.line, f.rule)):
                out.append(f"baselined: {f.render()}")
        s = self.summary()
        out.append(
            f"{s['active']} finding(s) ({s['errors']} error(s), "
            f"{s['warnings']} warning(s)) · {s['waived']} waived · "
            f"{s['baselined']} baselined · {s['files']} file(s)"
        )
        return "\n".join(out)

    def render_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "summary": self.summary(),
                "findings": [
                    f.to_dict()
                    for f in sorted(
                        self.findings, key=lambda f: (f.path, f.line, f.rule)
                    )
                ],
            },
            indent=2,
        )


def apply_waivers(project: Project, findings: list[Finding]) -> list[Finding]:
    """Mark findings waived; append ANA001/ANA002 for bad/unused waivers."""
    by_rel: dict[str, Module] = {m.rel: m for m in project.modules}
    for f in findings:
        mod = by_rel.get(f.path)
        if mod is None:
            continue
        for w in mod.waivers:
            if w.covers(f):
                f.status = "waived"
                f.waiver_reason = w.reason
                w.used = True
                break
    extra: list[Finding] = []
    for mod in project.modules:
        for w in mod.waivers:
            rules = ",".join(sorted(w.rules))
            if not w.reason:
                extra.append(
                    Finding(
                        rule="ANA001",
                        path=mod.rel,
                        line=w.line,
                        message=(
                            f"waiver ignore[{rules}] has no justification "
                            "(append `- <reason>`)"
                        ),
                    )
                )
            if not w.used:
                extra.append(
                    Finding(
                        rule="ANA002",
                        path=mod.rel,
                        line=w.line,
                        message=f"waiver ignore[{rules}] suppresses no finding",
                    )
                )
    return findings + extra


def apply_baseline(findings: list[Finding], baseline: Mapping[str, int]) -> None:
    budget = dict(baseline)
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        if f.status != "active":
            continue
        left = budget.get(f.fingerprint, 0)
        if left > 0:
            budget[f.fingerprint] = left - 1
            f.status = "baselined"


def run_analysis(
    paths: Sequence[str | Path],
    checkers: Sequence[Checker] | None = None,
    baseline_path: str | Path | None = None,
    update_baseline: bool = False,
) -> AnalysisResult:
    """Load, check, waive, and baseline; the programmatic entry point.

    ``baseline_path`` is read when it exists (suppressing known findings)
    and rewritten from the currently-active set when ``update_baseline``
    is true.
    """
    project, findings = load_project(paths)
    if checkers is None:
        checkers = default_checkers()
    for checker in checkers:
        findings.extend(checker.check(project))
    findings = apply_waivers(project, findings)
    bl_path = Path(baseline_path) if baseline_path is not None else None
    if update_baseline and bl_path is not None:
        write_baseline(bl_path, [f for f in findings if f.status == "active"])
    if bl_path is not None and bl_path.exists():
        apply_baseline(findings, load_baseline(bl_path))
    return AnalysisResult(
        findings=findings, files=len(project.modules), baseline_path=bl_path
    )
