"""Guarded-attribute audit: the PR 6 torn-read bug, as a rule.

**GUARD001** — within a class that owns synchronization primitives, any
``self.X`` attribute *assigned* while a class lock is held is treated as
lock-guarded; reading or writing it anywhere else in the class without
the lock is flagged. This is exactly the shape of the
``ServerMetrics.snapshot()`` torn read PR 6 shipped and then fixed:
counters mutated under ``self._lock`` but snapshotted lock-free.

Held context is computed lexically (``with self._lock:`` bodies, via
:func:`repro.devtools.engine.scan_function`) and then propagated through
private helpers: a method is itself considered lock-held when every
intra-class call site invokes it with a lock held (fixpoint), when its
name ends in ``_locked``, or when its docstring says the caller must
hold the lock. ``__init__``/``__del__`` are exempt — no concurrent
aliases exist yet / anymore.

Deliberately lock-free readers (e.g. mirror dictionaries swapped
atomically under the GIL) are expected to carry an explicit waiver
naming the invariant that makes them safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.devtools.engine import (
    ClassInfo,
    Finding,
    LockRef,
    LockResolver,
    Module,
    Project,
    scan_function,
)

_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "__post_init__"}

#: container methods that mutate their receiver; ``self.X.append(...)``
#: under a lock marks ``X`` guarded just like ``self.X = ...`` does.
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
}

_DOC_HELD_MARKERS = ("caller holds", "lock held", "called under", "under the lock")


@dataclass
class _Access:
    method: str
    attr: str
    line: int
    is_store: bool
    held: bool


class GuardedAttributeChecker:
    """GUARD001 for every class that owns at least one sync primitive."""

    name = "guarded"

    def check(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            for cls in module.classes.values():
                if cls.lock_attrs:
                    findings.extend(self._check_class(module, project, cls))
        return findings

    def _check_class(
        self, module: Module, project: Project, cls: ClassInfo
    ) -> list[Finding]:
        accesses: list[_Access] = []
        # callee -> [(caller, lexically_held)] for self.callee(...) sites
        call_sites: dict[str, list[tuple[str, bool]]] = {}

        for meth_name, meth in cls.methods.items():
            if meth_name in _EXEMPT_METHODS:
                continue
            resolver = LockResolver(module, cls, meth, project)

            def on_node(
                node: ast.AST,
                held: tuple[LockRef, ...],
                meth_name: str = meth_name,
            ) -> None:
                def self_attr(expr: ast.AST) -> str | None:
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                    ):
                        return expr.attr
                    return None

                attr = self_attr(node)
                if attr is not None:
                    accesses.append(
                        _Access(
                            method=meth_name,
                            attr=attr,
                            line=node.lineno,
                            is_store=isinstance(node.ctx, (ast.Store, ast.Del)),  # type: ignore[attr-defined]
                            held=bool(held),
                        )
                    )
                # self.X[k] = v / del self.X[k]: a write to X's contents.
                if isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    attr = self_attr(node.value)
                    if attr is not None:
                        accesses.append(
                            _Access(meth_name, attr, node.lineno, True, bool(held))
                        )
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    recv = node.func.value
                    if isinstance(recv, ast.Name) and recv.id == "self":
                        # self.meth(...): an intra-class call site.
                        call_sites.setdefault(node.func.attr, []).append(
                            (meth_name, bool(held))
                        )
                    elif (
                        node.func.attr in _MUTATING_METHODS
                        and self_attr(recv) is not None
                    ):
                        # self.X.append(...): a write to X's contents.
                        accesses.append(
                            _Access(
                                meth_name,
                                self_attr(recv) or "",
                                node.lineno,
                                True,
                                bool(held),
                            )
                        )

            scan_function(meth, resolver, on_node=on_node)

        held_methods = self._held_methods(cls, call_sites)

        guarded: set[str] = set()
        for acc in accesses:
            effective = acc.held or acc.method in held_methods
            if acc.is_store and effective:
                guarded.add(acc.attr)
        guarded -= set(cls.lock_attrs)

        findings: list[Finding] = []
        reported: set[tuple[str, int, str]] = set()
        for acc in accesses:
            if acc.attr not in guarded:
                continue
            if acc.held or acc.method in held_methods:
                continue
            key = (acc.attr, acc.line, acc.method)
            if key in reported:
                continue
            reported.add(key)
            verb = "written" if acc.is_store else "read"
            findings.append(
                Finding(
                    rule="GUARD001",
                    path=module.rel,
                    line=acc.line,
                    symbol=f"{cls.name}.{acc.method}",
                    message=(
                        f"'{acc.attr}' is assigned under {cls.name}'s lock "
                        f"elsewhere but {verb} here without it"
                    ),
                )
            )
        return findings

    def _held_methods(
        self, cls: ClassInfo, call_sites: dict[str, list[tuple[str, bool]]]
    ) -> set[str]:
        """Methods whose whole body runs with a class lock held."""
        held: set[str] = set()
        for name, meth in cls.methods.items():
            if name.endswith("_locked"):
                held.add(name)
                continue
            doc = (ast.get_docstring(meth) or "").lower()
            if any(marker in doc for marker in _DOC_HELD_MARKERS):
                held.add(name)
        # Fixpoint: private helpers only ever called under a lock inherit
        # held-ness from their call sites (e.g. DocumentStore._upsert_one
        # called solely inside `with self._write_lock:` bodies).
        changed = True
        while changed:
            changed = False
            for name, sites in call_sites.items():
                if name in held or name not in cls.methods:
                    continue
                if name in _EXEMPT_METHODS or not name.startswith("_"):
                    continue
                if sites and all(
                    lex_held or caller in held for caller, lex_held in sites
                ):
                    held.add(name)
                    changed = True
        return held
