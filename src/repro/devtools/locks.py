"""Lock discipline: blocking calls under locks + lock-order cycles.

* **LOCK001** — a blocking operation runs inside a ``with <lock>:``
  body: sqlite ``execute``/``commit``/``backup``, socket and pipe I/O
  (``accept``/``recv*``/``sendall``/``connect``/``poll``), HTTP
  (``urlopen``), ``subprocess``, ``time.sleep``, thread/process
  ``join``, event ``wait``, and server ``shutdown``/``serve_forever``.
  Every critical section stays CPU-bound unless explicitly waived.
* **LOCK002** — a second lock is acquired while one is already held
  (``with`` nesting or a bare ``.acquire()``). Each occurrence also
  becomes an edge in the project-wide acquisition-order graph.
* **LOCK003** — the acquisition-order graph has a cycle: two code paths
  take the same locks in opposite orders, which can deadlock. Reported
  once per cycle at one contributing edge.

``Condition.wait`` on the very lock being held is *not* flagged — that
is the one blocking call the primitive exists for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.devtools.engine import (
    ClassInfo,
    Finding,
    LockRef,
    LockResolver,
    Module,
    Project,
    WithEvent,
    dotted,
    scan_function,
)

#: method names that block regardless of receiver type.
_BLOCKING_METHODS = {
    "execute": "database op",
    "executemany": "database op",
    "executescript": "database op",
    "commit": "database op",
    "backup": "database op",
    "sleep": "sleep",
    "accept": "socket op",
    "recv": "socket op",
    "recv_bytes": "pipe op",
    "send_bytes": "pipe op",
    "sendall": "socket op",
    "connect": "socket op",
    "poll": "pipe op",
    "wait": "wait",
    "shutdown": "shutdown",
    "stop": "teardown op",
    "serve_forever": "serve loop",
    "urlopen": "http op",
    "communicate": "subprocess op",
}

#: names treated as blocking only when called on the subprocess module.
_SUBPROCESS_CALLS = {"run", "call", "check_call", "check_output", "Popen"}

#: `.join()` receivers that look like threads/processes (never strings).
_JOINABLE_RE = (
    "thread",
    "proc",
    "process",
    "worker",
    "supervisor",
    "replica",
)


@dataclass(frozen=True)
class _Edge:
    outer: str
    inner: str
    path: str
    line: int
    symbol: str


def _receiver_is_subprocess(recv: ast.expr | None, aliases: dict[str, str]) -> bool:
    if recv is None:
        return False
    name = dotted(recv)
    if name is None:
        return False
    return aliases.get(name, name) == "subprocess"


def _join_receiver_blocks(recv: ast.expr | None) -> bool:
    """Filter ``", ".join(...)`` / ``os.path.join`` out of LOCK001."""
    if recv is None or isinstance(recv, (ast.Constant, ast.JoinedStr)):
        return False
    name = dotted(recv)
    if name is None:
        return False  # method call chain / literal — assume string join
    leaf = name.rsplit(".", 1)[-1].lower()
    return any(marker in leaf for marker in _JOINABLE_RE)


def _classify_blocking(
    call: ast.Call, aliases: dict[str, str], held: tuple[LockRef, ...]
) -> str | None:
    """Human-readable category when ``call`` blocks, else None."""
    func = call.func
    if isinstance(func, ast.Name):
        target = aliases.get(func.id, func.id)
        if func.id == "sleep" and target.startswith("time"):
            return "sleep"
        if func.id == "urlopen":
            return "http op"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    meth = func.attr
    recv = func.value
    if meth in _SUBPROCESS_CALLS and _receiver_is_subprocess(recv, aliases):
        return "subprocess op"
    kind = _BLOCKING_METHODS.get(meth)
    if kind is None:
        if meth == "join":
            return "thread join" if _join_receiver_blocks(recv) else None
        return None
    if kind == "wait":
        # Condition.wait on a held lock is the intended use, not a hazard.
        recv_text = ast.unparse(recv)
        if any(recv_text == h.text for h in held):
            return None
    if kind == "sleep":
        name = dotted(recv)
        if name is not None and aliases.get(name, name) != "time":
            return None
    return kind


class LockDisciplineChecker:
    """LOCK001/LOCK002 per function + project-wide LOCK003 cycles."""

    name = "locks"

    def check(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        edges: list[_Edge] = []
        for module in project.modules:
            findings.extend(self._check_module(module, project, edges))
        findings.extend(self._check_cycles(edges))
        return findings

    # -- per-function scan -------------------------------------------------

    def _check_module(
        self, module: Module, project: Project, edges: list[_Edge]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for cls in module.classes.values():
            for meth_name, meth in cls.methods.items():
                symbol = f"{cls.name}.{meth_name}"
                self._scan(module, project, cls, meth, symbol, findings, edges)
        for func_name, func in module.functions.items():
            self._scan(module, project, None, func, func_name, findings, edges)
        return findings

    def _scan(
        self,
        module: Module,
        project: Project,
        cls: ClassInfo | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        symbol: str,
        findings: list[Finding],
        edges: list[_Edge],
    ) -> None:
        aliases = module.function_aliases(func)
        resolver = LockResolver(module, cls, func, project)

        def on_with(event: WithEvent) -> None:
            if not event.held:
                return
            inner = ", ".join(ref.id for ref in event.acquired)
            findings.append(
                Finding(
                    rule="LOCK002",
                    path=module.rel,
                    line=event.node.lineno,
                    symbol=symbol,
                    message=(
                        f"acquires {inner} while holding "
                        f"{event.held[-1].id}"
                    ),
                )
            )
            for outer in event.held:
                for acq in event.acquired:
                    edges.append(
                        _Edge(outer.id, acq.id, module.rel, event.node.lineno, symbol)
                    )

        def on_node(node: ast.AST, held: tuple[LockRef, ...]) -> None:
            if not held or not isinstance(node, ast.Call):
                return
            # A bare .acquire() is a second lock, not a generic blocking op.
            if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
                recv_text = ast.unparse(node.func.value)
                if any(recv_text == h.text for h in held):
                    return  # re-acquiring the held RLock
                findings.append(
                    Finding(
                        rule="LOCK002",
                        path=module.rel,
                        line=node.lineno,
                        symbol=symbol,
                        message=(
                            f"calls {recv_text}.acquire() while holding "
                            f"{held[-1].id}"
                        ),
                    )
                )
                return
            kind = _classify_blocking(node, aliases, held)
            if kind is None:
                return
            callee = dotted(node.func) or ast.unparse(node.func)
            findings.append(
                Finding(
                    rule="LOCK001",
                    path=module.rel,
                    line=node.lineno,
                    symbol=symbol,
                    message=(
                        f"blocking {kind} '{callee}(...)' while holding "
                        f"{held[-1].id}"
                    ),
                )
            )

        scan_function(func, resolver, on_with=on_with, on_node=on_node)

    # -- cycle detection ---------------------------------------------------

    def _check_cycles(self, edges: list[_Edge]) -> list[Finding]:
        graph: dict[str, dict[str, _Edge]] = {}
        for e in edges:
            if e.outer == e.inner:
                continue  # RLock re-entry, not an ordering edge
            graph.setdefault(e.outer, {}).setdefault(e.inner, e)

        findings: list[Finding] = []
        seen_cycles: set[tuple[str, ...]] = set()

        def dfs(node: str, stack: list[str], on_stack: set[str]) -> None:
            for nxt in graph.get(node, {}):
                if nxt in on_stack:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    # canonical rotation so each cycle reports once
                    ring = tuple(cycle[:-1])
                    pivot = ring.index(min(ring))
                    canon = ring[pivot:] + ring[:pivot]
                    if canon in seen_cycles:
                        continue
                    seen_cycles.add(canon)
                    edge = graph[cycle[-2]][cycle[-1]] if len(cycle) >= 2 else None
                    arrows = " -> ".join(canon + (canon[0],))
                    where = edge or next(iter(graph[canon[0]].values()))
                    findings.append(
                        Finding(
                            rule="LOCK003",
                            path=where.path,
                            line=where.line,
                            symbol=where.symbol,
                            message=f"lock-order cycle: {arrows}",
                        )
                    )
                elif nxt not in visited:
                    visited.add(nxt)
                    on_stack.add(nxt)
                    dfs(nxt, stack + [nxt], on_stack)
                    on_stack.discard(nxt)

        visited: set[str] = set()
        for start in sorted(graph):
            if start not in visited:
                visited.add(start)
                dfs(start, [start], {start})
        return findings
