"""Tenant specification model.

A :class:`TenantSpec` is a declarative description of one tenant: which
serving configurations it may address, optional per-config private store
paths, and its quota / rate-limit envelope. Specs are immutable value
objects; mutation happens by replacing a spec in the
:class:`~repro.tenancy.registry.TenantRegistry`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import TenancyError

# Tenant names become cache-key prefixes, pool-entry keys ("tenant::config"),
# routing-key components, and JSON file keys — keep them boring on purpose.
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")

# dataclasses.replace()-able knobs accepted by ``TenantRegistry.update``.
QUOTA_FIELDS = (
    "max_documents",
    "max_ingest_batch",
    "qps",
    "burst",
    "max_in_flight",
)


def _positive(value: Any, label: str, *, integral: bool) -> Any:
    if value is None:
        return None
    try:
        value = int(value) if integral else float(value)
    except (TypeError, ValueError):
        raise TenancyError(f"{label} must be a number, got {value!r}") from None
    if value <= 0:
        raise TenancyError(f"{label} must be positive, got {value!r}")
    return value


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant.

    ``configs`` is an allow-list of serving-configuration names; empty
    means *every* configured name. ``stores`` maps a config name to a
    private SQLite store path, giving that tenant its own namespace for
    ingest and changefeed reads. ``None`` for any limit means unlimited.
    """

    name: str
    configs: tuple[str, ...] = ()
    stores: Mapping[str, str] = field(default_factory=dict)
    max_documents: int | None = None
    max_ingest_batch: int | None = None
    qps: float | None = None
    burst: int | None = None
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise TenancyError(
                "tenant name must match [a-z0-9][a-z0-9_-]{0,63}, "
                f"got {self.name!r}"
            )
        object.__setattr__(self, "configs", tuple(self.configs))
        for cfg in self.configs:
            if not cfg or not isinstance(cfg, str):
                raise TenancyError(f"bad config name in allow-list: {cfg!r}")
        stores = dict(self.stores)
        for cfg, path in stores.items():
            if not cfg or not isinstance(cfg, str) or not path:
                raise TenancyError(f"bad store override: {cfg!r} -> {path!r}")
            stores[cfg] = str(path)
        object.__setattr__(self, "stores", stores)
        object.__setattr__(
            self, "max_documents",
            _positive(self.max_documents, "max_documents", integral=True))
        object.__setattr__(
            self, "max_ingest_batch",
            _positive(self.max_ingest_batch, "max_ingest_batch", integral=True))
        object.__setattr__(
            self, "qps", _positive(self.qps, "qps", integral=False))
        object.__setattr__(
            self, "burst", _positive(self.burst, "burst", integral=True))
        object.__setattr__(
            self, "max_in_flight",
            _positive(self.max_in_flight, "max_in_flight", integral=True))

    def allows(self, config_name: str) -> bool:
        """True when this tenant may address ``config_name``."""
        return not self.configs or config_name in self.configs

    def store_for(self, config_name: str, default: str | None) -> str | None:
        """The store path this tenant uses for ``config_name``."""
        return self.stores.get(config_name, default)

    def with_limits(self, **changes: Any) -> "TenantSpec":
        """A copy with the given quota/rate-limit fields replaced."""
        unknown = set(changes) - set(QUOTA_FIELDS)
        if unknown:
            raise TenancyError(f"unknown quota fields: {sorted(unknown)}")
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "configs": list(self.configs),
            "stores": dict(self.stores),
            "max_documents": self.max_documents,
            "max_ingest_batch": self.max_ingest_batch,
            "qps": self.qps,
            "burst": self.burst,
            "max_in_flight": self.max_in_flight,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TenantSpec":
        if not isinstance(payload, Mapping):
            raise TenancyError(f"tenant spec must be a mapping, got {payload!r}")
        return cls(
            name=payload.get("name", ""),
            configs=tuple(payload.get("configs", ())),
            stores=dict(payload.get("stores", {})),
            max_documents=payload.get("max_documents"),
            max_ingest_batch=payload.get("max_ingest_batch"),
            qps=payload.get("qps"),
            burst=payload.get("burst"),
            max_in_flight=payload.get("max_in_flight"),
        )
