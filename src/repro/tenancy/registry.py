"""Thread-safe, JSON-persisted registry of tenant specs.

The registry is the control plane: ``repro tenant`` CLI commands mutate
it, both serve tiers read it. When constructed with a ``path`` every
mutation is flushed atomically (write-temp + rename) so tenants survive
process restarts; without a path it is purely in-memory.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import TenancyError, UnknownTenantError
from repro.tenancy.model import TenantSpec

_SCHEMA_VERSION = 1


class TenantRegistry:
    """All known tenants, keyed by name."""

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        specs: Iterable[TenantSpec] = (),
    ) -> None:
        self._path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._specs: dict[str, TenantSpec] = {}
        for spec in specs:
            self._specs[spec.name] = spec
        if self._path is not None and self._path.exists():
            self._load()

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        assert self._path is not None
        try:
            payload = json.loads(self._path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise TenancyError(f"cannot read tenant file {self._path}: {exc}")
        if not isinstance(payload, Mapping) or "tenants" not in payload:
            raise TenancyError(
                f"tenant file {self._path} must be an object with 'tenants'")
        with self._lock:
            for entry in payload["tenants"]:
                spec = TenantSpec.from_dict(entry)
                self._specs[spec.name] = spec

    def _flush_locked(self) -> None:
        """Persist under ``self._lock``; atomic via temp-file rename."""
        if self._path is None:
            return
        payload = {
            "version": _SCHEMA_VERSION,
            "tenants": [
                self._specs[name].to_dict() for name in sorted(self._specs)
            ],
        }
        tmp = self._path.with_name(self._path.name + ".tmp")
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self._path)

    @property
    def path(self) -> Path | None:
        return self._path

    # -- mutation ------------------------------------------------------

    def create(self, spec: TenantSpec) -> TenantSpec:
        with self._lock:
            if spec.name in self._specs:
                raise TenancyError(f"tenant already exists: {spec.name!r}")
            self._specs[spec.name] = spec
            self._flush_locked()
        return spec

    def update(self, name: str, **limits: Any) -> TenantSpec:
        """Replace quota/rate-limit fields of an existing tenant."""
        with self._lock:
            spec = self._specs.get(name)
            if spec is None:
                raise UnknownTenantError(f"unknown tenant: {name!r}")
            spec = spec.with_limits(**limits)
            self._specs[name] = spec
            self._flush_locked()
        return spec

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._specs:
                raise UnknownTenantError(f"unknown tenant: {name!r}")
            del self._specs[name]
            self._flush_locked()

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> TenantSpec:
        with self._lock:
            spec = self._specs.get(name)
        if spec is None:
            raise UnknownTenantError(f"unknown tenant: {name!r}")
        return spec

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._specs

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def specs(self) -> list[TenantSpec]:
        with self._lock:
            return [self._specs[name] for name in sorted(self._specs)]

    def describe(self) -> list[dict[str, Any]]:
        return [spec.to_dict() for spec in self.specs()]
