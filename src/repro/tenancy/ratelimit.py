"""Per-tenant token-bucket rate limiting.

A classic token bucket: each tenant's bucket holds up to ``burst``
tokens and refills continuously at ``qps`` tokens per second. A request
takes one token; when the bucket is dry the caller is told how long to
wait until one token will be available (the ``Retry-After`` value).

The clock is injectable (monotonic by default) so tests can drive time
deterministically. A tenant with ``qps=None`` is unlimited and never
touches a bucket.
"""

from __future__ import annotations

import math
import time
from threading import Lock

from repro.tenancy.model import TenantSpec


class _Bucket:
    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now


class RateLimiter:
    """Token buckets keyed by tenant name, created lazily from specs."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = Lock()
        self._buckets: dict[str, _Bucket] = {}

    def _bucket_locked(self, spec: TenantSpec, now: float) -> _Bucket:
        rate = float(spec.qps or 0.0)
        burst = float(spec.burst if spec.burst is not None
                      else max(1, math.ceil(rate)))
        bucket = self._buckets.get(spec.name)
        if bucket is None or bucket.rate != rate or bucket.burst != burst:
            # New tenant, or its limits changed: start from a full bucket.
            bucket = self._buckets[spec.name] = _Bucket(rate, burst, now)
        return bucket

    def try_acquire(self, spec: TenantSpec) -> tuple[bool, float]:
        """Take one token; returns ``(admitted, retry_after_seconds)``."""
        if spec.qps is None:
            return True, 0.0
        now = self._clock()
        with self._lock:
            bucket = self._bucket_locked(spec, now)
            elapsed = max(0.0, now - bucket.stamp)
            bucket.stamp = now
            bucket.tokens = min(bucket.burst,
                                bucket.tokens + elapsed * bucket.rate)
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return True, 0.0
            retry_after = (1.0 - bucket.tokens) / bucket.rate
        return False, retry_after

    def tokens(self, name: str) -> float | None:
        """Current token count for a tenant, or ``None`` if no bucket yet."""
        with self._lock:
            bucket = self._buckets.get(name)
            return None if bucket is None else bucket.tokens

    def reset(self, name: str | None = None) -> None:
        """Drop one bucket (or all) so the next request starts full."""
        with self._lock:
            if name is None:
                self._buckets.clear()
            else:
                self._buckets.pop(name, None)
