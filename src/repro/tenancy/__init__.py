"""Multi-tenant serving: tenant specs, quotas, and rate limits.

The tenancy subsystem layers per-tenant isolation over the serving
stack:

- :class:`TenantSpec` / :class:`TenantRegistry` — declarative tenant
  descriptions (allowed configs, private store paths, quota and
  rate-limit parameters) persisted as JSON so tenants survive restarts.
- :class:`QuotaManager` — storage quotas (max documents / max ingest
  batch) enforced transactionally at the store write path.
- :class:`RateLimiter` — per-tenant token buckets (qps + burst) with an
  injectable monotonic clock.
- :func:`resolve_tenant` — shared request-time resolution of the
  ``tenant=`` param (both serve tiers inject the ``X-Repro-Tenant``
  header into params before calling it).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TenancyError, UnknownTenantError
from repro.tenancy.model import QUOTA_FIELDS, TenantSpec
from repro.tenancy.quota import QuotaManager
from repro.tenancy.ratelimit import RateLimiter
from repro.tenancy.registry import TenantRegistry

#: Header carrying the tenant name; the HTTP layers fold it into params.
TENANT_HEADER = "X-Repro-Tenant"


def tenant_name(params: Mapping[str, Any]) -> str | None:
    """The ``tenant=`` value from a params mapping, or ``None``."""
    value = params.get("tenant")
    if isinstance(value, (list, tuple)):
        value = value[0] if value else None
    if value is None:
        return None
    value = str(value).strip()
    return value or None


def resolve_tenant(
    registry: "TenantRegistry | None",
    params: Mapping[str, Any],
    *,
    required: bool = False,
) -> TenantSpec | None:
    """Resolve the request's tenant against ``registry``.

    Raises :class:`UnknownTenantError` for a name the registry does not
    know, and :class:`TenancyError` when ``required`` and no tenant was
    named. With no registry configured, tenancy is off and every request
    resolves to ``None``.
    """
    if registry is None:
        return None
    name = tenant_name(params)
    if name is None:
        if required:
            raise TenancyError(
                "tenant required: pass ?tenant= or the "
                f"{TENANT_HEADER} header")
        return None
    return registry.get(name)


__all__ = [
    "QUOTA_FIELDS",
    "QuotaManager",
    "RateLimiter",
    "TENANT_HEADER",
    "TenancyError",
    "TenantRegistry",
    "TenantSpec",
    "UnknownTenantError",
    "resolve_tenant",
    "tenant_name",
]
