"""Storage-quota enforcement.

Quotas are checked *transactionally*: the store-level guard produced by
:meth:`QuotaManager.store_guard` runs inside the store's write lock
before the SQLite transaction begins, so a rejected over-quota batch
leaves the store's generation and document count untouched — no partial
writes, no compensating rollback.

With per-tenant store paths the ``max_documents`` quota bounds exactly
that tenant's corpus; when tenants share a store it bounds the live
document count of the shared store (the conservative reading).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import QuotaExceededError
from repro.tenancy.model import TenantSpec


def _doc_id(document: Any) -> str:
    return document.doc_id if hasattr(document, "doc_id") else str(document)


class QuotaManager:
    """Stateless quota checks derived from a tenant's spec.

    Stateless on purpose: the authoritative counters live in the store
    (``num_live``) and are read under the store's own write lock, so
    there is no second counter to drift out of sync.
    """

    def check_batch(self, spec: TenantSpec, batch_size: int) -> None:
        """Reject a single ingest batch larger than the tenant allows."""
        limit = spec.max_ingest_batch
        if limit is not None and batch_size > limit:
            raise QuotaExceededError(
                f"tenant {spec.name!r}: ingest batch of {batch_size} exceeds "
                f"max_ingest_batch={limit}")

    def check_documents(
        self, spec: TenantSpec, live: int, new: int
    ) -> None:
        """Reject growth past ``max_documents`` given current live count."""
        limit = spec.max_documents
        if limit is not None and live + new > limit:
            raise QuotaExceededError(
                f"tenant {spec.name!r}: {live} live + {new} new documents "
                f"exceeds max_documents={limit}")

    def store_guard(
        self, spec: TenantSpec
    ) -> Callable[[Any, Sequence[Any]], None] | None:
        """A guard for ``DocumentStore.upsert_all(..., guard=...)``.

        Runs under the store's write lock before any row is written.
        Counts only documents that are *not already live* (re-upserting a
        live document rewrites in place and does not grow the corpus);
        duplicate ids within the batch count once.
        """
        if spec.max_documents is None:
            return None

        def guard(store: Any, documents: Iterable[Any]) -> None:
            new_ids = {
                doc_id for doc_id in map(_doc_id, documents)
                if doc_id not in store
            }
            self.check_documents(spec, store.num_live, len(new_ids))

        return guard

    def check_index_growth(
        self, spec: TenantSpec, index: Any, documents: Sequence[Any]
    ) -> None:
        """Pre-check for non-store mutable backends (e.g. dynamic).

        Callers must hold the session's exclusive lock so the count
        cannot move between check and apply.
        """
        if spec.max_documents is None:
            return
        live = getattr(index, "num_live_documents", None)
        if live is None:
            live = getattr(index, "num_documents", 0)
        if callable(live):
            live = live()
        self.check_documents(spec, int(live), len(documents))
