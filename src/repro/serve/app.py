"""The expansion service and its JSON-over-HTTP transport.

Two layers, separable on purpose:

* :class:`ExpansionService` — transport-free request handling. Every
  endpoint is a method taking a plain params mapping and returning
  ``(status, payload)``; tests and embedders can call them directly.
* :class:`ExpansionServer` — a stdlib ``ThreadingHTTPServer`` wrapper
  that routes HTTP requests (GET query strings or POST JSON bodies)
  into the service and writes JSON responses. ``port=0`` binds an
  ephemeral port; :meth:`ExpansionServer.start` runs it on a daemon
  thread for in-process embedding.

Endpoints (all JSON):

==============  ====  =====================================================
``/expand``     G/P   one expansion; ``report`` is the schema-v2 envelope
``/search``     G/P   ranked retrieval; v2 search-result payloads
``/batch``      POST  many expansions; a schema-v2 ``batch_report``
``/ingest``     POST  append documents to a mutable config's index
``/changefeed`` GET   replication-log records past a generation (stores)
``/configs``    GET   configuration specs + live pool state
``/healthz``    GET   liveness + built configurations
``/metrics``    GET   request/cache/stage metrics (see API.md: Serving)
==============  ====  =====================================================

Ingestion (``/ingest``) requires a mutable backend (``backend=dynamic``
or ``backend=sqlite``); with a sqlite configuration (``store=<path>``)
every accepted document is committed to the store before the response
is written, so it survives a server restart.

Caching: ``/expand`` and ``/search`` responses are memoized in an
:class:`~repro.serve.cache.LRUTTLCache` keyed on ``(config, endpoint,
query, params, index generation)``. ``/batch`` items route through the
same per-query path, so repeated queries inside and across batches hit
the cache too. The index generation in the key plus the pool's mutation
listeners (which call :meth:`ExpansionService.invalidate_config`) make
served payloads immune to :class:`~repro.index.dynamic.DynamicIndex`
ingestion staleness.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.api import schema
from repro.errors import (
    QuotaExceededError,
    ReproError,
    ServeError,
    TenancyError,
    TenantAccessError,
    UnknownConfigError,
    UnknownTenantError,
)
from repro.feed import Changefeed, batch_to_payload
from repro.feed.changefeed import resolve_read_args
from repro.obs import (
    DEFAULT_SLOW_THRESHOLD,
    TRACE_HEADER,
    TRACE_PARAM,
    TRACE_PARENT_PARAM,
    JsonLogger,
    PrometheusText,
    SlowLog,
    TraceBuffer,
    Tracer,
    leaf_span,
    new_trace_id,
    render_prometheus,
    sanitize_trace_id,
    span,
)
from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.serve.admission import AdmissionController, shed_payload
from repro.serve.cache import LRUTTLCache
from repro.serve.metrics import ServerMetrics
from repro.serve.pool import (
    TENANT_KEY_SEP,
    PooledSession,
    ServeConfig,
    SessionPool,
)
from repro.tenancy import (
    TENANT_HEADER,
    QuotaManager,
    RateLimiter,
    TenantRegistry,
    TenantSpec,
    resolve_tenant,
)

#: Default cap on concurrently *computed* (cache-missing) requests.
DEFAULT_WORKERS = 4

#: Seconds advertised in Retry-After on tenant-admission sheds (rate-limit
#: sheds advertise the exact token-refill time instead).
DEFAULT_TENANT_RETRY_AFTER = 1.0

#: Data-plane routes: tenant resolution is mandatory there when a tenant
#: registry is configured, and rate/admission limits apply.
_TENANT_DATA_ROUTES = frozenset(
    {"/expand", "/search", "/batch", "/ingest", "/changefeed"}
)

#: Lowercased header names matched by the handler's single header pass.
_TENANT_KEY = TENANT_HEADER.lower()
_TRACE_KEY = TRACE_HEADER.lower()


class ExpansionService:
    """Routes expansion/search traffic onto a warm session pool.

    Parameters
    ----------
    pool:
        The configurations to serve (a :class:`SessionPool` or an
        iterable of :class:`ServeConfig`).
    cache_size / cache_ttl:
        Tier-0 response cache capacity and TTL (``None`` = no expiry).
    workers:
        Maximum cache-missing requests computed concurrently; excess
        requests queue on the semaphore. Cache hits never queue.
    tracing:
        When True (default) every :meth:`handle` call runs under a root
        span; finished traces land in the ``/debug/traces`` buffer and
        slow ones in ``/debug/slow``. ``False`` makes the tracer a
        no-op — the baseline ``bench_obs.py`` compares against.
    trace_capacity / slow_threshold:
        Trace-buffer size and the slow-log capture threshold (seconds).
    log_json / log_stream:
        Enable the structured JSON access log (one line per request and
        shed event); ``log_stream`` overrides the destination (stderr).
    """

    def __init__(
        self,
        pool: SessionPool | Iterable[ServeConfig],
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        workers: int = DEFAULT_WORKERS,
        tenants: TenantRegistry | None = None,
        enforce_limits: bool = True,
        rate_limiter: RateLimiter | None = None,
        tenant_retry_after: float = DEFAULT_TENANT_RETRY_AFTER,
        tracing: bool = True,
        trace_capacity: int = 256,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
        log_json: bool = False,
        log_stream: Any = None,
    ) -> None:
        if not isinstance(pool, SessionPool):
            pool = SessionPool(pool)
        self._pool = pool
        if pool.invalidation_hook is None:
            pool.invalidation_hook = self.invalidate_config
        try:
            self._cache = LRUTTLCache(maxsize=cache_size, ttl=cache_ttl)
        except ValueError as exc:
            # One catchable error family for the CLI and embedders.
            raise ServeError(str(exc)) from None
        self._metrics = ServerMetrics()
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._compute_slots = threading.BoundedSemaphore(workers)
        self._closing = threading.Event()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        # Lazily-built changefeed readers, one per store-backed entry
        # (keyed by entry key, so a tenant's private store gets its own).
        self._feeds: dict[str, Changefeed] = {}
        self._feeds_lock = threading.Lock()
        # -- tenancy ----------------------------------------------------
        # With a registry, every data-plane request resolves a tenant
        # (X-Repro-Tenant header or ?tenant=) and gets tenant-scoped
        # cache keys, metrics, quota, and — unless a fronting tier
        # already enforces them (enforce_limits=False on cluster
        # replicas) — rate limiting and bounded in-flight admission.
        self._tenants = tenants
        self._enforce_limits = bool(enforce_limits)
        self._tenant_retry_after = tenant_retry_after
        self._rate_limiter = (
            rate_limiter if rate_limiter is not None else RateLimiter()
        )
        self._quota = QuotaManager()
        self._tenant_admission = AdmissionController(
            queue_depth=max(1, workers * 4)
        )
        self._tenant_metrics: dict[str, ServerMetrics] = {}
        self._tenant_sheds: dict[str, int] = {}
        self._tenant_lock = threading.Lock()
        # -- observability ----------------------------------------------
        self._tracer = Tracer(
            buffer=TraceBuffer(trace_capacity),
            slow_log=SlowLog(slow_threshold),
            logger=(
                JsonLogger(log_stream)
                if (log_json or log_stream is not None)
                else None
            ),
            enabled=tracing,
            tags={"tier": "serve"},
        )

    @property
    def pool(self) -> SessionPool:
        return self._pool

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def trace_export(self, trace_id: str) -> "list[dict[str, Any]] | None":
        """Span records of a finished trace (the RPC stitching hook)."""
        return self._tracer.export(trace_id)

    @property
    def cache(self) -> LRUTTLCache:
        return self._cache

    @property
    def metrics(self) -> ServerMetrics:
        return self._metrics

    @property
    def tenants(self) -> TenantRegistry | None:
        return self._tenants

    def invalidate_config(self, name: str) -> int:
        """Drop cached responses for a pool-entry key.

        ``name`` is either a config name (drops *every* scope of that
        config — anonymous and all tenants, the right response to a
        shared-store mutation) or ``tenant::config`` from a dedicated
        per-tenant entry (drops only that tenant's cached responses, so
        tenant A's ingest never touches tenant B's cache).
        """
        if TENANT_KEY_SEP in name:
            tenant, _, config = name.partition(TENANT_KEY_SEP)
            return self._cache.invalidate_prefix((config, tenant))
        return self._cache.invalidate_prefix((name,))

    # -- tenancy plumbing ----------------------------------------------------

    def tenant_metrics(self, name: str) -> ServerMetrics:
        """The (lazily created) per-tenant request-metrics sink."""
        with self._tenant_lock:
            metrics = self._tenant_metrics.get(name)
            if metrics is None:
                metrics = self._tenant_metrics[name] = ServerMetrics()
            return metrics

    def _record(
        self,
        endpoint: str,
        seconds: float | None,
        tenant: TenantSpec | None,
        **kwargs: Any,
    ) -> None:
        """Record into the global sink and the tenant's own partition."""
        self._metrics.record(endpoint, seconds, **kwargs)
        if tenant is not None:
            self.tenant_metrics(tenant.name).record(
                endpoint, seconds, **kwargs
            )

    def _record_shed(self, tenant: TenantSpec) -> None:
        with self._tenant_lock:
            self._tenant_sheds[tenant.name] = (
                self._tenant_sheds.get(tenant.name, 0) + 1
            )

    def _admit(
        self, path: str, tenant: TenantSpec
    ) -> "tuple[int, dict[str, Any]] | None":
        """Rate-limit + bounded-in-flight gate for one data-plane request.

        Returns a ready 429 ``(status, payload)`` to shed, or ``None``
        when admitted — in which case the caller owns one admission slot
        iff ``tenant.max_in_flight`` is set and must release it.
        """
        ok, retry_after = self._rate_limiter.try_acquire(tenant)
        if not ok:
            self._record_shed(tenant)
            self._record(path.strip("/"), None, tenant, error=True)
            self._tracer.event(
                "shed",
                error=True,
                reason="rate_limit",
                tenant=tenant.name,
                path=path,
                retry_after=round(retry_after, 3),
            )
            return 429, shed_payload(
                f"tenant {tenant.name!r} is over its rate limit "
                f"({tenant.qps:g} qps); retry shortly",
                round(retry_after, 3),
                tenant=tenant.name,
            )
        if tenant.max_in_flight is not None and not (
            self._tenant_admission.try_acquire(
                tenant.name, depth=tenant.max_in_flight
            )
        ):
            self._record_shed(tenant)
            self._record(path.strip("/"), None, tenant, error=True)
            self._tracer.event(
                "shed",
                error=True,
                reason="in_flight",
                tenant=tenant.name,
                path=path,
                retry_after=self._tenant_retry_after,
            )
            return 429, shed_payload(
                f"tenant {tenant.name!r} is at its in-flight bound "
                f"({tenant.max_in_flight}); retry shortly",
                self._tenant_retry_after,
                tenant=tenant.name,
            )
        return None

    # -- shutdown ------------------------------------------------------------

    @property
    def closing(self) -> bool:
        """True once :meth:`close` has begun; new requests get 503."""
        return self._closing.is_set()

    def close(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: refuse, drain, release.

        New requests are answered ``503 shutting_down`` immediately;
        requests already inside :meth:`handle` get up to
        ``drain_timeout`` seconds to finish; then the session pool is
        closed, releasing store connections (``backend=sqlite``) so the
        database files are safe to move or delete. Idempotent — and
        callable while a server thread is still accepting connections,
        which is exactly how the SIGTERM path uses it.
        """
        self._closing.set()
        deadline = time.monotonic() + drain_timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # drain expired: close anyway, stragglers 500
                self._inflight_cv.wait(remaining)
        self._pool.close()
        with self._feeds_lock:
            feeds, self._feeds = dict(self._feeds), {}
        for feed in feeds.values():
            feed.close()

    # -- request plumbing ----------------------------------------------------

    @staticmethod
    def _param(params: Mapping[str, Any], key: str, default: Any = None) -> Any:
        value = params.get(key, default)
        if isinstance(value, list):  # parse_qs yields lists
            value = value[0] if value else default
        return value

    def _require(self, params: Mapping[str, Any], key: str) -> Any:
        value = self._param(params, key)
        if value in (None, ""):
            raise ServeError(f"missing required parameter {key!r}")
        return value

    def _entry(
        self, params: Mapping[str, Any], tenant: TenantSpec | None = None
    ) -> PooledSession:
        names = self._pool.names()
        name = self._param(params, "config")
        if name is None and len(names) == 1:
            name = names[0]
        if name is None:
            raise ServeError(
                f"parameter 'config' is required with multiple "
                f"configurations; configured: {', '.join(names)}"
            )
        return self._pool.get(str(name), tenant)

    # -- cached per-query execution ------------------------------------------

    def _expand_cached(
        self,
        entry: PooledSession,
        query: str,
        algorithm: str | None,
        results: str = "full",
        tenant: TenantSpec | None = None,
    ) -> tuple[dict[str, Any], str]:
        """``(schema-v2 report payload, "hit"|"miss")`` for one query.

        ``results="none"`` drops the per-result document payloads — the
        report envelope stays schema-v2 valid (readers treat ``results``
        as optional), and responses shrink by orders of magnitude when
        the caller wants expansions, not the matching documents.

        Cache keys lead with ``(config, tenant)`` so one tenant's hits,
        misses, and invalidations never touch another tenant's entries
        (anonymous requests key on tenant ``None``).

        Returned payloads are shared cache snapshots: direct
        :meth:`handle` callers must treat them as read-only (the HTTP
        layer serializes immediately; per-request deep copies would
        cost more than the compute the cache saves).
        """
        # Normalize the algorithm for keying: an explicit override equal
        # to the config's default (or differing only in case) must share
        # the default's cache entry, not trigger a duplicate recompute.
        if isinstance(algorithm, str):
            algorithm = algorithm.strip().lower() or None
        scope = None if tenant is None else tenant.name

        def variant_key(mode: str) -> tuple:
            return (
                entry.config.name,
                scope,
                "expand",
                query,
                algorithm or entry.session.algorithm_name,
                mode,
                entry.generation(),
            )

        key = variant_key(results)
        # leaf_span, not span(): the probe is a straight dict operation
        # that never parents children, and this is the warmest line in
        # the service — the ctxvar push/pop would be pure overhead.
        lookup_span = leaf_span("cache.lookup", endpoint="expand")
        hit, payload = self._cache.lookup(key)
        if lookup_span is not None:
            lookup_span.attrs["result"] = "hit" if hit else "miss"
            lookup_span.end()
        if hit:
            return payload, "hit"
        if results == "none":
            # Derivable without compute: strip the cached full payload.
            hit, full = self._cache.lookup(variant_key("full"))
            if hit:
                payload = {k: v for k, v in full.items() if k != "results"}
                self._cache.put(key, payload)
                return payload, "hit"
        # Exclusive lock first, worker slot second: threads queued on a
        # non-concurrent-read backend's lock must not sit on compute
        # slots, or one config's serialization starves every other
        # config's cache misses.
        with entry.locked():
            # analyze: ignore[LOCK002] - documented one-way ordering: the
            # entry lock is always taken before a compute slot, never after
            with self._compute_slots:
                report = entry.session.expand(query, algorithm=algorithm)
        payload = schema.report_to_dict(report)
        if results == "none":
            payload.pop("results", None)
        self._cache.put(key, payload)
        return payload, "miss"

    def _search_cached(
        self,
        entry: PooledSession,
        query: str,
        top_k: int | None,
        semantics: str,
        tenant: TenantSpec | None = None,
    ) -> tuple[list[dict[str, Any]], str]:
        key = (
            entry.config.name,
            None if tenant is None else tenant.name,
            "search",
            query,
            top_k,
            semantics,
            entry.generation(),
        )
        lookup_span = leaf_span("cache.lookup", endpoint="search")
        hit, payload = self._cache.lookup(key)
        if lookup_span is not None:
            lookup_span.attrs["result"] = "hit" if hit else "miss"
            lookup_span.end()
        if hit:
            return payload, "hit"
        # /search bypasses the pipeline (retrieval only), so the compute
        # gets an explicit stage.retrieve span — the search-path analogue
        # of the per-stage spans TracingMiddleware emits under /expand.
        # Opened before the entry lock, so lock-wait shows in the span.
        with span("stage.retrieve", semantics=semantics):
            with entry.locked():  # lock-then-slot, as in _expand_cached
                # analyze: ignore[LOCK002] - same one-way entry-lock -> slot
                # ordering as _expand_cached
                with self._compute_slots:
                    results = entry.session.search(
                        query, top_k=top_k, semantics=semantics
                    )
        payload = [schema.search_result_to_dict(r) for r in results]
        self._cache.put(key, payload)
        return payload, "miss"

    # -- endpoints -----------------------------------------------------------

    def expand(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        t0 = time.perf_counter()
        entry = self._entry(params, tenant)
        query = str(self._require(params, "query"))
        algorithm = self._param(params, "algorithm")
        algorithm = str(algorithm) if algorithm is not None else None
        results = str(self._param(params, "results", "full")).lower()
        if results not in ("full", "none"):
            raise ServeError(f"results must be 'full' or 'none', got {results!r}")
        payload, cache = self._expand_cached(
            entry, query, algorithm, results, tenant
        )
        seconds = time.perf_counter() - t0
        self._record("expand", seconds, tenant, cache=cache)
        body = {
            "config": entry.config.name,
            "query": query,
            "algorithm": algorithm or entry.session.algorithm_name,
            "cache": cache,
            "seconds": seconds,
            "report": payload,
        }
        if tenant is not None:
            body["tenant"] = tenant.name
        return 200, body

    def search(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        t0 = time.perf_counter()
        entry = self._entry(params, tenant)
        query = str(self._require(params, "query"))
        top_k_raw = self._param(params, "top_k")
        try:
            top_k = None if top_k_raw in (None, "") else int(top_k_raw)
        except (TypeError, ValueError):
            raise ServeError(f"top_k must be an integer, got {top_k_raw!r}")
        semantics = str(self._param(params, "semantics", "and")).lower()
        if semantics not in ("and", "or"):
            raise ServeError(f"semantics must be 'and' or 'or', got {semantics!r}")
        payload, cache = self._search_cached(
            entry, query, top_k, semantics, tenant
        )
        seconds = time.perf_counter() - t0
        self._record("search", seconds, tenant, cache=cache)
        body = {
            "config": entry.config.name,
            "query": query,
            "top_k": top_k,
            "semantics": semantics,
            "cache": cache,
            "seconds": seconds,
            "n_results": len(payload),
            "results": payload,
        }
        if tenant is not None:
            body["tenant"] = tenant.name
        return 200, body

    def batch(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        t0 = time.perf_counter()
        entry = self._entry(params, tenant)
        queries = params.get("queries")
        if not isinstance(queries, (list, tuple)) or not queries:
            raise ServeError("batch needs a non-empty 'queries' list")
        queries = [str(q) for q in queries]
        algorithm = self._param(params, "algorithm")
        algorithm = str(algorithm) if algorithm is not None else None
        workers = self._param(params, "workers", 1)
        try:
            workers = max(1, min(int(workers), self._workers))
        except (TypeError, ValueError):
            raise ServeError(f"workers must be an integer, got {workers!r}")

        def run_one(query: str) -> dict[str, Any]:
            # The extra "cache" key is additive; BatchItem.from_dict
            # readers ignore it (schema v2 stays intact).
            q0 = time.perf_counter()
            try:
                payload, cache = self._expand_cached(
                    entry, query, algorithm, tenant=tenant
                )
                return {
                    "query": query,
                    "ok": True,
                    "report": payload,
                    "error_type": None,
                    "error_message": None,
                    "seconds": time.perf_counter() - q0,
                    "cache": cache,
                }
            except Exception as exc:  # noqa: BLE001 — per-query isolation
                return {
                    "query": query,
                    "ok": False,
                    "report": None,
                    "error_type": type(exc).__name__,
                    "error_message": str(exc),
                    "seconds": time.perf_counter() - q0,
                    "cache": "miss",
                }

        if workers == 1 or len(queries) <= 1:
            items = [run_one(q) for q in queries]
        else:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(queries))
            ) as executor:
                items = list(executor.map(run_one, queries))
        seconds = time.perf_counter() - t0
        self._record(
            "batch",
            seconds,
            tenant,
            cache_hits=sum(1 for i in items if i["cache"] == "hit"),
            cache_misses=sum(1 for i in items if i["cache"] == "miss"),
        )
        report = schema.make_envelope(
            schema.KIND_BATCH,
            {"items": items, "workers": workers, "seconds": seconds},
        )
        body = {
            "config": entry.config.name,
            "cache_hits": sum(1 for i in items if i["cache"] == "hit"),
            "n_ok": sum(1 for i in items if i["ok"]),
            "n_failed": sum(1 for i in items if not i["ok"]),
            "report": report,
        }
        if tenant is not None:
            body["tenant"] = tenant.name
        return 200, body

    def ingest(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Append documents to a mutable configuration's index.

        Each entry in ``documents`` is either a schema document payload
        (``doc_id`` + ``terms`` + optional ``kind``/``title``/``fields``)
        or the convenience form ``{"doc_id": ..., "text": ...}``, which
        is analyzed with the target session's analyzer. The whole batch
        is applied atomically per backend transaction semantics; the
        response reports the post-ingest index generation. With a
        tenant, the write lands in that tenant's scope (private store or
        per-tenant dynamic index) and its quotas apply transactionally —
        a rejected batch changes nothing.
        """
        from repro.data.documents import document_from_payload
        from repro.errors import DataError, SchemaError

        t0 = time.perf_counter()
        entry = self._entry(params, tenant)
        raw = params.get("documents")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ServeError("ingest needs a non-empty 'documents' list")
        documents = []
        for i, payload in enumerate(raw):
            try:
                documents.append(
                    document_from_payload(
                        payload, analyzer=entry.session.analyzer
                    )
                )
            except (DataError, SchemaError) as exc:
                raise ServeError(f"documents[{i}]: {exc}") from None
        count = self._pool.ingest(
            entry.config.name, documents, tenant=tenant, quota=self._quota
        )
        seconds = time.perf_counter() - t0
        self._record("ingest", seconds, tenant)
        body = {
            "config": entry.config.name,
            "ingested": count,
            "generation": entry.generation(),
            "persistent": entry.index.capabilities().persistent,
            "seconds": seconds,
        }
        if tenant is not None:
            body["tenant"] = tenant.name
        return 200, body

    def _feed_for(self, entry: PooledSession) -> Changefeed:
        """The (cached) changefeed reader for a store-backed entry.

        Keyed by the entry key, so a tenant with a private store path
        reads its *own* replication log, not the shared config's.
        """
        store = getattr(entry.index, "store", None)
        if store is None:
            raise ServeError(
                f"configuration {entry.config.name!r} has no document "
                f"store (backend={entry.config.backend}); /changefeed "
                f"needs a store-backed configuration (store=<path>)"
            )
        key = entry.key
        with self._feeds_lock:
            feed = self._feeds.get(key)
            if feed is None:
                feed = Changefeed(store.path)
                self._feeds[key] = feed
            return feed

    def changefeed(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Replication-log records past a generation (see API.md).

        ``since`` (a generation) or ``cursor`` (an opaque token from a
        previous response) positions the read; ``limit`` caps records
        per batch; ``consumer`` optionally records an applied-through
        claim that bounds background log truncation. A truncated prefix
        is reported as ``gap: true`` with HTTP 200 — the client falls
        back to a snapshot and resumes from its generation.
        """
        t0 = time.perf_counter()
        entry = self._entry(params, tenant)
        since, limit, consumer = resolve_read_args(
            self._param(params, "cursor"),
            self._param(params, "since"),
            self._param(params, "limit"),
            self._param(params, "consumer"),
        )
        feed = self._feed_for(entry)
        batch = feed.read_since(since, limit=limit, consumer=consumer)
        payload = batch_to_payload(entry.config.name, batch, limit)
        if tenant is not None:
            payload["tenant"] = tenant.name
        self._record("changefeed", time.perf_counter() - t0, tenant)
        return 200, payload

    def configs(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        t0 = time.perf_counter()
        payload: dict[str, Any] = {"configs": self._pool.describe()}
        if self._tenants is not None:
            payload["tenants"] = self._tenants.names()
        self._metrics.record("configs", time.perf_counter() - t0)
        return 200, payload

    def _tenant_health(self) -> dict[str, Any]:
        """Per-tenant health section: allowed configs + dedicated views."""
        assert self._tenants is not None
        built = self._pool.built_names()
        names = self._pool.names()
        out: dict[str, Any] = {}
        for spec in self._tenants.specs():
            prefix = f"{spec.name}{TENANT_KEY_SEP}"
            out[spec.name] = {
                "configs": [n for n in names if spec.allows(n)],
                "dedicated_built": sorted(
                    key[len(prefix):] for key in built
                    if key.startswith(prefix)
                ),
            }
        return out

    def healthz(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        t0 = time.perf_counter()
        built = [
            name for name in self._pool.built_names()
            if TENANT_KEY_SEP not in name
        ]
        payload = {
            "status": "ok",
            "uptime_seconds": self._metrics.uptime_seconds(),
            "configs": list(self._pool.names()),
            "built": built,
            # Per-config index generations: lets a cluster coordinator
            # (and its tests) prove a restarted replica re-hydrated from
            # the latest snapshot rather than its predecessor's state.
            "generations": {
                name: self._pool.get(name).generation() for name in built
            },
            "schema_version": schema.SCHEMA_VERSION,
        }
        if self._tenants is not None:
            payload["tenants"] = self._tenant_health()
        self._metrics.record("healthz", time.perf_counter() - t0)
        return 200, payload

    def metrics_snapshot(
        self,
        params: Mapping[str, Any] | None = None,
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        fmt = str(self._param(params or {}, "format", "json")).lower()
        if fmt not in ("json", "prometheus"):
            raise ServeError(
                f"format must be 'json' or 'prometheus', got {fmt!r}"
            )
        t0 = time.perf_counter()
        requests = self._metrics.snapshot()
        payload = {
            "uptime_seconds": requests.pop("uptime_seconds"),
            "requests": requests["endpoints"],
            "cache": {
                "responses": self._cache.stats(),
                "sessions": self._pool.session_cache_info(),
            },
            "stages": self._pool.stage_metrics(),
            "configs": self._pool.describe(),
        }
        if self._tenants is not None:
            with self._tenant_lock:
                sinks = dict(self._tenant_metrics)
                sheds = dict(self._tenant_sheds)
            tenants: dict[str, Any] = {}
            for name, sink in sinks.items():
                snap = sink.snapshot()
                tenants[name] = {
                    "requests": snap["endpoints"],
                    "sheds": sheds.get(name, 0),
                }
            # Tenants that were only ever shed still get a row.
            for name, count in sheds.items():
                tenants.setdefault(name, {"requests": {}, "sheds": count})
            payload["tenants"] = tenants
            payload["tenant_in_flight"] = self._tenant_admission.snapshot()
        # Count this scrape too (it appears from the *next* snapshot on;
        # the payload above was already assembled).
        self._metrics.record("metrics", time.perf_counter() - t0)
        if fmt == "prometheus":
            return 200, render_prometheus(payload)
        return 200, payload

    # -- debug endpoints -----------------------------------------------------

    @staticmethod
    def _float_param(params: Mapping[str, Any], key: str) -> float | None:
        raw = ExpansionService._param(params, key)
        if raw in (None, ""):
            return None
        try:
            return float(raw)
        except (TypeError, ValueError):
            raise ServeError(f"{key} must be a number, got {raw!r}")

    def debug_traces(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Recent finished traces (``min_duration``/``status``/``tenant``).

        With a tenant registry, a tenant-scoped request sees only its own
        traces; anonymous/admin requests may filter by ``?tenant=``... —
        but the resolved tenant always wins over the query filter.
        """
        buffer = self._tracer.buffer
        min_duration = self._float_param(params, "min_duration")
        status = self._param(params, "status")
        status = str(status) if status not in (None, "") else None
        tenant_filter = (
            tenant.name
            if tenant is not None
            else self._param(params, "for_tenant")
        )
        limit_raw = self._param(params, "limit", 50)
        try:
            limit = max(1, min(int(limit_raw), 500))
        except (TypeError, ValueError):
            raise ServeError(f"limit must be an integer, got {limit_raw!r}")
        traces = (
            buffer.list(
                min_duration=min_duration,
                status=status,
                tenant=tenant_filter,
                limit=limit,
            )
            if buffer is not None
            else []
        )
        return 200, {
            "tracing": self._tracer.enabled,
            "held": 0 if buffer is None else len(buffer),
            "capacity": 0 if buffer is None else buffer.capacity,
            "traces": traces,
        }

    def debug_slow(
        self,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """The slow-request ring: summaries of requests over threshold."""
        slow = self._tracer.slow_log
        limit_raw = self._param(params, "limit", 50)
        try:
            limit = max(1, min(int(limit_raw), 500))
        except (TypeError, ValueError):
            raise ServeError(f"limit must be an integer, got {limit_raw!r}")
        if slow is None:
            return 200, {"slow": [], "threshold_seconds": None}
        entries = slow.entries(limit)
        if tenant is not None:
            entries = [e for e in entries if e.get("tenant") == tenant.name]
        payload = slow.snapshot()
        payload["slow"] = entries
        return 200, payload

    # -- routing -------------------------------------------------------------

    _ROUTES = {
        "/expand": ("expand", ("GET", "POST")),
        "/search": ("search", ("GET", "POST")),
        "/batch": ("batch", ("POST",)),
        "/ingest": ("ingest", ("POST",)),
        "/changefeed": ("changefeed", ("GET",)),
        "/configs": ("configs", ("GET",)),
        "/healthz": ("healthz", ("GET",)),
        "/metrics": ("metrics_snapshot", ("GET",)),
        "/debug/traces": ("debug_traces", ("GET",)),
        "/debug/slow": ("debug_slow", ("GET",)),
    }

    def handle(
        self,
        method: str,
        path: str,
        params: Mapping[str, Any],
        trace_id: str | None = None,
        parent_id: str | None = None,
    ) -> tuple[int, Any]:
        """Dispatch one request under a root span; never raises.

        Trace context arrives either as the ``trace_id``/``parent_id``
        keywords (the HTTP layer passes the ``X-Repro-Trace`` id it
        chose directly — no params round-trip on the warm path) or in
        the reserved ``_trace``/``_trace_parent`` params (the
        coordinator's RPC into a replica, or direct callers); params
        are stripped before the endpoint sees the request. Every error
        payload gains the request's ``trace_id``; the finished trace
        lands in the tracer's sinks.
        """
        if TRACE_PARAM in params or TRACE_PARENT_PARAM in params:
            params = dict(params)
            raw_trace = params.pop(TRACE_PARAM, None)
            raw_parent = params.pop(TRACE_PARENT_PARAM, None)
            if trace_id is None:
                if isinstance(raw_trace, list):  # ?_trace=... via parse_qs
                    raw_trace = raw_trace[0] if raw_trace else None
                trace_id = raw_trace
            if parent_id is None:
                if isinstance(raw_parent, list):
                    raw_parent = raw_parent[0] if raw_parent else None
                parent_id = raw_parent
        if not self._tracer.enabled:
            return self._dispatch(method, path, params)
        with self._tracer.request(
            "http.request",
            trace_id=trace_id,
            parent_id=parent_id,
            method=method,
            path=path,
        ) as root:
            status, payload = self._dispatch(method, path, params)
            if root is not None:
                attrs = root.attrs  # direct writes: handle is the warm path
                attrs["status"] = status
                if isinstance(payload, dict):
                    if "cache" in payload:
                        attrs["cache"] = payload["cache"]
                    if "tenant" in payload:
                        attrs["tenant"] = payload["tenant"]
                    if status >= 400:
                        root.mark_error(
                            str(payload.get("message") or payload.get("error"))
                        )
                        payload.setdefault("trace_id", root.trace_id)
            return status, payload

    def _dispatch(
        self, method: str, path: str, params: Mapping[str, Any]
    ) -> tuple[int, Any]:
        """Route + tenancy + error ladder (the pre-tracing ``handle``).

        With a tenant registry configured, every route resolves the
        request's tenant first (``?tenant=`` / ``X-Repro-Tenant`` folded
        into params by the HTTP layer). Data-plane routes *require* one
        and pass its rate-limit / in-flight gate before running; admin
        routes (``/configs`` ``/healthz`` ``/metrics``) accept an
        optional tenant and always answer.
        """
        if self._closing.is_set():
            return 503, {
                "error": "shutting_down",
                "message": "server is draining in-flight requests and shutting down",
            }
        normalized = path.rstrip("/") or path
        route = self._ROUTES.get(normalized)
        if route is None:
            return 404, {
                "error": "not_found",
                "message": f"unknown path {path!r}",
                "paths": sorted(self._ROUTES),
            }
        handler_name, methods = route
        if method not in methods:
            return 405, {
                "error": "method_not_allowed",
                "message": f"{path} accepts {', '.join(methods)}",
            }
        endpoint = normalized.strip("/")
        tenant: TenantSpec | None = None
        if self._tenants is not None:
            try:
                with span("tenant.resolve") as resolve_span:
                    tenant = resolve_tenant(
                        self._tenants, params,
                        required=normalized in _TENANT_DATA_ROUTES,
                    )
                    if resolve_span is not None and tenant is not None:
                        resolve_span.set_attr("tenant", tenant.name)
            except UnknownTenantError as exc:
                self._metrics.record(endpoint, None, error=True)
                return 404, {"error": "unknown_tenant", "message": str(exc)}
            except TenancyError as exc:
                self._metrics.record(endpoint, None, error=True)
                return 400, {"error": "tenant_required", "message": str(exc)}
        admitted = False
        if (
            tenant is not None
            and self._enforce_limits
            and normalized in _TENANT_DATA_ROUTES
        ):
            shed = self._admit(normalized, tenant)
            if shed is not None:
                return shed
            admitted = tenant.max_in_flight is not None
        with self._inflight_cv:
            self._inflight += 1
        try:
            handler = getattr(self, handler_name)
            if self._tenants is None:
                # Single-tenant contract unchanged: endpoint overrides
                # (tests monkeypatch these) keep their one-arg signature.
                return handler(params)
            return handler(params, tenant)
        except UnknownConfigError as exc:
            self._record(endpoint, None, tenant, error=True)
            return 404, self._error_body("unknown_config", exc, tenant)
        except TenantAccessError as exc:
            self._record(endpoint, None, tenant, error=True)
            return 403, self._error_body("forbidden", exc, tenant)
        except QuotaExceededError as exc:
            self._record(endpoint, None, tenant, error=True)
            return 413, self._error_body("quota_exceeded", exc, tenant)
        except ServeError as exc:
            self._record(endpoint, None, tenant, error=True)
            return 400, self._error_body("serve_error", exc, tenant)
        except ReproError as exc:
            self._record(endpoint, None, tenant, error=True)
            return 400, self._error_body(type(exc).__name__, exc, tenant)
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            self._record(endpoint, None, tenant, error=True)
            return 500, self._error_body("internal", exc, tenant)
        finally:
            if admitted:
                self._tenant_admission.release(tenant.name)
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    @staticmethod
    def _error_body(
        code: str, exc: BaseException, tenant: TenantSpec | None
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"error": code, "message": str(exc)}
        if tenant is not None:
            body["tenant"] = tenant.name
        return body


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto :meth:`ExpansionService.handle`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    # Headers and body go out as separate writes; with Nagle on, that
    # write-write-read pattern stalls keep-alive clients for a delayed-ACK
    # interval (~40ms) per request. TCP_NODELAY keeps hits sub-millisecond.
    disable_nagle_algorithm = True

    def _params_from_query(self) -> dict[str, Any]:
        parts = urlsplit(self.path)
        return {k: v for k, v in parse_qs(parts.query).items()}

    def _fold_headers(self, params: dict[str, Any]) -> dict[str, Any]:
        """Fold ``X-Repro-Tenant`` and ``X-Repro-Trace`` into params.

        One pass over the raw headers — ``Message.get`` re-scans the
        whole header list per call, and a second scan per request is
        visible in the warm-path overhead gate. The tenant param is only
        set when absent (explicit param wins). The trace id chosen here
        (client-supplied or fresh) is what the service roots the trace
        on, and what :meth:`_respond` echoes back — so the header
        round-trips and a generated id still reaches the client for
        ``/debug/traces`` lookup.
        """
        tenant = trace = None
        for key, value in self.headers.items():
            lowered = key.lower()
            if tenant is None and lowered == _TENANT_KEY:
                tenant = value
            elif trace is None and lowered == _TRACE_KEY:
                trace = value
        if tenant and "tenant" not in params:
            params["tenant"] = tenant
        tracer = getattr(self.server.service, "tracer", None)
        if tracer is None or not tracer.enabled:
            self._trace_id = None
            return params
        # The chosen id rides self._trace_id into handle()'s trace_id
        # keyword and the response echo — never through params.
        self._trace_id = sanitize_trace_id(trace) or new_trace_id()
        return params

    def _respond(self, status: int, payload: Any) -> None:
        if isinstance(payload, PrometheusText):
            body = bytes(payload)
            content_type = _PROM_CONTENT_TYPE
        else:
            # Compact separators: expansion reports carry full result
            # payloads, so serialization cost is visible in hit latency.
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        if status == 429 and isinstance(payload, Mapping):
            # Every shed payload (rate limit or admission, either tier)
            # carries retry_after — surface it as the standard header.
            retry_after = payload.get("retry_after")
            if retry_after is not None:
                self.send_header(
                    "Retry-After", str(max(1, round(float(retry_after))))
                )
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = urlsplit(self.path).path
        params = self._fold_headers(self._params_from_query())
        if self._trace_id is None:  # untraced (or stub) service: legacy call
            status, payload = self.server.service.handle("GET", path, params)
        else:
            status, payload = self.server.service.handle(
                "GET", path, params, trace_id=self._trace_id
            )
        self._respond(status, payload)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = urlsplit(self.path).path
        params: dict[str, Any] = self._params_from_query()
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._fold_headers(params)
                self._respond(
                    400, {"error": "bad_json", "message": str(exc)}
                )
                return
            if not isinstance(body, dict):
                self._fold_headers(params)
                self._respond(
                    400,
                    {"error": "bad_json", "message": "body must be an object"},
                )
                return
            params.update(body)
        params = self._fold_headers(params)
        if self._trace_id is None:
            status, payload = self.server.service.handle("POST", path, params)
        else:
            status, payload = self.server.service.handle(
                "POST", path, params, trace_id=self._trace_id
            )
        self._respond(status, payload)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # requests are observable via /metrics; stderr stays quiet


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: ExpansionService


class ExpansionServer:
    """The HTTP front of an :class:`ExpansionService`.

    ``port=0`` binds an OS-assigned ephemeral port (read it back from
    :attr:`port`). :meth:`start` serves on a daemon thread —
    the embedding pattern used by tests, the benchmark, and the
    example — while :meth:`serve_forever` blocks (the CLI path).
    """

    def __init__(
        self,
        service: ExpansionService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self._service = service
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.service = service
        self._thread: threading.Thread | None = None
        self._serving = threading.Event()  # a blocking serve_forever is live
        self._closed = threading.Event()  # set once stop() has run
        self._stop_lock = threading.Lock()

    @property
    def service(self) -> ExpansionService:
        return self._service

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ExpansionServer":
        # _thread is handed off under _stop_lock: a signal handler's stop
        # thread may run concurrently with start, and an unlocked write
        # here could leak a started-but-never-joined serve thread.
        with self._stop_lock:
            if self._thread is not None:
                raise ServeError("server already started")
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-serve:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        if self._closed.is_set():
            return
        self._serving.set()
        try:
            self._httpd.serve_forever()
        finally:
            self._serving.clear()

    def stop(
        self, close_service: bool = True, drain_timeout: float = 10.0
    ) -> None:
        """Graceful stop: quit accepting, drain, release everything.

        ``shutdown()`` waits on an event that only ``serve_forever`` sets,
        so it must not run unless a serve loop is live — on an unstarted
        server it would block forever. Two loops qualify: the daemon
        thread :meth:`start` spun, and a blocking :meth:`serve_forever`
        on the caller's thread (the CLI path, where a signal handler's
        stop thread reaches here *while* the main thread is still inside
        ``serve_forever`` — skipping ``shutdown()`` there would close the
        listening socket under the live accept loop and leave it
        spinning on an invalid descriptor forever).

        With ``close_service`` (the default) the underlying service is
        closed too — in-flight requests drain for up to
        ``drain_timeout`` seconds, then the session pool releases its
        store connections. Pass ``close_service=False`` to stop only the
        HTTP front (e.g. to hand the service to another transport).
        """
        # analyze: ignore[LOCK001] - shutdown() and join(timeout=5) are
        # bounded teardown waits; serializing them under _stop_lock is the
        # point (racing stop() calls must not double-join the thread).
        with self._stop_lock:
            self._closed.set()
            if self._thread is not None:
                self._httpd.shutdown()
                self._thread.join(timeout=5)
                self._thread = None
            elif self._serving.is_set():
                self._httpd.shutdown()  # wakes the blocking serve_forever
            self._httpd.server_close()
        if close_service:
            self._service.close(drain_timeout=drain_timeout)

    def install_signal_handlers(
        self, signals: tuple[int, ...] | None = None
    ) -> None:
        """Make SIGTERM/SIGINT trigger a graceful :meth:`stop`.

        Main-thread only (a CPython constraint on ``signal.signal``).
        The handler spawns a thread to run :meth:`stop`: calling
        ``httpd.shutdown()`` inline would deadlock the blocking
        :meth:`serve_forever` path, where the handler interrupts the
        very thread ``shutdown()`` waits on. Once the stop thread closes
        the loop, ``serve_forever`` returns and the caller unwinds
        normally — so ``repro serve`` under SIGTERM drains in-flight
        requests and exits 0 instead of dying mid-response.
        """
        import signal as _signal

        if signals is None:
            signals = (_signal.SIGTERM, _signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.stop, name="repro-serve-shutdown", daemon=True
            ).start()

        for signum in signals:
            _signal.signal(signum, _handler)

    def __enter__(self) -> "ExpansionServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def create_server(
    configs: Iterable[ServeConfig | str],
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 1024,
    cache_ttl: float | None = None,
    workers: int = DEFAULT_WORKERS,
    tenants: TenantRegistry | str | None = None,
    tracing: bool = True,
    trace_capacity: int = 256,
    slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
    log_json: bool = False,
) -> ExpansionServer:
    """Assemble pool → service → HTTP server in one call.

    ``configs`` entries may be :class:`ServeConfig` objects or CLI spec
    strings (``name:key=value,...``). The pool's invalidation hook is
    wired to the service's response cache. ``tenants`` (a
    :class:`~repro.tenancy.TenantRegistry` or a path to a tenants JSON
    file) switches the service to multi-tenant mode. The observability
    knobs (``tracing``/``trace_capacity``/``slow_threshold``/
    ``log_json``) pass straight to :class:`ExpansionService`.
    """
    parsed = [
        c if isinstance(c, ServeConfig) else ServeConfig.parse(c)
        for c in configs
    ]
    if isinstance(tenants, str):
        tenants = TenantRegistry(tenants)
    # ExpansionService wires the pool's invalidation hook to its cache.
    service = ExpansionService(
        SessionPool(parsed),
        cache_size=cache_size,
        cache_ttl=cache_ttl,
        workers=workers,
        tenants=tenants,
        tracing=tracing,
        trace_capacity=trace_capacity,
        slow_threshold=slow_threshold,
        log_json=log_json,
    )
    return ExpansionServer(service, host=host, port=port)
