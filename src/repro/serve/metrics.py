"""Serving metrics: latency histograms, request counters, stage timings.

Everything here is thread-safe (the HTTP server handles each connection
on its own thread) and snapshots to plain JSON types — ``/metrics`` is
just :meth:`ServerMetrics.snapshot` serialized.

:class:`ServerMetricsMiddleware` is the bridge to the PR-3 pipeline: one
instance is installed per pooled session at build time, its
``on_stage_end`` hook feeds every stage execution's wall clock into a
per-stage :class:`LatencyHistogram`, and the service surfaces the result
under ``"stages"`` in ``/metrics``. Sessions and their pipelines are
shared across request threads, so the middleware aggregates across the
whole serving lifetime, not per request.
"""

from __future__ import annotations

import math
import time
from collections import deque
from threading import Lock
from typing import Any

#: Upper bounds (seconds) of the histogram buckets; the last is +inf.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Recent samples kept per histogram for percentile estimation.
RESERVOIR_SIZE = 2048


class LatencyHistogram:
    """Bucketed latencies + a bounded reservoir for p50/p95/p99.

    Buckets give the long-run shape (cheap, fixed memory); the reservoir
    of the most recent :data:`RESERVOIR_SIZE` samples gives accurate
    recent percentiles without storing the full history.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self._bounds) + 1)  # +1 for +inf
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._recent: deque[float] = deque(maxlen=RESERVOIR_SIZE)
        self._lock = Lock()

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            index = len(self._bounds)
            for i, bound in enumerate(self._bounds):
                if seconds <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            self._recent.append(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict[str, Any]:
        """Counters, buckets, and percentile estimates as plain JSON types.

        The ``p50/p95/p99_seconds`` values are **estimated from the
        recent-sample reservoir** (the last :data:`RESERVOIR_SIZE`
        observations), *not* from the full bucket counts: once ``count``
        exceeds ``sample_count`` the percentiles describe recent traffic
        while ``buckets``/``count``/``total_seconds`` describe the whole
        serving lifetime. ``sample_count`` reports how many samples the
        percentiles were computed over so dashboards can tell the two
        populations apart.
        """
        with self._lock:
            if not self._count:
                return {"count": 0}
            counts = list(self._counts)
            count, total, peak = self._count, self._total, self._max
            ordered = sorted(self._recent)

        def pct(q: float) -> float:
            rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
            return ordered[rank]

        buckets = {f"le_{bound:g}": c for bound, c in zip(self._bounds, counts)}
        buckets["le_inf"] = counts[-1]
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count,
            "max_seconds": peak,
            "p50_seconds": pct(0.50),
            "p95_seconds": pct(0.95),
            "p99_seconds": pct(0.99),
            "sample_count": len(ordered),
            "buckets": buckets,
        }


class ServerMetricsMiddleware:
    """Pipeline middleware: per-stage latency histograms for ``/metrics``.

    Conforms to :class:`repro.pipeline.Middleware`; install with
    ``Session.builder().middleware(mw)`` (the pool does this for every
    configuration it builds). Hook errors are isolated by the pipeline,
    and the hook itself never replaces the context.
    """

    def __init__(self) -> None:
        self._stages: dict[str, LatencyHistogram] = {}
        self._errors: dict[str, int] = {}
        self._order: list[str] = []
        self._lock = Lock()

    def _histogram(self, stage_name: str) -> LatencyHistogram:
        with self._lock:
            hist = self._stages.get(stage_name)
            if hist is None:
                hist = self._stages[stage_name] = LatencyHistogram()
                self._order.append(stage_name)
            return hist

    def on_stage_start(self, ctx, stage) -> None:
        return None

    def on_stage_end(self, ctx, stage, seconds: float) -> None:
        self._histogram(stage.name).observe(seconds)
        return None

    def on_stage_error(self, ctx, stage, exc) -> None:
        # Count only — a placeholder duration would drag the stage's
        # latency percentiles toward zero (see ServerMetrics.record).
        self._histogram(stage.name)  # ensure the stage appears in order
        with self._lock:
            self._errors[stage.name] = self._errors.get(stage.name, 0) + 1

    def snapshot(self) -> dict[str, Any]:
        """``{stage: histogram snapshot (+ errors)}`` in first-run order."""
        with self._lock:
            order = list(self._order)
            errors = dict(self._errors)
            # Copy the map itself too: reading it lock-free would race
            # _histogram inserting a first-seen stage (the PR 6 torn-read
            # shape). The histograms are internally locked, so holding
            # references outside the lock is fine.
            stages = dict(self._stages)
        out: dict[str, Any] = {}
        for name in order:
            stats = stages[name].snapshot()
            if name in errors:
                stats["errors"] = errors[name]
            out[name] = stats
        return out


class ServerMetrics:
    """Request-level counters for the service: one row per endpoint."""

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self._started = clock()
        self._lock = Lock()
        self._requests: dict[str, dict[str, Any]] = {}

    def _row(self, endpoint: str) -> dict[str, Any]:
        row = self._requests.get(endpoint)
        if row is None:
            row = self._requests[endpoint] = {
                "count": 0,
                "errors": 0,
                "cache_hits": 0,
                "cache_misses": 0,
                "latency": LatencyHistogram(),
            }
        return row

    def record(
        self,
        endpoint: str,
        seconds: float | None,
        error: bool = False,
        cache: str | None = None,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        """Count one request; ``seconds=None`` skips the latency histogram.

        Error paths pass ``None`` — recording a placeholder duration
        would drag the percentiles toward zero and make the latency
        metrics lie about the successful traffic they describe.
        ``cache`` counts a single lookup; the ``cache_hits``/
        ``cache_misses`` tallies serve composite requests (``/batch``)
        whose one request performs many lookups.
        """
        if cache == "hit":
            cache_hits += 1
        elif cache == "miss":
            cache_misses += 1
        with self._lock:
            row = self._row(endpoint)
            row["count"] += 1
            if error:
                row["errors"] += 1
            row["cache_hits"] += cache_hits
            row["cache_misses"] += cache_misses
        if seconds is not None:
            row["latency"].observe(seconds)

    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> dict[str, Any]:
        # Copy every scalar counter while still holding the lock. The
        # old code released it after grabbing the row dicts and read the
        # values afterwards, so a concurrent record() could yield a torn
        # row (count incremented, cache_hits not yet) — visible as
        # cache_hits + cache_misses briefly exceeding/trailing count.
        with self._lock:
            rows = {
                endpoint: (
                    row["count"],
                    row["errors"],
                    row["cache_hits"],
                    row["cache_misses"],
                    row["latency"],
                )
                for endpoint, row in self._requests.items()
            }
        return {
            "uptime_seconds": self.uptime_seconds(),
            "endpoints": {
                endpoint: {
                    "count": count,
                    "errors": errors,
                    "cache_hits": cache_hits,
                    "cache_misses": cache_misses,
                    "latency": latency.snapshot(),
                }
                for endpoint, (
                    count,
                    errors,
                    cache_hits,
                    cache_misses,
                    latency,
                ) in rows.items()
            },
        }
