"""Named serving configurations and the warm session pool behind them.

A :class:`ServeConfig` is everything needed to build one
:class:`~repro.api.Session` — dataset, retrieval scorer, index backend,
clusterer, algorithm, and config knobs — under a stable *name* that
requests select with ``?config=<name>``. Specs parse from the compact
CLI form::

    name:key=value,key=value,...
    # e.g.  wiki:dataset=wikipedia,algorithm=iskr,k=3,backend=sharded,shards=8

The :class:`SessionPool` owns one lazily-built session per configuration
(first request pays construction; everyone after shares the warm index,
retrieval cache, and candidate cache), installs a
:class:`~repro.serve.metrics.ServerMetricsMiddleware` on each session's
pipeline, and — for mutable backends — subscribes to
:class:`~repro.index.dynamic.DynamicIndex` mutation listeners so every
ingestion immediately:

1. refreshes the session (retrieval cache, candidate cache, scorer
   statistics snapshot), and
2. fires the pool's ``on_invalidate`` callback, which the service uses
   to drop that configuration's cached responses.

Sessions whose backend declares ``concurrent_reads=False`` (the dynamic
index) additionally get a per-session execution lock, which
:meth:`PooledSession.locked` exposes to the service.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from threading import Lock, RLock
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.api.session import Session
from repro.data.documents import Document
from repro.errors import (
    ConfigError,
    ServeError,
    TenantAccessError,
    UnknownConfigError,
)
from repro.pipeline.middleware import TracingMiddleware
from repro.serve.metrics import ServerMetricsMiddleware

if TYPE_CHECKING:
    from repro.store import DocumentStore
    from repro.tenancy import QuotaManager, TenantSpec

#: Separator between tenant and config in pool-entry keys; tenant names
#: cannot contain ``:`` (enforced by TenantSpec), so the split is safe.
TENANT_KEY_SEP = "::"

#: Spec keys accepted by :meth:`ServeConfig.parse`, with their aliases.
_SPEC_KEYS = {
    "dataset": "dataset",
    "algorithm": "algorithm",
    "clusterer": "clusterer",
    "retrieval": "retrieval",
    "scoring": "retrieval",
    "backend": "backend",
    "shards": "shards",
    "k": "n_clusters",
    "n_clusters": "n_clusters",
    "top": "top_k_results",
    "top_k_results": "top_k_results",
    "semantics": "semantics",
    "seed": "seed",
    "store": "store",
}

#: Spec fields that must parse as integers (pool builds are lazy, so a
#: typo here would otherwise only surface as a 400 on the first request).
_INT_FIELDS = frozenset({"shards", "n_clusters", "top_k_results", "seed"})


@dataclass
class ServeConfig:
    """One named serving configuration (see module docstring)."""

    name: str
    dataset: str = "wikipedia"
    algorithm: str = "iskr"
    clusterer: str | None = None
    retrieval: str = "tfidf"
    backend: str = "memory"
    shards: int | None = None
    n_clusters: int = 3
    top_k_results: int | None = 30
    semantics: str | None = None
    seed: int = 0
    store: str | None = None
    config_kwargs: Mapping[str, Any] = field(default_factory=dict)
    dataset_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ConfigError("serve configurations need a non-empty name")
        self.name = str(self.name).strip()
        # Registry names are case-insensitive everywhere else; normalize
        # here so guards (and build_session kwargs) agree with them.
        for field_name in (
            "dataset", "algorithm", "clusterer", "retrieval", "backend",
            "semantics",
        ):
            value = getattr(self, field_name)
            if isinstance(value, str):
                setattr(self, field_name, value.strip().lower())
        if self.shards is not None and self.backend != "sharded":
            raise ConfigError(
                f"config {self.name!r} sets shards={self.shards} but "
                f"backend={self.backend!r}; shards only applies to "
                f"backend=sharded"
            )
        if self.store is not None:
            # A store path implies the durable backend; "memory" is the
            # field default, so only an explicit conflicting choice errors.
            if self.backend == "memory":
                self.backend = "sqlite"
            elif self.backend != "sqlite":
                raise ConfigError(
                    f"config {self.name!r} sets store={self.store!r} but "
                    f"backend={self.backend!r}; a store path requires "
                    f"backend=sqlite"
                )

    @classmethod
    def parse(cls, spec: str) -> "ServeConfig":
        """Build from the CLI spec form ``name[:key=value,...]``."""
        spec = spec.strip()
        if not spec:
            raise ConfigError("empty serve config spec")
        name, _, rest = spec.partition(":")
        if "=" in name:
            # A forgotten "name:" prefix would otherwise turn the whole
            # key=value spec into a config *name* with default settings.
            raise ConfigError(
                f"serve config spec {spec!r} has no name; "
                f"expected name:key=value,..."
            )
        kwargs: dict[str, Any] = {}
        for pair in filter(None, (p.strip() for p in rest.split(","))):
            key, sep, raw = pair.partition("=")
            if not sep:
                raise ConfigError(
                    f"bad serve config entry {pair!r} in {spec!r}; "
                    f"expected key=value"
                )
            key = key.strip().lower()
            if key not in _SPEC_KEYS:
                raise ConfigError(
                    f"unknown serve config key {key!r} in {spec!r}; "
                    f"known keys: {', '.join(sorted(set(_SPEC_KEYS)))}"
                )
            field_name = _SPEC_KEYS[key]
            value: Any = raw.strip()
            if field_name in _INT_FIELDS:
                try:
                    value = int(value)
                except ValueError:
                    raise ConfigError(
                        f"serve config key {key!r} needs an integer, "
                        f"got {value!r} in {spec!r}"
                    ) from None
            kwargs[field_name] = value
        if kwargs.get("top_k_results") == 0:
            kwargs["top_k_results"] = None  # 0 = expand over all results
        return cls(name=name, **kwargs)

    def build_session(
        self,
        middleware: Iterable[Any] = (),
        retrieval_cache_size: int | None = None,
        candidate_cache_size: int | None = None,
        store: "DocumentStore | None" = None,
    ) -> Session:
        """Construct the session (build-time validation applies).

        ``store`` — when the config is store-backed — supplies an
        already-open :class:`DocumentStore` handle so several configs
        (or tenant views) sharing one path share one connection; without
        it the store is opened here and owned by the session's backend.
        """
        builder = (
            Session.builder()
            .retrieval(self.retrieval)
            .algorithm(self.algorithm)
            .seed(self.seed)
        )
        if self.store is not None:
            from repro.store import DocumentStore

            if store is None:
                store = DocumentStore(self.store)
            if len(store):
                # Restart path: the store file is the durable truth —
                # the dataset spec only seeds an *empty* store.
                builder.corpus(store.corpus())
            else:
                builder.dataset(self.dataset, **dict(self.dataset_kwargs))
            builder.backend("sqlite", store=store)
        else:
            builder.dataset(self.dataset, **dict(self.dataset_kwargs))
            backend_kwargs = (
                {"shards": self.shards}
                if self.backend == "sharded" and self.shards is not None
                else {}
            )
            builder.backend(self.backend, **backend_kwargs)
        if self.clusterer is not None:
            builder.clusterer(self.clusterer)
        config: dict[str, Any] = {
            "n_clusters": self.n_clusters,
            "top_k_results": self.top_k_results,
        }
        if self.semantics is not None:
            config["semantics"] = self.semantics
        config.update(self.config_kwargs)
        builder.config(**config)
        builder.cache_capacity(
            retrieval=retrieval_cache_size, candidates=candidate_cache_size
        )
        if middleware:
            builder.middleware(*middleware)
        return builder.build()

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "clusterer": self.clusterer,
            "retrieval": self.retrieval,
            "backend": self.backend,
            "shards": self.shards,
            "n_clusters": self.n_clusters,
            "top_k_results": self.top_k_results,
            "semantics": self.semantics,
            "seed": self.seed,
            "store": self.store,
        }


class PooledSession:
    """A built session plus its serving plumbing (metrics, locking).

    ``tenant`` is the owning tenant's name for dedicated per-tenant
    entries (private store path or per-tenant dynamic index) and
    ``None`` for entries shared by every caller of the config.
    """

    def __init__(
        self,
        config: ServeConfig,
        session: Session,
        tenant: str | None = None,
    ) -> None:
        self.config = config
        self.session = session
        self.tenant = tenant
        self.stage_metrics = _find_metrics_middleware(session)
        caps = session.engine.index.capabilities()
        self._exclusive = not caps.concurrent_reads
        self._lock = RLock()
        # Counter mutated from ingesting threads, read by describe();
        # a bare `+= 1` would drop increments under concurrent ingests.
        self._meta_lock = Lock()
        self._invalidations = 0

    @property
    def key(self) -> str:
        """Pool-entry key: ``config`` or ``tenant::config``."""
        if self.tenant is None:
            return self.config.name
        return f"{self.tenant}{TENANT_KEY_SEP}{self.config.name}"

    @property
    def invalidations(self) -> int:
        with self._meta_lock:
            return self._invalidations

    def record_invalidation(self) -> None:
        with self._meta_lock:
            self._invalidations += 1

    @property
    def index(self):
        return self.session.engine.index

    def generation(self) -> int:
        """The index's change counter (0 for immutable backends)."""
        return int(getattr(self.index, "generation", 0))

    @contextlib.contextmanager
    def locked(self) -> Iterator[None]:
        """Serialize execution for backends without concurrent reads."""
        if self._exclusive:
            with self._lock:
                yield
        else:
            yield


def _find_metrics_middleware(session: Session) -> ServerMetricsMiddleware:
    for mw in session.execution_pipeline.middleware:
        if isinstance(mw, ServerMetricsMiddleware):
            return mw
    raise ServeError(
        "pooled sessions must carry a ServerMetricsMiddleware; "
        "build them through SessionPool"
    )


class SessionPool:
    """Lazily builds and shares one warm session per named configuration.

    Parameters
    ----------
    configs:
        The named configurations to serve.
    on_invalidate:
        ``callback(config_name)`` fired after a mutable backend ingests
        documents (and the session has been refreshed) — the service
        hooks its response cache here.
    retrieval_cache_size / candidate_cache_size:
        Per-session cache capacities (None = session defaults).
    """

    def __init__(
        self,
        configs: Iterable[ServeConfig],
        on_invalidate: Callable[[str], None] | None = None,
        retrieval_cache_size: int | None = None,
        candidate_cache_size: int | None = None,
    ) -> None:
        self._configs: dict[str, ServeConfig] = {}
        for config in configs:
            if config.name in self._configs:
                raise ConfigError(
                    f"duplicate serve config name {config.name!r}"
                )
            self._configs[config.name] = config
        if not self._configs:
            raise ConfigError("a session pool needs at least one config")
        self._on_invalidate = on_invalidate
        self._retrieval_cache_size = retrieval_cache_size
        self._candidate_cache_size = candidate_cache_size
        # Keyed by entry key: "config" or "tenant::config" (dedicated
        # per-tenant views). Build locks are created lazily for tenant
        # keys, under _lock.
        self._entries: dict[str, PooledSession] = {}
        self._build_locks = {name: Lock() for name in self._configs}
        self._lock = Lock()
        # Shared DocumentStore handles, keyed by resolved path: entries
        # that name the same store file share one connection (two
        # handles on one file would desync their in-memory mirrors and
        # adopted corpora). close() closes each exactly once.
        self._stores: dict[str, "DocumentStore"] = {}
        self._stores_lock = Lock()

    # -- lookup --------------------------------------------------------------

    @property
    def invalidation_hook(self) -> Callable[[str], None] | None:
        return self._on_invalidate

    @invalidation_hook.setter
    def invalidation_hook(self, callback: Callable[[str], None] | None) -> None:
        self._on_invalidate = callback

    def names(self) -> tuple[str, ...]:
        return tuple(self._configs)

    def __contains__(self, name: object) -> bool:
        return name in self._configs

    @staticmethod
    def _dedicated(config: ServeConfig, tenant: "TenantSpec") -> bool:
        """Does ``tenant`` get its own session for ``config``?

        Yes when the tenant overrides the store path (private durable
        namespace) or the backend is the in-process mutable one
        (``dynamic`` — per-tenant sessions make each tenant's ingest
        invisible to the others). Store-backed configs without an
        override and immutable backends share the base entry: one
        backend per store handle keeps the adopted corpus consistent,
        and response-cache keys stay tenant-scoped regardless.
        """
        if tenant.stores.get(config.name) is not None:
            return True
        return config.backend == "dynamic"

    def get(
        self, name: str, tenant: "TenantSpec | None" = None
    ) -> PooledSession:
        """The pooled session for ``name``, building it on first use.

        With a ``tenant``, the allow-list is enforced and — when the
        tenant warrants a dedicated view (see :meth:`_dedicated`) — a
        per-tenant entry keyed ``tenant::name`` is built and shared by
        that tenant's requests only.
        """
        if name not in self._configs:
            raise UnknownConfigError(
                f"unknown serve config {name!r}; "
                f"configured: {', '.join(self._configs)}"
            )
        if tenant is not None:
            if not tenant.allows(name):
                raise TenantAccessError(
                    f"tenant {tenant.name!r} may not use config {name!r}; "
                    f"allowed: {', '.join(tenant.configs)}"
                )
            if not self._dedicated(self._configs[name], tenant):
                tenant = None
        key = (
            name if tenant is None
            else f"{tenant.name}{TENANT_KEY_SEP}{name}"
        )
        with self._lock:
            entry = self._entries.get(key)
            build_lock = self._build_locks.get(key)
            if build_lock is None:
                build_lock = self._build_locks[key] = Lock()
        if entry is not None:
            return entry
        # Per-entry build lock: concurrent first requests for one entry
        # build once; different entries build in parallel. Ordering is
        # one-way — a build lock is always taken before _lock, never the
        # reverse — so the nesting cannot cycle.
        with build_lock:
            with self._lock:
                entry = self._entries.get(key)
            if entry is not None:
                return entry
            entry = self._build(self._configs[name], tenant)
            with self._lock:
                self._entries[key] = entry
            return entry

    def _store_handle(self, path: str) -> "DocumentStore":
        """Open (or reuse) the shared store connection for ``path``."""
        from repro.store import DocumentStore

        key = str(Path(path).expanduser().resolve())
        with self._stores_lock:
            store = self._stores.get(key)
            if store is None:
                store = self._stores[key] = DocumentStore(path)
        return store

    def _build(
        self, config: ServeConfig, tenant: "TenantSpec | None" = None
    ) -> PooledSession:
        effective = config
        if tenant is not None:
            override = tenant.stores.get(config.name)
            if override is not None:
                # replace() re-runs validation, so e.g. a store override
                # on a dynamic-backend config fails loudly here.
                effective = replace(config, store=str(override))
        store = (
            self._store_handle(effective.store)
            if effective.store is not None
            else None
        )
        # TracingMiddleware contributes per-stage spans to whatever
        # request trace is ambient when the pipeline runs; outside a
        # traced request it costs one contextvar read per stage.
        session = effective.build_session(
            middleware=(ServerMetricsMiddleware(), TracingMiddleware()),
            retrieval_cache_size=self._retrieval_cache_size,
            candidate_cache_size=self._candidate_cache_size,
            store=store,
        )
        entry = PooledSession(
            effective, session,
            tenant=None if tenant is None else tenant.name,
        )
        subscribe = getattr(entry.index, "subscribe", None)
        if callable(subscribe):
            # The invalidation contract: ingestion -> session refresh
            # (retrieval/candidate caches + scorer snapshot) -> service
            # callback (response-cache invalidation). Runs on the
            # ingesting thread, after the index is consistent.
            subscribe(lambda _index, _entry=entry: self._invalidate(_entry))
        return entry

    def _invalidate(self, entry: PooledSession) -> None:
        entry.session.refresh()
        entry.record_invalidation()
        if self._on_invalidate is not None:
            # The entry key ("config" or "tenant::config") tells the
            # service which cache scope to drop: a dedicated tenant
            # entry invalidates only that tenant's responses.
            self._on_invalidate(entry.key)

    # -- ingestion -----------------------------------------------------------

    def ingest(
        self,
        name: str,
        documents: Iterable[Document],
        tenant: "TenantSpec | None" = None,
        quota: "QuotaManager | None" = None,
    ) -> int:
        """Append documents to ``name``'s index; returns how many landed.

        Only configurations on a mutable backend (``backend=dynamic``
        or ``backend=sqlite``) accept ingestion; anything else raises
        :class:`ServeError`. A sqlite backend writes through to its
        store, so the documents survive a restart. Invalidation
        listeners fire once, after the whole batch.

        With a ``tenant`` and a ``quota``, the batch-size cap applies
        up front and the document quota is enforced transactionally:
        store-backed entries check it under the store's write lock
        before the transaction begins (a rejected batch leaves
        generation and document count untouched), dynamic entries check
        under the session's exclusive lock.
        """
        entry = self.get(name, tenant)
        add_all = getattr(entry.index, "add_all", None)
        if not callable(add_all) or not entry.index.capabilities().mutable:
            raise ServeError(
                f"config {name!r} uses immutable backend "
                f"{entry.index.capabilities().name!r}; ingestion needs a "
                f"mutable backend (backend=dynamic or backend=sqlite)"
            )
        docs = list(documents)
        guard = None
        if tenant is not None and quota is not None:
            quota.check_batch(tenant, len(docs))
            if getattr(entry.index, "store", None) is not None:
                guard = quota.store_guard(tenant)
        with entry.locked():
            if guard is not None:
                return len(add_all(docs, guard=guard))
            if tenant is not None and quota is not None:
                # Dynamic entries are exclusive (locked() serializes),
                # so the count cannot move between check and apply.
                quota.check_index_growth(tenant, entry.index, docs)
            return len(add_all(docs))

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Release every built session's backing resources.

        Store-backed indexes (``backend=sqlite``) hold an open database
        connection; closing releases it so snapshot files can be removed
        and WAL segments checkpointed. Built entries are dropped — a
        subsequent :meth:`get` would rebuild from scratch — so call this
        only at shutdown, after the last request has drained
        (:meth:`ExpansionService.close` sequences that). Idempotent.
        """
        with self._lock:
            entries, self._entries = dict(self._entries), {}
        with self._stores_lock:
            stores, self._stores = dict(self._stores), {}
        # Pool-opened store handles close exactly once, however many
        # entries (base + tenant views) share them. Entries whose index
        # wraps a store the pool did NOT open (externally built) close
        # through the same dedup set; storeless indexes close directly.
        closed: set[int] = set()
        for store in stores.values():
            if id(store) not in closed:
                closed.add(id(store))
                store.close()
        for entry in entries.values():
            store = getattr(entry.index, "store", None)
            if store is not None:
                if id(store) not in closed:
                    closed.add(id(store))
                    store.close()
                continue
            closer = getattr(entry.index, "close", None)
            if callable(closer):
                closer()

    # -- introspection -------------------------------------------------------

    def built_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def describe(self) -> dict[str, Any]:
        """Spec + live state per configuration (JSON-ready).

        Each config reports the tenants holding a dedicated built view
        of it under ``"tenants"`` (tenants sharing the base entry appear
        in the service's per-tenant request metrics instead — the pool
        has no per-request knowledge of them).
        """
        with self._lock:
            entries = dict(self._entries)
        out: dict[str, Any] = {}
        for name, config in self._configs.items():
            info = config.describe()
            entry = entries.get(name)
            info["built"] = entry is not None
            if entry is not None:
                info["generation"] = entry.generation()
                info["invalidations"] = entry.invalidations
                info["session"] = entry.session.describe()
            tenants: dict[str, Any] = {}
            for tentry in entries.values():
                if tentry.tenant is None or tentry.config.name != name:
                    continue
                tenants[tentry.tenant] = {
                    "built": True,
                    "generation": tentry.generation(),
                    "invalidations": tentry.invalidations,
                    "store": tentry.config.store,
                }
            info["tenants"] = tenants
            out[name] = info
        return out

    def stage_metrics(self) -> dict[str, Any]:
        """Per-config, per-stage latency histograms (built configs only)."""
        with self._lock:
            entries = dict(self._entries)
        return {
            name: entry.stage_metrics.snapshot()
            for name, entry in entries.items()
        }

    def session_cache_info(self) -> dict[str, Any]:
        with self._lock:
            entries = dict(self._entries)
        return {
            name: entry.session.cache_info() for name, entry in entries.items()
        }
