"""repro.serve — the long-running expansion service layer.

Turns the one-shot :class:`~repro.api.Session` world into a serving
system: a pool of warm sessions (one per named configuration), a
thread-safe LRU+TTL response cache with ingestion-hooked invalidation,
live request/stage metrics, and a stdlib-only JSON-over-HTTP front
(``/expand``, ``/search``, ``/batch``, ``/configs``, ``/healthz``,
``/metrics``). See the "Serving" section of API.md.

Quick embedding::

    from repro.serve import ServeConfig, create_server

    server = create_server(
        [ServeConfig(name="wiki", dataset="wikipedia", algorithm="iskr")],
        port=0,                      # ephemeral port for embedding
        cache_size=512, cache_ttl=300.0,
    ).start()
    ...                              # requests against server.url
    server.stop()

Or from a shell: ``repro serve --configs wiki:dataset=wikipedia``.

For multi-process replicated serving — consistent-hash routing, snapshot
hydration, admission control — see :mod:`repro.serve.cluster`
(``repro cluster serve --replicas N``).
"""

from repro.serve.app import (
    DEFAULT_WORKERS,
    ExpansionServer,
    ExpansionService,
    create_server,
)
from repro.serve.cache import LRUTTLCache
from repro.serve.metrics import (
    LatencyHistogram,
    ServerMetrics,
    ServerMetricsMiddleware,
)
from repro.serve.pool import PooledSession, ServeConfig, SessionPool

__all__ = [
    "DEFAULT_WORKERS",
    "ExpansionServer",
    "ExpansionService",
    "LRUTTLCache",
    "LatencyHistogram",
    "PooledSession",
    "ServeConfig",
    "ServerMetrics",
    "ServerMetricsMiddleware",
    "SessionPool",
    "create_server",
]
