"""Routed dispatch and pagination/cursoring for the serving tier.

PRs 4–5 grew :class:`~repro.serve.app.ExpansionService` a flat
``_ROUTES`` table; the cluster tier needs more — the coordinator has its
own endpoints, replicas wrap the service, and both must paginate large
result payloads. This module is the shared plumbing:

* :class:`Router` — a small method-aware dispatch table producing the
  same 404/405 payload shapes as the flat handler;
* **cursors** — opaque, URL-safe continuation tokens.
  :func:`encode_cursor` packs the canonical request parameters plus the
  next offset into base64url JSON; :func:`decode_cursor` rejects
  anything malformed with a 400-mapped :class:`ServeError`. Cursors are
  self-contained on purpose: the coordinator decodes them to recover the
  routing key, so a continuation request routes to the *same replica*
  that served page one (warm caches make later pages nearly free);
* :class:`RoutedService` — wraps an :class:`ExpansionService` with
  ``limit``/``cursor`` pagination on ``/search`` and ``/batch``.
  Requests without either parameter behave exactly as before, so every
  existing client keeps working.

Pagination contract (see API.md: Cluster serving): a paginated response
carries a ``page`` object — ``{"offset", "limit", "returned", "total",
"next_cursor"}`` — beside the sliced payload; ``next_cursor`` is
``null`` on the last page. Cursors are positional snapshots, not
transactional ones: a mutation between pages may shift results, which
the ``generation`` echoed in the cursor lets clients detect.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ServeError

#: Hard cap on ``limit`` — a page is a page, not a bulk export.
MAX_PAGE_LIMIT = 500


def scalar(params: Mapping[str, Any], key: str, default: Any = None) -> Any:
    """``params[key]`` with ``parse_qs`` list unwrapping (first element)."""
    value = params.get(key, default)
    if isinstance(value, list):
        value = value[0] if value else default
    return value


# -- cursors -----------------------------------------------------------------


def encode_cursor(state: Mapping[str, Any]) -> str:
    """Pack ``state`` into an opaque URL-safe continuation token."""
    raw = json.dumps(dict(state), sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii").rstrip("=")


def decode_cursor(token: str, endpoint: str) -> dict[str, Any]:
    """Unpack a cursor minted by :func:`encode_cursor` for ``endpoint``.

    Every malformation — bad base64, bad JSON, wrong endpoint, missing
    fields — raises :class:`ServeError`, which the handlers map to 400.
    """
    if not isinstance(token, str) or not token:
        raise ServeError("cursor must be a non-empty string")
    try:
        padded = token + "=" * (-len(token) % 4)
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        state = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError):
        raise ServeError("invalid cursor (not a continuation token)") from None
    if not isinstance(state, dict) or state.get("endpoint") != endpoint:
        raise ServeError(f"cursor is not a {endpoint} continuation token")
    offset, limit = state.get("offset"), state.get("limit")
    if not isinstance(offset, int) or offset < 0 or not isinstance(limit, int) or limit < 1:
        raise ServeError("invalid cursor (bad offset/limit)")
    if not isinstance(state.get("params"), dict):
        raise ServeError("invalid cursor (missing request parameters)")
    return state


@dataclass(frozen=True)
class PageRequest:
    """One resolved pagination request: what to run and what to slice."""

    params: dict[str, Any]  # canonical request parameters to execute
    offset: int
    limit: int | None  # None = pagination not requested (legacy shape)

    @property
    def paginated(self) -> bool:
        return self.limit is not None


def resolve_page(
    params: Mapping[str, Any], endpoint: str, param_keys: tuple[str, ...]
) -> PageRequest:
    """Resolve ``limit``/``cursor`` into a :class:`PageRequest`.

    A ``cursor`` wins over everything: the canonical parameters stored
    inside it replace the request's own, so a bare ``?cursor=...`` is a
    complete continuation request. Without a cursor, ``limit`` starts
    pagination at offset 0; without either, the request is legacy-shaped.
    """
    token = scalar(params, "cursor")
    if token is not None:
        state = decode_cursor(str(token), endpoint)
        return PageRequest(
            params=dict(state["params"]),
            offset=int(state["offset"]),
            limit=int(state["limit"]),
        )
    raw_limit = scalar(params, "limit")
    if raw_limit in (None, ""):
        canonical = {k: scalar(params, k) for k in param_keys if scalar(params, k) is not None}
        return PageRequest(params=canonical, offset=0, limit=None)
    try:
        limit = int(raw_limit)
    except (TypeError, ValueError):
        raise ServeError(f"limit must be an integer, got {raw_limit!r}") from None
    if limit < 1:
        raise ServeError(f"limit must be >= 1, got {limit}")
    limit = min(limit, MAX_PAGE_LIMIT)
    canonical = {k: scalar(params, k) for k in param_keys if scalar(params, k) is not None}
    return PageRequest(params=canonical, offset=0, limit=limit)


def apply_page(
    payload: dict[str, Any],
    items_key: str,
    page: PageRequest,
    endpoint: str,
    generation: Any = None,
) -> dict[str, Any]:
    """Slice ``payload[items_key]`` per ``page`` and attach the page object.

    ``payload`` is mutated and returned (handlers own a fresh dict by
    the time they get here — cached inner payloads are already copied).
    """
    items = payload.get(items_key) or []
    total = len(items)
    window = items[page.offset : page.offset + (page.limit or 0)]
    next_cursor = None
    if page.offset + (page.limit or 0) < total:
        state: dict[str, Any] = {
            "endpoint": endpoint,
            "params": page.params,
            "offset": page.offset + (page.limit or 0),
            "limit": page.limit,
        }
        if generation is not None:
            state["generation"] = generation
        next_cursor = encode_cursor(state)
    payload[items_key] = window
    payload["page"] = {
        "offset": page.offset,
        "limit": page.limit,
        "returned": len(window),
        "total": total,
        "next_cursor": next_cursor,
    }
    return payload


# -- router ------------------------------------------------------------------

Handler = Callable[[str, Mapping[str, Any]], tuple[int, Any]]


@dataclass(frozen=True)
class Route:
    path: str
    methods: tuple[str, ...]
    handler: Handler


class Router:
    """A method-aware dispatch table with the flat handler's error shapes."""

    def __init__(self) -> None:
        self._routes: dict[str, Route] = {}

    def add(self, path: str, methods: tuple[str, ...], handler: Handler) -> None:
        if path in self._routes:
            raise ServeError(f"duplicate route {path!r}")
        self._routes[path] = Route(path, tuple(methods), handler)

    def paths(self) -> list[str]:
        return sorted(self._routes)

    def match(self, path: str) -> Route | None:
        return self._routes.get(path.rstrip("/") or path)

    def dispatch(
        self, method: str, path: str, params: Mapping[str, Any]
    ) -> tuple[int, Any]:
        """Route one request; unknown paths 404, wrong methods 405."""
        route = self.match(path)
        if route is None:
            return 404, {
                "error": "not_found",
                "message": f"unknown path {path!r}",
                "paths": self.paths(),
            }
        if method not in route.methods:
            return 405, {
                "error": "method_not_allowed",
                "message": f"{route.path} accepts {', '.join(route.methods)}",
            }
        return route.handler(method, params)


# -- the paginating service wrapper ------------------------------------------

#: Canonical parameter keys preserved inside each endpoint's cursors.
SEARCH_CURSOR_KEYS = ("config", "query", "top_k", "semantics")
BATCH_CURSOR_KEYS = ("config", "algorithm", "workers")


class RoutedService:
    """An :class:`ExpansionService` face with pagination on heavy routes.

    ``handle(method, path, params)`` is a drop-in replacement for the
    wrapped service's — replicas serve it over the cluster transport,
    and it works equally well single-process. Only ``/search`` and
    ``/batch`` are intercepted (and only when ``limit`` or ``cursor`` is
    present); every other path delegates untouched.
    """

    def __init__(self, service: Any) -> None:
        self._service = service
        self._router = Router()
        self._router.add("/search", ("GET", "POST"), self._search)
        self._router.add("/batch", ("POST",), self._batch)

    @property
    def service(self) -> Any:
        return self._service

    def __getattr__(self, name: str) -> Any:
        # Everything that is not routing (pool, cache, metrics, close,
        # ...) is the wrapped service's business.
        return getattr(self._service, name)

    def handle(
        self, method: str, path: str, params: Mapping[str, Any]
    ) -> tuple[int, Any]:
        route = self._router.match(path)
        if route is None:
            return self._service.handle(method, path, params)
        if method not in route.methods:
            return 405, {
                "error": "method_not_allowed",
                "message": f"{route.path} accepts {', '.join(route.methods)}",
            }
        try:
            return route.handler(method, params)
        except ServeError as exc:
            # Same shape the flat handler produces for bad parameters;
            # counted so /metrics stays honest about rejected requests.
            self._service.metrics.record(route.path.strip("/"), None, error=True)
            return 400, {"error": "serve_error", "message": str(exc)}

    # -- paginated routes ----------------------------------------------------

    def _search(self, method: str, params: Mapping[str, Any]) -> tuple[int, Any]:
        page = resolve_page(params, "search", SEARCH_CURSOR_KEYS)
        if not page.paginated:
            return self._service.handle(method, "/search", params)
        status, payload = self._service.handle(method, "/search", page.params)
        if status != 200:
            return status, payload
        generation = payload.get("generation")
        return 200, apply_page(dict(payload), "results", page, "search", generation)

    def _batch(self, method: str, params: Mapping[str, Any]) -> tuple[int, Any]:
        page = resolve_page(params, "batch", BATCH_CURSOR_KEYS)
        if not page.paginated:
            return self._service.handle(method, "/batch", params)
        run_params = dict(page.params)
        # The queries list rides inside the cursor so a bare cursor POST
        # is complete; repeated queries are cache hits on re-execution.
        if "queries" not in run_params:
            queries = params.get("queries")
            if not isinstance(queries, (list, tuple)) or not queries:
                raise ServeError("batch needs a non-empty 'queries' list")
            run_params["queries"] = [str(q) for q in queries]
        # Re-freeze the page over the full parameter set so the minted
        # cursor carries the queries list and a bare cursor POST is
        # self-contained.
        page = PageRequest(params=run_params, offset=page.offset, limit=page.limit)
        status, payload = self._service.handle(method, "/batch", run_params)
        if status != 200:
            return status, payload
        payload = dict(payload)
        report = dict(payload["report"])
        paged = apply_page(
            {"items": report.get("items", [])}, "items", page, "batch"
        )
        report["items"] = paged["items"]
        payload["report"] = report
        payload["page"] = paged["page"]
        return 200, payload
