"""Consistent hashing for query-affinity routing.

The coordinator routes every ``/expand`` and ``/search`` request by the
hash of its ``(config, query)`` key, so repeated queries land on the
same replica and that replica's three cache tiers (response LRU, session
retrieval cache, candidate cache) stay warm. A plain ``hash(key) % N``
would reshuffle *every* key when a replica joins or leaves; a consistent
hash ring remaps only the keys that pointed at the changed node, so one
replica crash does not flush the caches of the survivors.

Implementation: each node owns ``vnodes`` virtual points on a 64-bit
ring (the first 8 bytes of ``blake2b(node + ":" + i)``); a key routes to
the first virtual point clockwise of the key's own hash. ``blake2b`` is
keyed by nothing and seeded by nothing, so placement is deterministic
across processes and restarts — a cursor minted before a coordinator
restart still routes to the same replica after it.

:meth:`HashRing.preference` returns *all* distinct nodes in ring order
starting at the primary — the coordinator walks it to fail requests over
to the next live replica when the primary is down.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ClusterError

#: Virtual points per node. 64 keeps the expected per-node load within a
#: few percent of uniform for single-digit node counts while the ring
#: stays small enough to rebuild on every membership change.
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """The first 8 bytes of ``blake2b(data)`` as a big-endian integer."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent hash ring over named nodes (see module docstring)."""

    def __init__(self, nodes: tuple[str, ...] | list[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._points: list[int] = []  # sorted virtual-point hashes
        self._owners: dict[int, str] = {}  # point hash -> node
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if not node:
            raise ClusterError("ring nodes need a non-empty name")
        if node in self._nodes:
            raise ClusterError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self._vnodes):
            point = _hash64(f"{node}:{i}")
            # A 64-bit collision between two nodes' virtual points is
            # ~impossible at this scale; first owner keeps the point.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ClusterError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if self._owners[p] != node]
        self._owners = {p: n for p, n in self._owners.items() if n != node}

    # -- routing -------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first virtual point clockwise of it."""
        if not self._points:
            raise ClusterError("cannot route on an empty ring")
        index = bisect.bisect(self._points, _hash64(key))
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[self._points[index]]

    def preference(self, key: str) -> list[str]:
        """All distinct nodes in ring order starting at ``key``'s owner.

        The failover walk: index 0 is :meth:`node_for`; each subsequent
        entry is the node that would own the key if every earlier entry
        were removed — so routing to the first *live* entry is exactly
        consistent-hash routing over the live membership.
        """
        if not self._points:
            raise ClusterError("cannot route on an empty ring")
        start = bisect.bisect(self._points, _hash64(key))
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owners[point]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(seen) == len(self._nodes):
                    break
        return order

    def describe(self) -> dict:
        """JSON-ready topology: nodes, vnodes, and per-node point counts."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for node in self._owners.values():
            counts[node] += 1
        return {
            "nodes": list(self.nodes),
            "vnodes": self._vnodes,
            "points": {node: counts[node] for node in self.nodes},
        }
