"""The cluster coordinator: spawn, route, shed, supervise.

:class:`ClusterCoordinator` is the front door of a replicated serving
tier. It owns N replica processes (see
:mod:`~repro.serve.cluster.replica`), and for every request decides
*where it runs* and *whether it runs at all*:

**Routing** — ``/expand`` and ``/search`` route by consistent hash of
``(config, query)`` (:mod:`~repro.serve.cluster.hashring`), so repeated
queries — and every page of a cursor walk — land on the replica whose
caches already hold them. Responses are forwarded as raw JSON bytes;
the coordinator never re-parses proxied payloads. ``/batch`` is
scattered: queries are grouped by their routed replica, sub-batches run
in parallel, and the items are merged back in request order.

**Admission control** — each replica has a bounded in-flight budget
(``queue_depth``). A request routed to a saturated replica is shed
immediately with ``429`` + ``Retry-After`` instead of queueing: past
saturation the system degrades by refusing promptly, not by building an
unbounded backlog (the shed path touches no locks a slow request can
hold, so rejection latency stays flat). Shedding never spills to
another replica — spilling would break cache affinity and just move the
queue.

**Supervision** — a background thread watches replica processes. A dead
replica is detected, its requests fail over to the next live node on the
ring walk (degraded-but-available), and it is respawned with a *fresh*
snapshot of the source store — restart-equals-rehydrate, no partial
state to reconcile.

**Aggregation** — ``/healthz`` and ``/metrics`` fan out to live replicas
and merge: cluster status (``ok`` / ``degraded`` / ``down``), summed
per-endpoint request counters, per-replica payloads, and
coordinator-level counters (routed, shed, failovers, restarts, shed
latency percentiles).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.api import schema
from repro.errors import (
    ClusterError,
    ConfigError,
    FeedError,
    QuotaExceededError,
    ServeError,
    TenancyError,
    TenantAccessError,
    UnknownTenantError,
)
from repro.feed import Changefeed, CompactionScheduler, batch_to_payload
from repro.feed.changefeed import resolve_read_args
from repro.obs import (
    DEFAULT_SLOW_THRESHOLD,
    TRACE_PARAM,
    TRACE_PARENT_PARAM,
    JsonLogger,
    SlowLog,
    TraceBuffer,
    Tracer,
    absorb_spans,
    current_span,
    render_prometheus,
    span,
)
from repro.serve.admission import AdmissionController, shed_payload
from repro.serve.app import _TENANT_DATA_ROUTES
from repro.serve.cluster.hashring import DEFAULT_VNODES, HashRing
from repro.serve.cluster.routes import (
    BATCH_CURSOR_KEYS,
    PageRequest,
    Router,
    apply_page,
    resolve_page,
    scalar,
)
from repro.serve.cluster.replica import ReplicaSpec, replica_main
from repro.serve.cluster.transport import DEFAULT_REQUEST_TIMEOUT, ReplicaClient
from repro.serve.metrics import LatencyHistogram
from repro.serve.pool import ServeConfig
from repro.tenancy import (
    QuotaManager,
    RateLimiter,
    TenantRegistry,
    TenantSpec,
    resolve_tenant,
)

#: Default per-replica in-flight bound (admission control).
DEFAULT_QUEUE_DEPTH = 16

#: Default Retry-After seconds advertised on shed (429) responses.
DEFAULT_RETRY_AFTER = 1.0

#: Seconds the supervisor sleeps between liveness sweeps.
SUPERVISOR_INTERVAL = 0.25

#: Seconds a spawning replica gets to hydrate and report ready.
DEFAULT_START_TIMEOUT = 180.0


# -- replica handles ---------------------------------------------------------


class ProcessReplica:
    """A supervised replica process plus its RPC client.

    ``spec_factory(name)`` builds a fresh :class:`ReplicaSpec` — called
    on every (re)start so store-backed configs get a *new* snapshot of
    the source store each time.
    """

    def __init__(
        self,
        name: str,
        spec_factory: Callable[[str], ReplicaSpec],
        start_timeout: float = DEFAULT_START_TIMEOUT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.name = name
        self._spec_factory = spec_factory
        self._start_timeout = start_timeout
        self._request_timeout = request_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._process: Any = None
        self._client: ReplicaClient | None = None
        self._state = "down"  # down | starting | serving
        self.restarts = -1  # first start() brings it to 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn, wait for the hydration-complete ready message, connect."""
        with self._lock:
            if self._state != "down":
                raise ClusterError(f"replica {self.name!r} is already {self._state}")
            self._state = "starting"
        try:
            spec = self._spec_factory(self.name)
            parent, child = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=replica_main,
                args=(spec, child),
                name=f"repro-replica-{self.name}",
                daemon=True,
            )
            process.start()
            child.close()  # the child's end lives in the child now
            if not parent.poll(self._start_timeout):
                process.kill()
                raise ClusterError(
                    f"replica {self.name!r} did not report ready within "
                    f"{self._start_timeout:.0f}s"
                )
            message = parent.recv()
            parent.close()
            if message[0] != "ready":
                process.join(timeout=5)
                raise ClusterError(
                    f"replica {self.name!r} failed to build: {message[1]}"
                )
            _, address, authkey = message
            client = ReplicaClient(address, authkey, timeout=self._request_timeout)
        except ClusterError:
            with self._lock:
                self._state = "down"
            raise
        except Exception as exc:  # noqa: BLE001 — spawn machinery failures
            with self._lock:
                self._state = "down"
            raise ClusterError(
                f"replica {self.name!r} failed to start: {exc}"
            ) from exc
        with self._lock:
            self._process = process
            self._client = client
            self._state = "serving"
            self.restarts += 1

    def stop(self, graceful: bool = True, join_timeout: float = 10.0) -> None:
        """SIGTERM (drain) then SIGKILL; idempotent."""
        with self._lock:
            process, client = self._process, self._client
            self._process, self._client = None, None
            self._state = "down"
        if client is not None:
            client.close()
        if process is None:
            return
        if process.is_alive():
            if graceful:
                process.terminate()  # SIGTERM -> replica drains and exits
                process.join(timeout=join_timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=join_timeout)
        process.close()

    def mark_down(self) -> None:
        """Record an observed death (the supervisor will respawn)."""
        self.stop(graceful=False, join_timeout=1.0)

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if self._state == "serving" and not self._process.is_alive():
                return "dead"  # exited but not yet reaped by the supervisor
            return self._state

    def alive(self) -> bool:
        return self.state == "serving"

    @property
    def pid(self) -> int | None:
        with self._lock:
            if self._process is None:
                return None
            try:
                return self._process.pid
            except ValueError:  # pragma: no cover - closed process object
                return None

    # -- requests ------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        params: Mapping[str, Any],
        timeout: float | None = None,
    ) -> tuple[int, bytes]:
        with self._lock:
            client = self._client
        if client is None:
            raise ClusterError(f"replica {self.name!r} is not serving")
        return client.request(method, path, params, timeout=timeout)


# -- admission control -------------------------------------------------------
# AdmissionController grew up here as the per-replica load-shed gate and
# now lives in repro.serve.admission (the serve tier uses it for per-tenant
# bounds too); it is re-exported above for existing importers.


class CoordinatorMetrics:
    """Coordinator-level counters: routing, shedding, failover, restarts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routed: dict[str, int] = {}
        self._shed = 0
        self._failovers: dict[str, int] = {}
        self._proxy_latency = LatencyHistogram()
        self._shed_latency = LatencyHistogram()

    def record_routed(self, replica: str, seconds: float) -> None:
        with self._lock:
            self._routed[replica] = self._routed.get(replica, 0) + 1
        self._proxy_latency.observe(seconds)

    def record_shed(self, seconds: float) -> None:
        with self._lock:
            self._shed += 1
        self._shed_latency.observe(seconds)

    def record_failover(self, replica: str) -> None:
        with self._lock:
            self._failovers[replica] = self._failovers.get(replica, 0) + 1

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            routed = dict(self._routed)
            shed = self._shed
            failovers = dict(self._failovers)
        return {
            "routed": routed,
            "shed": shed,
            "failovers": failovers,
            "proxy_latency": self._proxy_latency.snapshot(),
            "shed_latency": self._shed_latency.snapshot(),
        }


# -- the coordinator ---------------------------------------------------------


def _unpack_reply(reply: Any) -> tuple[int, Any, dict[str, Any]]:
    """A replica reply → ``(status, body, extras)``.

    Process replicas answer the 3-tuple wire (see
    :mod:`~repro.serve.cluster.transport`); in-process test fakes still
    reply ``(status, body)`` and simply contribute no extras.
    """
    if len(reply) == 3:
        status, body, extras = reply
        return int(status), body, dict(extras or {})
    status, body = reply
    return int(status), body, {}


#: Endpoints proxied verbatim to one replica chosen by the hash ring.
PROXY_ROUTES = {"/expand": ("GET", "POST"), "/search": ("GET", "POST")}

#: Counter fields summed when aggregating replica request metrics.
_SUMMED_FIELDS = ("count", "errors", "cache_hits", "cache_misses")


class ClusterCoordinator:
    """Routes a shared-nothing replica fleet (see module docstring).

    Parameters
    ----------
    configs:
        The serving configurations every replica builds.
    replicas:
        Fleet size (>= 1).
    queue_depth:
        Per-replica in-flight bound; excess requests are shed with 429.
    retry_after:
        Seconds advertised in shed responses' ``Retry-After``.
    replica_factory:
        ``(name, spec_factory) -> handle`` — tests inject in-process
        fakes here; the default builds :class:`ProcessReplica`.
    follow:
        When True, replicas tail the source store's changefeed and
        converge on live ingest incrementally (see
        :mod:`repro.feed`); a background
        :class:`~repro.feed.CompactionScheduler` per source store
        compacts tombstones and truncates the applied changelog prefix.
        Off by default: snapshot-only replicas are immutable between
        restarts, which some deployments (and tests) rely on.
    feed_poll_interval:
        Seconds between replica tailer polls (``follow`` only).
    compaction_interval / changelog_keep:
        Scheduler tick period and the minimum trailing changelog records
        always retained (``follow`` only).
    tenants:
        A :class:`~repro.tenancy.TenantRegistry` (or path to a tenants
        JSON file) switching the cluster to multi-tenant mode: the
        coordinator — the fleet's edge — resolves, authorizes, rate
        limits, and quota-checks every data-plane request exactly once,
        and replicas receive the tenant specs (``enforce_limits=False``)
        for cache scoping and response tagging only.
    rate_limiter:
        Injectable token-bucket (tests pass a fake-clock limiter).
    """

    def __init__(
        self,
        configs: Iterable[ServeConfig | str],
        replicas: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        retry_after: float = DEFAULT_RETRY_AFTER,
        vnodes: int = DEFAULT_VNODES,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        workers: int = 4,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        replica_factory: Callable[[str, Callable[[str], ReplicaSpec]], Any] | None = None,
        follow: bool = False,
        feed_poll_interval: float = 0.25,
        compaction_interval: float = 5.0,
        changelog_keep: int = 64,
        tenants: "TenantRegistry | str | None" = None,
        rate_limiter: RateLimiter | None = None,
        tracing: bool = True,
        trace_capacity: int = 256,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
        log_json: bool = False,
        log_stream: Any = None,
    ) -> None:
        parsed = tuple(
            c if isinstance(c, ServeConfig) else ServeConfig.parse(c)
            for c in configs
        )
        if not parsed:
            raise ConfigError("a cluster needs at least one serve config")
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self._configs = parsed
        self._cache_size = cache_size
        self._cache_ttl = cache_ttl
        self._workers = workers
        self._retry_after = retry_after
        self._request_timeout = request_timeout
        self._admission = AdmissionController(queue_depth)
        self._metrics = CoordinatorMetrics()
        # -- observability ----------------------------------------------
        # The coordinator roots every request's trace; replicas continue
        # it (the RPC layer propagates _trace/_trace_parent) and ship
        # their spans back for stitching, so one routed request is one
        # cross-process tree in /debug/traces.
        self._tracing = bool(tracing)
        self._trace_capacity = int(trace_capacity)
        self._slow_threshold = float(slow_threshold)
        self._tracer = Tracer(
            buffer=TraceBuffer(trace_capacity),
            slow_log=SlowLog(slow_threshold),
            logger=(
                JsonLogger(log_stream)
                if (log_json or log_stream is not None)
                else None
            ),
            enabled=tracing,
            tags={"tier": "coordinator"},
        )
        # -- tenancy (edge enforcement) ---------------------------------
        # The coordinator is the cluster's front door, so tenant limits
        # are enforced HERE, once; replicas get the registry (for cache
        # scoping and tagging) with enforce_limits=False so a request is
        # never double-counted against a tenant's rate budget.
        if isinstance(tenants, (str, os.PathLike)):
            tenants = TenantRegistry(tenants)
        self._tenants = tenants
        self._rate_limiter = (
            rate_limiter if rate_limiter is not None else RateLimiter()
        )
        self._quota = QuotaManager()
        self._tenant_admission = AdmissionController(
            queue_depth=max(1, queue_depth * max(1, replicas))
        )
        self._tenant_lock = threading.Lock()
        self._tenant_requests: dict[str, int] = {}
        self._tenant_sheds: dict[str, int] = {}
        self._started = time.time()
        self._snapshot_dir: tempfile.TemporaryDirectory | None = None
        self._snapshot_seq = 0
        self._snapshot_lock = threading.Lock()
        self._follow = bool(follow)
        self._feed_poll_interval = feed_poll_interval
        self._compaction_interval = compaction_interval
        self._changelog_keep = changelog_keep
        # Long-lived source-store handles (ingest + snapshots), the
        # coordinator-side changefeed readers, and the background
        # compaction schedulers — all lazily built, all torn down in stop().
        self._stores: dict[str, Any] = {}
        self._stores_lock = threading.Lock()
        self._feeds: dict[str, Changefeed] = {}
        self._feeds_lock = threading.Lock()
        self._schedulers: dict[str, CompactionScheduler] = {}
        if replica_factory is None:
            replica_factory = lambda name, factory: ProcessReplica(  # noqa: E731
                name, factory,
                start_timeout=start_timeout,
                request_timeout=request_timeout,
            )
        names = [f"r{i}" for i in range(replicas)]
        self._replicas: dict[str, Any] = {
            name: replica_factory(name, self._make_spec) for name in names
        }
        self._ring = HashRing(names, vnodes=vnodes)
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._restarting: set[str] = set()
        self._restart_lock = threading.Lock()

        self._router = Router()
        self._router.add("/healthz", ("GET",), self._healthz)
        self._router.add("/metrics", ("GET",), self._metrics_route)
        self._router.add("/configs", ("GET",), self._configs_route)
        self._router.add("/cluster", ("GET",), self._cluster_route)
        self._router.add("/batch", ("POST",), self._batch)
        self._router.add("/ingest", ("POST",), self._ingest)
        self._router.add("/changefeed", ("GET",), self._changefeed_route)
        self._router.add("/debug/traces", ("GET",), self._debug_traces)
        self._router.add("/debug/slow", ("GET",), self._debug_slow)

    # -- lifecycle -----------------------------------------------------------

    @property
    def replicas(self) -> Mapping[str, Any]:
        return dict(self._replicas)

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def metrics(self) -> CoordinatorMetrics:
        return self._metrics

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def tenants(self) -> TenantRegistry | None:
        return self._tenants

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def trace_export(self, trace_id: str) -> "list[dict[str, Any]] | None":
        """A finished trace's span records (tests, tooling)."""
        return self._tracer.export(trace_id)

    def start(self) -> "ClusterCoordinator":
        """Hydrate and start every replica, then begin supervising."""
        self._snapshot_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        try:
            for handle in self._replicas.values():
                handle.start()
        except ClusterError:
            self.stop()
            raise
        if self._follow:
            for path in {
                str(c.store) for c in self._configs if c.store is not None
            }:
                scheduler = CompactionScheduler(
                    self._source_store(path),
                    interval=self._compaction_interval,
                    changelog_keep=self._changelog_keep,
                )
                self._schedulers[path] = scheduler
                scheduler.start()
        self._stop.clear()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-cluster-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self) -> None:
        """Stop supervising, drain and stop replicas, drop snapshots."""
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10)
            self._supervisor = None
        for scheduler in self._schedulers.values():
            scheduler.stop()
        self._schedulers.clear()
        for handle in self._replicas.values():
            handle.stop(graceful=True)
        with self._feeds_lock:
            feeds, self._feeds = dict(self._feeds), {}
        for feed in feeds.values():
            feed.close()
        with self._stores_lock:
            stores, self._stores = dict(self._stores), {}
        for store in stores.values():
            store.close()
        if self._snapshot_dir is not None:
            self._snapshot_dir.cleanup()
            self._snapshot_dir = None

    # ExpansionServer-style front compatibility.
    close = stop

    def _source_store(self, path: str) -> Any:
        """The (cached, long-lived) writer handle on a source store.

        One handle per path for the coordinator's lifetime — `/ingest`
        writes through it and `_make_spec` snapshots from it. Callers
        that need current in-memory mirrors (another process may have
        moved the file) refresh explicitly.
        """
        from repro.store import DocumentStore

        path = str(path)
        with self._stores_lock:
            store = self._stores.get(path)
            if store is None:
                store = DocumentStore(path)
                self._stores[path] = store
            return store

    def _make_spec(self, name: str) -> ReplicaSpec:
        """A fresh spec for ``name`` — snapshots store configs *now*.

        Called on every (re)start, so a respawned replica hydrates from
        the source store's latest committed state, not the file its dead
        predecessor was using.
        """
        overrides: dict[str, str] = {}
        feed_sources: dict[str, str] = {}
        for config in self._configs:
            if config.store is None:
                continue
            with self._snapshot_lock:
                self._snapshot_seq += 1
                seq = self._snapshot_seq
            base = (
                Path(self._snapshot_dir.name)
                if self._snapshot_dir is not None
                else Path(tempfile.gettempdir())
            )
            dest = base / f"{name}-{config.name}-{seq}.sqlite"
            source = self._source_store(config.store)
            source.refresh()  # another process may have moved the file
            source.snapshot(dest)
            overrides[config.name] = str(dest)
            if self._follow:
                feed_sources[config.name] = str(config.store)
        # Replicas learn the tenants (cache scoping, response tagging)
        # but not their store overrides: replica stores are coordinator
        # snapshots, and per-tenant private stores are a serve-tier
        # feature — the cluster keeps replicas shared-nothing copies of
        # the *configured* stores only.
        tenant_specs: tuple[dict, ...] = ()
        if self._tenants is not None:
            tenant_specs = tuple(
                {k: v for k, v in spec.to_dict().items() if k != "stores"}
                for spec in self._tenants.specs()
            )
        return ReplicaSpec(
            name=name,
            configs=self._configs,
            store_overrides=overrides,
            cache_size=self._cache_size,
            cache_ttl=self._cache_ttl,
            workers=self._workers,
            feed_sources=feed_sources,
            feed_poll_interval=self._feed_poll_interval,
            tenant_specs=tenant_specs,
            tracing=self._tracing,
            trace_capacity=self._trace_capacity,
            slow_threshold=self._slow_threshold,
        )

    # -- supervision ---------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.wait(SUPERVISOR_INTERVAL):
            for name, handle in self._replicas.items():
                if handle.state != "dead":
                    continue
                with self._restart_lock:
                    if name in self._restarting:
                        continue
                    self._restarting.add(name)
                handle.mark_down()
                threading.Thread(
                    target=self._restart,
                    args=(name,),
                    name=f"repro-cluster-restart-{name}",
                    daemon=True,
                ).start()

    def _restart(self, name: str) -> None:
        try:
            if not self._stop.is_set():
                self._replicas[name].start()
        except ClusterError:
            pass  # still down; the next sweep will not retry a "down"
            # replica automatically — it retries only "dead" ones, so
            # reschedule explicitly below.
        finally:
            with self._restart_lock:
                self._restarting.discard(name)
        if not self._stop.is_set() and not self._replicas[name].alive():
            # Spawn failed (e.g. source store briefly locked): back off
            # one sweep and let a fresh thread try again.
            time.sleep(SUPERVISOR_INTERVAL)
            with self._restart_lock:
                if name in self._restarting or self._stop.is_set():
                    return
                self._restarting.add(name)
            threading.Thread(
                target=self._restart, args=(name,), daemon=True
            ).start()

    # -- routing -------------------------------------------------------------

    @staticmethod
    def routing_key(path: str, params: Mapping[str, Any]) -> str:
        """The cache-affinity key: ``config + query`` (cursor-aware)."""
        token = scalar(params, "cursor")
        if token is not None:
            # Continuation requests must reach the replica that served
            # page one; the cursor carries the canonical parameters.
            from repro.serve.cluster.routes import decode_cursor

            endpoint = path.rstrip("/").lstrip("/") or path
            state = decode_cursor(str(token), endpoint)
            inner = state["params"]
            return f"{inner.get('config', '')}\x00{inner.get('query', '')}"
        return f"{scalar(params, 'config', '')}\x00{scalar(params, 'query', '')}"

    def _live_preference(self, key: str) -> list[Any]:
        return [
            self._replicas[name]
            for name in self._ring.preference(key)
            if self._replicas[name].alive()
        ]

    def _shed(
        self, t0: float, replica: str, tenant: TenantSpec | None = None
    ) -> tuple[int, dict[str, Any]]:
        payload = shed_payload(
            f"replica {replica!r} is at its queue-depth bound "
            f"({self._admission.queue_depth}); retry shortly",
            self._retry_after,
            tenant=None if tenant is None else tenant.name,
            replica=replica,
        )
        self._metrics.record_shed(time.perf_counter() - t0)
        if tenant is not None:
            self._record_tenant_shed(tenant)
        self._tracer.event(
            "shed",
            error=True,
            reason="queue_depth",
            replica=replica,
            tenant=None if tenant is None else tenant.name,
            retry_after=self._retry_after,
        )
        return 429, payload

    # -- tenancy gate --------------------------------------------------------

    def _record_tenant(self, tenant: TenantSpec) -> None:
        with self._tenant_lock:
            self._tenant_requests[tenant.name] = (
                self._tenant_requests.get(tenant.name, 0) + 1
            )

    def _record_tenant_shed(self, tenant: TenantSpec) -> None:
        with self._tenant_lock:
            self._tenant_sheds[tenant.name] = (
                self._tenant_sheds.get(tenant.name, 0) + 1
            )

    def _tenant_forbidden(
        self, tenant: TenantSpec, params: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]] | None:
        """403 when the addressed config is outside the tenant's allow-list."""
        name = scalar(params, "config")
        if name is None and len(self._configs) == 1:
            name = self._configs[0].name
        if name is not None and not tenant.allows(str(name)):
            return 403, {
                "error": "forbidden",
                "message": (
                    f"tenant {tenant.name!r} may not access "
                    f"configuration {name!r}"
                ),
                "tenant": tenant.name,
            }
        return None

    def _admit_tenant(
        self, t0: float, tenant: TenantSpec
    ) -> tuple[int, dict[str, Any]] | None:
        """Edge rate-limit + in-flight gate; mirrors the serve tier's.

        Returns a ready 429 pair to shed, or ``None`` when admitted — in
        which case the caller owns one slot iff ``tenant.max_in_flight``
        is set and must release it.
        """
        ok, retry_after = self._rate_limiter.try_acquire(tenant)
        if not ok:
            self._metrics.record_shed(time.perf_counter() - t0)
            self._record_tenant_shed(tenant)
            self._tracer.event(
                "shed",
                error=True,
                reason="rate_limit",
                tenant=tenant.name,
                retry_after=round(retry_after, 3),
            )
            return 429, shed_payload(
                f"tenant {tenant.name!r} is over its rate limit "
                f"({tenant.qps:g} qps); retry shortly",
                round(retry_after, 3),
                tenant=tenant.name,
            )
        if tenant.max_in_flight is not None and not (
            self._tenant_admission.try_acquire(
                tenant.name, depth=tenant.max_in_flight
            )
        ):
            self._metrics.record_shed(time.perf_counter() - t0)
            self._record_tenant_shed(tenant)
            self._tracer.event(
                "shed",
                error=True,
                reason="in_flight",
                tenant=tenant.name,
                retry_after=self._retry_after,
            )
            return 429, shed_payload(
                f"tenant {tenant.name!r} is at its in-flight bound "
                f"({tenant.max_in_flight}); retry shortly",
                self._retry_after,
                tenant=tenant.name,
            )
        return None

    def _proxy(
        self,
        method: str,
        path: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        t0 = time.perf_counter()
        with span("cluster.route", path=path) as route_span:
            try:
                key = self.routing_key(path, params)
            except Exception as exc:  # bad cursor — reject before routing
                return 400, {"error": "serve_error", "message": str(exc)}
            candidates = self._live_preference(key)
            if route_span is not None:
                route_span.set_attr(
                    "candidates", [handle.name for handle in candidates]
                )
        if not candidates:
            return 503, {
                "error": "unavailable",
                "message": "no live replicas (cluster is restarting or down)",
            }
        cur = current_span()
        rpc_params = params
        if cur is not None:
            # Continue this trace inside the replica process: the RPC
            # carries the trace id + parent, the replica roots its span
            # tree under ours and ships it back for stitching.
            rpc_params = dict(params)
            rpc_params[TRACE_PARAM] = cur.trace_id
        for position, handle in enumerate(candidates):
            if not self._admission.try_acquire(handle.name):
                # Shed at the *routed* replica; spilling sideways would
                # break affinity and merely relocate the queue.
                return self._shed(t0, handle.name, tenant)
            try:
                with span(
                    "cluster.rpc", replica=handle.name, attempt=position
                ) as rpc:
                    if rpc is not None:
                        rpc_params[TRACE_PARENT_PARAM] = rpc.span_id
                    try:
                        status, body, extras = _unpack_reply(
                            handle.request(
                                method, path, rpc_params,
                                timeout=self._request_timeout,
                            )
                        )
                    except ClusterError as exc:
                        # A crashed/unreachable replica leaves an
                        # error-tagged rpc span in the trace; the walk
                        # fails over to the next candidate.
                        if rpc is not None:
                            rpc.mark_error(exc)
                        self._metrics.record_failover(handle.name)
                        continue  # next live candidate on the ring walk
                    absorb_spans(extras.get("spans"))
            finally:
                self._admission.release(handle.name)
            self._metrics.record_routed(handle.name, time.perf_counter() - t0)
            return status, body
        return 503, {
            "error": "unavailable",
            "message": "every live replica failed the request",
        }

    # -- request entry -------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: Mapping[str, Any],
        trace_id: str | None = None,
        parent_id: str | None = None,
    ) -> tuple[int, Any]:
        """Dispatch one request under a root span; never raises.

        Trace context arrives as the ``trace_id``/``parent_id`` keywords
        (the HTTP front passes the ``X-Repro-Trace`` id it chose) or in
        the reserved ``_trace``/``_trace_parent`` params (direct
        callers), stripped before routing. The root span plus the
        routing/RPC child spans — and the replica's own spans, shipped
        back over the RPC — land in the coordinator's trace buffer as
        one stitched cross-process tree; error payloads gain the
        ``trace_id``.
        """
        if TRACE_PARAM in params or TRACE_PARENT_PARAM in params:
            params = dict(params)
            raw_trace = scalar(params, TRACE_PARAM)
            raw_parent = scalar(params, TRACE_PARENT_PARAM)
            params.pop(TRACE_PARAM, None)
            params.pop(TRACE_PARENT_PARAM, None)
            if trace_id is None:
                trace_id = raw_trace
            if parent_id is None:
                parent_id = raw_parent
        if not self._tracer.enabled:
            return self._dispatch(method, path, params)
        with self._tracer.request(
            "http.request",
            trace_id=trace_id,
            parent_id=parent_id,
            method=method,
            path=path,
        ) as root:
            status, payload = self._dispatch(method, path, params)
            if root is not None:
                root.set_attr("status", status)
                if isinstance(payload, dict):
                    if "tenant" in payload:
                        root.set_attr("tenant", payload["tenant"])
                    if status >= 400:
                        root.mark_error(
                            str(payload.get("message") or payload.get("error"))
                        )
                        payload.setdefault("trace_id", root.trace_id)
            return status, payload

    def _dispatch(
        self, method: str, path: str, params: Mapping[str, Any]
    ) -> tuple[int, Any]:
        """Route + tenancy + error ladder (the pre-tracing ``handle``).

        With a tenant registry configured, data-plane routes resolve
        the request's tenant and pass its rate-limit / in-flight /
        allow-list gates *before* routing — the cluster's edge is where
        tenant limits are enforced, exactly once.
        """
        normalized = path.rstrip("/") or path
        tenant: TenantSpec | None = None
        if self._tenants is not None:
            try:
                with span("tenant.resolve") as resolve_span:
                    tenant = resolve_tenant(
                        self._tenants, params,
                        required=normalized in _TENANT_DATA_ROUTES,
                    )
                    if resolve_span is not None and tenant is not None:
                        resolve_span.set_attr("tenant", tenant.name)
            except UnknownTenantError as exc:
                return 404, {"error": "unknown_tenant", "message": str(exc)}
            except TenancyError as exc:
                return 400, {"error": "tenant_required", "message": str(exc)}
        admitted = False
        if tenant is not None and normalized in _TENANT_DATA_ROUTES:
            forbidden = self._tenant_forbidden(tenant, params)
            if forbidden is not None:
                return forbidden
            shed = self._admit_tenant(time.perf_counter(), tenant)
            if shed is not None:
                return shed
            admitted = tenant.max_in_flight is not None
            self._record_tenant(tenant)
        try:
            if normalized in PROXY_ROUTES:
                if method not in PROXY_ROUTES[normalized]:
                    return 405, {
                        "error": "method_not_allowed",
                        "message": f"{normalized} accepts "
                        f"{', '.join(PROXY_ROUTES[normalized])}",
                    }
                return self._proxy(method, normalized, params, tenant)
            route = self._router.match(normalized)
            if route is None:
                return 404, {
                    "error": "not_found",
                    "message": f"unknown path {path!r}",
                    "paths": sorted(self._router.paths() + list(PROXY_ROUTES)),
                }
            if method not in route.methods:
                return 405, {
                    "error": "method_not_allowed",
                    "message": f"{route.path} accepts {', '.join(route.methods)}",
                }
            try:
                return route.handler(method, params, tenant)
            except TenantAccessError as exc:
                return 403, self._tenant_error("forbidden", exc, tenant)
            except QuotaExceededError as exc:
                return 413, self._tenant_error("quota_exceeded", exc, tenant)
            except Exception as exc:  # noqa: BLE001 — a request must never kill the front
                return 500, {"error": "internal", "message": str(exc)}
        finally:
            if admitted:
                self._tenant_admission.release(tenant.name)

    @staticmethod
    def _tenant_error(
        code: str, exc: BaseException, tenant: TenantSpec | None
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"error": code, "message": str(exc)}
        if tenant is not None:
            body["tenant"] = tenant.name
        return body

    # -- fan-out helpers -----------------------------------------------------

    def _ask_replica(
        self, handle: Any, path: str, timeout: float = 10.0
    ) -> dict[str, Any] | None:
        try:
            status, body, _extras = _unpack_reply(
                handle.request("GET", path, {}, timeout=timeout)
            )
            if status != 200:
                return None
            return json.loads(body)
        except (ClusterError, ValueError):
            return None

    # -- coordinator endpoints -----------------------------------------------

    def _replica_states(self) -> dict[str, dict[str, Any]]:
        return {
            name: {
                "state": handle.state,
                "alive": handle.alive(),
                "pid": getattr(handle, "pid", None),
                "restarts": max(0, getattr(handle, "restarts", 0)),
            }
            for name, handle in self._replicas.items()
        }

    def _healthz(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        states = self._replica_states()
        live = [name for name, info in states.items() if info["alive"]]
        if len(live) == len(states):
            status = "ok"
        elif live:
            status = "degraded"
        else:
            status = "down"
        # Source-store positions (fresh SQL reads, not possibly-stale
        # mirrors) so replica lag below is measured against the truth.
        feeds: dict[str, dict[str, Any]] = {}
        for config in self._configs:
            if config.store is None:
                continue
            try:
                feed = self._feed_for(config)
                feeds[config.name] = {
                    "source_generation": feed.generation(),
                    "floor": feed.floor(),
                    "follow": self._follow,
                }
            except FeedError:
                continue  # store file gone mid-shutdown; omit, don't fail
        for name in live:
            info = self._ask_replica(self._replicas[name], "/healthz")
            if info is not None:
                states[name]["generations"] = info.get("generations", {})
                states[name]["uptime_seconds"] = info.get("uptime_seconds")
                if "feed" in info:
                    states[name]["feed"] = info["feed"]
                # Per-replica staleness in generations, from the replica's
                # reported position vs the source store's current one.
                lag = {
                    cfg: max(0, meta["source_generation"] - int(generation))
                    for cfg, generation in states[name]["generations"].items()
                    if (meta := feeds.get(cfg)) is not None
                }
                if lag:
                    states[name]["feed_lag"] = lag
        payload: dict[str, Any] = {
            "status": status,
            "role": "coordinator",
            "replicas_total": len(states),
            "replicas_live": len(live),
            "replicas": states,
            "configs": [c.name for c in self._configs],
            "uptime_seconds": time.time() - self._started,
            "schema_version": schema.SCHEMA_VERSION,
        }
        if feeds:
            payload["feeds"] = feeds
        if self._tenants is not None:
            payload["tenants"] = {
                spec.name: {
                    "configs": [
                        c.name for c in self._configs if spec.allows(c.name)
                    ],
                }
                for spec in self._tenants.specs()
            }
        return 200, payload

    def _metrics_route(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        fmt = str(scalar(params, "format", "json") or "json").lower()
        if fmt not in ("json", "prometheus"):
            return 400, {
                "error": "serve_error",
                "message": f"format must be 'json' or 'prometheus', got {fmt!r}",
            }
        per_replica: dict[str, Any] = {}
        aggregate: dict[str, dict[str, int]] = {}
        for name, handle in self._replicas.items():
            if not handle.alive():
                per_replica[name] = {"error": "replica down"}
                continue
            payload = self._ask_replica(handle, "/metrics", timeout=30.0)
            if payload is None:
                per_replica[name] = {"error": "metrics fetch failed"}
                continue
            per_replica[name] = payload
            for endpoint, row in payload.get("requests", {}).items():
                into = aggregate.setdefault(
                    endpoint, {field: 0 for field in _SUMMED_FIELDS}
                )
                for field in _SUMMED_FIELDS:
                    into[field] += int(row.get(field, 0))
        cluster = self._metrics.snapshot()
        cluster["in_flight"] = self._admission.snapshot()
        cluster["queue_depth"] = self._admission.queue_depth
        cluster["restarts"] = {
            name: max(0, getattr(handle, "restarts", 0))
            for name, handle in self._replicas.items()
        }
        cluster["feed"] = {
            "follow": self._follow,
            "compaction": {
                path: scheduler.stats()
                for path, scheduler in self._schedulers.items()
            },
        }
        if self._tenants is not None:
            with self._tenant_lock:
                requests = dict(self._tenant_requests)
                sheds = dict(self._tenant_sheds)
            cluster["tenants"] = {
                name: {
                    "requests": requests.get(name, 0),
                    "sheds": sheds.get(name, 0),
                }
                for name in sorted(set(requests) | set(sheds))
            }
            cluster["tenant_in_flight"] = self._tenant_admission.snapshot()
        payload = {
            "uptime_seconds": time.time() - self._started,
            "requests": aggregate,  # summed across replicas
            "cluster": cluster,
            "replicas": per_replica,
        }
        if fmt == "prometheus":
            return 200, render_prometheus(payload)
        return 200, payload

    # -- debug endpoints -----------------------------------------------------

    def _debug_traces(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        """Recent stitched traces (``min_duration``/``status``/``tenant``).

        Same contract as the serve tier's ``/debug/traces``; a resolved
        tenant always overrides the ``for_tenant`` query filter.
        """
        buffer = self._tracer.buffer
        raw = scalar(params, "min_duration")
        try:
            min_duration = None if raw in (None, "") else float(raw)
        except (TypeError, ValueError):
            return 400, {
                "error": "serve_error",
                "message": f"min_duration must be a number, got {raw!r}",
            }
        status = scalar(params, "status")
        status = str(status) if status not in (None, "") else None
        tenant_filter = (
            tenant.name if tenant is not None else scalar(params, "for_tenant")
        )
        limit_raw = scalar(params, "limit", 50)
        try:
            limit = max(1, min(int(limit_raw), 500))
        except (TypeError, ValueError):
            return 400, {
                "error": "serve_error",
                "message": f"limit must be an integer, got {limit_raw!r}",
            }
        traces = (
            buffer.list(
                min_duration=min_duration,
                status=status,
                tenant=tenant_filter,
                limit=limit,
            )
            if buffer is not None
            else []
        )
        return 200, {
            "tracing": self._tracer.enabled,
            "held": 0 if buffer is None else len(buffer),
            "capacity": 0 if buffer is None else buffer.capacity,
            "traces": traces,
        }

    def _debug_slow(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        """The slow-request ring: summaries of requests over threshold."""
        slow = self._tracer.slow_log
        limit_raw = scalar(params, "limit", 50)
        try:
            limit = max(1, min(int(limit_raw), 500))
        except (TypeError, ValueError):
            return 400, {
                "error": "serve_error",
                "message": f"limit must be an integer, got {limit_raw!r}",
            }
        if slow is None:
            return 200, {"slow": [], "threshold_seconds": None}
        entries = slow.entries(limit)
        if tenant is not None:
            entries = [e for e in entries if e.get("tenant") == tenant.name]
        payload = slow.snapshot()
        payload["slow"] = entries
        return 200, payload

    def _configs_route(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        for handle in self._replicas.values():
            if not handle.alive():
                continue
            payload = self._ask_replica(handle, "/configs", timeout=30.0)
            if payload is not None:
                payload["cluster"] = {"replicas": len(self._replicas)}
                if self._tenants is not None:
                    payload["tenants"] = self._tenants.names()
                return 200, payload
        return 503, {
            "error": "unavailable",
            "message": "no live replicas to describe configurations",
        }

    def _cluster_route(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        payload: dict[str, Any] = {
            "replicas": self._replica_states(),
            "ring": self._ring.describe(),
            "queue_depth": self._admission.queue_depth,
            "retry_after": self._retry_after,
            "in_flight": self._admission.snapshot(),
            "configs": [c.describe() for c in self._configs],
            "stores": {
                c.name: c.store for c in self._configs if c.store is not None
            },
        }
        if self._tenants is not None:
            payload["tenants"] = self._tenants.describe()
            payload["tenant_in_flight"] = self._tenant_admission.snapshot()
        return 200, payload

    def _store_config(
        self, params: Mapping[str, Any]
    ) -> "ServeConfig | tuple[int, Any]":
        """Resolve the store-backed config a feed request targets.

        Returns the config, or a ready ``(status, payload)`` error pair
        (400 when no store-backed configuration exists — the cluster has
        nothing durable to write to or read a log from).
        """
        stored = {c.name: c for c in self._configs if c.store is not None}
        if not stored:
            return 400, {
                "error": "serve_error",
                "message": (
                    "no configuration has a document store (store=<path>); "
                    "ingest and changefeed need a store-backed configuration"
                ),
            }
        name = scalar(params, "config")
        if name is None:
            if len(stored) == 1:
                return next(iter(stored.values()))
            return 400, {
                "error": "serve_error",
                "message": (
                    f"parameter 'config' is required with multiple "
                    f"store-backed configurations; configured: "
                    f"{', '.join(sorted(stored))}"
                ),
            }
        config = stored.get(str(name))
        if config is None:
            return 404, {
                "error": "unknown_config",
                "message": (
                    f"no store-backed configuration named {name!r}; "
                    f"configured: {', '.join(sorted(stored))}"
                ),
            }
        return config

    def _ingest(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        """Routed ingest: write the batch to the *source* store.

        The write commits (durably, changelog row included) before the
        response; replicas converge by tailing the changefeed when the
        cluster runs with ``follow=True``, or at their next re-hydration
        otherwise. Hence 202 Accepted, not 200: the fleet is eventually
        consistent with the returned generation. With a tenant, its
        quotas apply transactionally against the source store — a
        rejected over-quota batch changes nothing (413).
        """
        from repro.data.documents import document_from_payload
        from repro.errors import DataError, SchemaError
        from repro.text.analyzer import Analyzer

        t0 = time.perf_counter()
        config = self._store_config(params)
        if isinstance(config, tuple):
            return config
        raw = params.get("documents")
        if not isinstance(raw, (list, tuple)) or not raw:
            return 400, {
                "error": "serve_error",
                "message": "ingest needs a non-empty 'documents' list",
            }
        # Match `repro store ingest`: unstemmed analysis for text payloads,
        # so CLI-ingested and cluster-ingested documents tokenize alike.
        analyzer = Analyzer(use_stemming=False)
        documents = []
        for i, payload in enumerate(raw):
            try:
                documents.append(document_from_payload(payload, analyzer=analyzer))
            except (DataError, SchemaError) as exc:
                return 400, {
                    "error": "serve_error",
                    "message": f"documents[{i}]: {exc}",
                }
        if tenant is not None:
            self._quota.check_batch(tenant, len(documents))
        store = self._source_store(config.store)
        store.refresh()  # another process may have moved the file
        guard = None if tenant is None else self._quota.store_guard(tenant)
        store.upsert_all(documents, guard=guard)
        generation = store.generation
        payload = {
            "config": config.name,
            "ingested": len(documents),
            "generation": generation,
            "follow": self._follow,
            "seconds": time.perf_counter() - t0,
        }
        if tenant is not None:
            payload["tenant"] = tenant.name
        return 202, payload

    def _feed_for(self, config: ServeConfig) -> Changefeed:
        with self._feeds_lock:
            feed = self._feeds.get(config.name)
            if feed is None:
                feed = Changefeed(config.store)
                self._feeds[config.name] = feed
            return feed

    def _changefeed_route(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        """Serve the source store's replication log from the coordinator.

        Same contract as the serve tier's ``/changefeed`` (API.md), read
        directly from the source store — external tailers can follow the
        cluster without knowing which replica holds what.
        """
        config = self._store_config(params)
        if isinstance(config, tuple):
            return config
        try:
            since, limit, consumer = resolve_read_args(
                scalar(params, "cursor"),
                scalar(params, "since"),
                scalar(params, "limit"),
                scalar(params, "consumer"),
            )
            batch = self._feed_for(config).read_since(
                since, limit=limit, consumer=consumer
            )
        except (FeedError, ServeError) as exc:
            return 400, {"error": "serve_error", "message": str(exc)}
        payload = batch_to_payload(config.name, batch, limit)
        if tenant is not None:
            payload["tenant"] = tenant.name
        return 200, payload

    # -- scatter/gather batch ------------------------------------------------

    def _batch(
        self,
        method: str,
        params: Mapping[str, Any],
        tenant: TenantSpec | None = None,
    ) -> tuple[int, Any]:
        t0 = time.perf_counter()
        try:
            page = resolve_page(params, "batch", BATCH_CURSOR_KEYS)
            run_params = dict(page.params)
            if "queries" not in run_params:
                queries = params.get("queries")
                if not isinstance(queries, (list, tuple)) or not queries:
                    from repro.errors import ServeError

                    raise ServeError("batch needs a non-empty 'queries' list")
                run_params["queries"] = [str(q) for q in queries]
            if page.paginated:
                page = PageRequest(
                    params=run_params, offset=page.offset, limit=page.limit
                )
        except Exception as exc:  # bad cursor / bad queries
            return 400, {"error": "serve_error", "message": str(exc)}

        queries = run_params["queries"]
        config = run_params.get("config", "")

        # Group queries (keeping original positions) by routed replica.
        groups: dict[str, list[tuple[int, str]]] = {}
        for index, query in enumerate(queries):
            key = f"{config}\x00{query}"
            candidates = self._live_preference(key)
            if not candidates:
                return 503, {
                    "error": "unavailable",
                    "message": "no live replicas (cluster is restarting or down)",
                }
            groups.setdefault(candidates[0].name, []).append((index, query))

        # Admission: claim one slot per participating replica up front;
        # all-or-nothing so a saturated fleet sheds the batch promptly.
        claimed: list[str] = []
        for name in groups:
            if not self._admission.try_acquire(name):
                for done in claimed:
                    self._admission.release(done)
                return self._shed(t0, name, tenant)
            claimed.append(name)

        # Scatter threads have no ambient span (contextvars stay with the
        # request thread), so trace context is injected into the sub-batch
        # params here and the replicas' spans absorbed after the gather.
        cur = current_span()

        def run_group(item: tuple[str, list[tuple[int, str]]]):
            name, members = item
            sub = dict(run_params)
            sub["queries"] = [query for _, query in members]
            if cur is not None:
                sub[TRACE_PARAM] = cur.trace_id
                sub[TRACE_PARENT_PARAM] = cur.span_id
            status, body, extras = _unpack_reply(
                self._replicas[name].request(
                    "POST", "/batch", sub, timeout=self._request_timeout
                )
            )
            return name, members, status, body, extras

        try:
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                outcomes = list(pool.map(run_group, groups.items()))
        except ClusterError as exc:
            return 503, {"error": "unavailable", "message": str(exc)}
        finally:
            for name in claimed:
                self._admission.release(name)

        items: list[Any] = [None] * len(queries)
        cache_hits = 0
        for name, members, status, body, extras in outcomes:
            absorb_spans(extras.get("spans"))
            try:
                payload = json.loads(body)
            except ValueError:
                payload = None
            if status != 200 or payload is None:
                message = (payload or {}).get("message", f"status {status}")
                for index, query in members:
                    items[index] = {
                        "query": query,
                        "ok": False,
                        "report": None,
                        "error_type": "ClusterError",
                        "error_message": f"replica {name}: {message}",
                        "seconds": 0.0,
                        "cache": "miss",
                    }
                continue
            self._metrics.record_routed(name, time.perf_counter() - t0)
            for (index, _query), item in zip(
                members, payload["report"]["items"]
            ):
                items[index] = item
            cache_hits += int(payload.get("cache_hits", 0))

        seconds = time.perf_counter() - t0
        report = schema.make_envelope(
            schema.KIND_BATCH,
            {"items": items, "workers": len(groups), "seconds": seconds},
        )
        payload = {
            "config": scalar(run_params, "config"),
            "cache_hits": cache_hits,
            "n_ok": sum(1 for i in items if i and i.get("ok")),
            "n_failed": sum(1 for i in items if not (i and i.get("ok"))),
            "replicas": sorted(groups),
            "report": report,
        }
        if tenant is not None:
            payload["tenant"] = tenant.name
        if page.paginated:
            paged = apply_page({"items": items}, "items", page, "batch")
            report["items"] = paged["items"]
            payload["page"] = paged["page"]
        return 200, payload


def create_coordinator(
    configs: Iterable[ServeConfig | str], **kwargs: Any
) -> ClusterCoordinator:
    """Build (without starting) a coordinator from configs or spec strings."""
    return ClusterCoordinator(configs, **kwargs)
