"""``repro.serve.cluster`` — multi-process replicated serving.

One coordinator process fronts N replica worker processes. Each replica
hydrates a complete single-node serving stack from a private snapshot of
the document store (shared-nothing), the coordinator routes requests by
consistent hash of ``(config, query)`` to keep per-replica caches warm,
sheds load with prompt 429s at a bounded per-replica queue depth, fails
over and restarts crashed replicas from fresh snapshots, and aggregates
health and metrics across the fleet. See API.md: "Cluster serving".

Quick start::

    from repro.serve.cluster import create_cluster

    with create_cluster(["demo:dataset=wikipedia"], replicas=2, port=0) as srv:
        print(srv.url)  # /expand, /search, /batch, /healthz, /metrics, ...

(The package lives under ``repro.serve`` because top-level
``repro.cluster`` is the *clustering-algorithms* package — k-means and
friends; this one is about serving topology.)
"""

from repro.serve.cluster.coordinator import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_RETRY_AFTER,
    AdmissionController,
    ClusterCoordinator,
    CoordinatorMetrics,
    ProcessReplica,
    create_coordinator,
)
from repro.serve.cluster.hashring import DEFAULT_VNODES, HashRing
from repro.serve.cluster.replica import (
    ReplicaSpec,
    TailingReplicaService,
    build_replica_service,
    replica_main,
)
from repro.serve.cluster.routes import (
    MAX_PAGE_LIMIT,
    PageRequest,
    RoutedService,
    Router,
    apply_page,
    decode_cursor,
    encode_cursor,
    resolve_page,
)
from repro.serve.cluster.server import ClusterServer, create_cluster
from repro.serve.cluster.transport import ReplicaClient, ReplicaTransport

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_RETRY_AFTER",
    "DEFAULT_VNODES",
    "MAX_PAGE_LIMIT",
    "AdmissionController",
    "ClusterCoordinator",
    "ClusterServer",
    "CoordinatorMetrics",
    "HashRing",
    "PageRequest",
    "ProcessReplica",
    "ReplicaClient",
    "ReplicaSpec",
    "ReplicaTransport",
    "RoutedService",
    "Router",
    "TailingReplicaService",
    "apply_page",
    "build_replica_service",
    "create_cluster",
    "create_coordinator",
    "decode_cursor",
    "encode_cursor",
    "replica_main",
    "resolve_page",
]
