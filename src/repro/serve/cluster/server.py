"""The cluster's HTTP front: one socket, N replica processes behind it.

:class:`ClusterServer` reuses the single-node HTTP plumbing
(:class:`~repro.serve.app._Handler`'s request parsing, keep-alive, and
TCP_NODELAY behavior) but points it at a
:class:`~repro.serve.cluster.coordinator.ClusterCoordinator` and adds
two cluster-specific behaviors:

* **bytes passthrough** — proxied responses arrive from replicas as
  already-serialized JSON; the handler writes them to the client socket
  verbatim instead of re-parsing and re-dumping (the coordinator's share
  of a cache hit stays two memcpys);
* **Retry-After** — shed responses (429) carry a ``Retry-After`` header
  mirroring the payload's ``retry_after``, so well-behaved clients back
  off without parsing the body.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.errors import ServeError
from repro.obs import TRACE_HEADER, PrometheusText
from repro.serve.app import _Handler, _HTTPServer
from repro.serve.cluster.coordinator import ClusterCoordinator
from repro.serve.pool import ServeConfig


class _ClusterHandler(_Handler):
    """The single-node handler, taught to forward pre-serialized bytes."""

    server_version = "repro-cluster/1.0"

    def _respond(self, status: int, payload: Any) -> None:
        if not isinstance(payload, bytes) or isinstance(payload, PrometheusText):
            # Coordinator-built payloads (sheds, errors, admin routes, the
            # Prometheus exposition) go through the single-node handler so
            # the 429 Retry-After and content-type behavior stay defined
            # in exactly one place.
            super()._respond(status, payload)
            return
        body = payload
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)


class ClusterServer:
    """HTTP front of a :class:`ClusterCoordinator` (ExpansionServer-shaped).

    Same embedding surface as :class:`~repro.serve.app.ExpansionServer`:
    ``port=0`` for an ephemeral port, :meth:`start` for a daemon thread,
    :meth:`serve_forever` for the blocking CLI path, context-manager
    enter/exit. :meth:`stop` tears down the HTTP listener *and* the
    coordinator (which drains and stops every replica).
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self._coordinator = coordinator
        self._httpd = _HTTPServer((host, port), _ClusterHandler)
        self._httpd.service = coordinator  # _Handler calls .handle(...)
        self._thread: threading.Thread | None = None
        self._serving = threading.Event()  # a blocking serve_forever is live
        self._started = threading.Event()  # start() has been called
        self._closed = threading.Event()  # set once stop() has run
        self._stop_lock = threading.Lock()

    @property
    def coordinator(self) -> ClusterCoordinator:
        return self._coordinator

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterServer":
        if self._started.is_set():
            raise ServeError("cluster server already started")
        self._started.set()
        # The replica fleet spawns outside _stop_lock (process startup is
        # slow and must not serialize against stop()); only the _thread
        # handoff is locked — a signal handler's stop thread may run
        # concurrently with start (same rationale as ExpansionServer).
        self._coordinator.start()
        with self._stop_lock:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-cluster:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI path); replicas must already be started."""
        if self._closed.is_set():
            return
        self._serving.set()
        try:
            self._httpd.serve_forever()
        finally:
            self._serving.clear()

    def stop(self) -> None:
        """Stop the HTTP front, then drain and stop the replica fleet.

        Serialized under a lock: the SIGTERM handler's stop thread and
        the CLI's ``finally: stop()`` may race here. ``shutdown()`` must
        run for a blocking :meth:`serve_forever` too, not just the
        :meth:`start` thread — a signal handler's stop thread reaches
        here while the main thread is still inside ``serve_forever``,
        and closing the listening socket under a live accept loop leaves
        it spinning on an invalid descriptor forever.
        """
        # analyze: ignore[LOCK001] - shutdown() and join(timeout=5) are
        # bounded teardown waits; serializing them under _stop_lock is the
        # point (racing stop() calls must not double-join the thread).
        with self._stop_lock:
            first = not self._closed.is_set()
            self._closed.set()
            if self._thread is not None:
                self._httpd.shutdown()
                self._thread.join(timeout=5)
                self._thread = None
            elif self._serving.is_set():
                self._httpd.shutdown()  # wakes the blocking serve_forever
            self._httpd.server_close()
        # The coordinator drain (supervisor join + per-replica process
        # joins) is unbounded and must not run under _stop_lock: a second
        # stop() — e.g. the signal handler racing the CLI's finally: —
        # would block on the lock for the whole drain. Only the first
        # caller drains; later callers return once the front is down.
        if first:
            self._coordinator.stop()

    def install_signal_handlers(
        self, signals: tuple[int, ...] | None = None
    ) -> None:
        """Make SIGTERM/SIGINT stop the front and drain the fleet.

        Same shape (and same deadlock-avoidance rationale) as
        :meth:`repro.serve.app.ExpansionServer.install_signal_handlers`:
        the handler hands the stop to a fresh thread so the blocking
        ``serve_forever`` thread is never the one waiting on itself.
        """
        import signal as _signal

        if signals is None:
            signals = (_signal.SIGTERM, _signal.SIGINT)

        def _handler(signum: int, frame: Any) -> None:
            threading.Thread(
                target=self.stop, name="repro-cluster-shutdown", daemon=True
            ).start()

        for signum in signals:
            _signal.signal(signum, _handler)

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def create_cluster(
    configs: Iterable[ServeConfig | str],
    host: str = "127.0.0.1",
    port: int = 8080,
    **coordinator_kwargs: Any,
) -> ClusterServer:
    """Assemble configs → coordinator → HTTP front in one call.

    Keyword arguments (``replicas``, ``queue_depth``, ``retry_after``,
    ``cache_size``, ...) flow to :class:`ClusterCoordinator`. Nothing is
    spawned until :meth:`ClusterServer.start`.
    """
    return ClusterServer(
        ClusterCoordinator(configs, **coordinator_kwargs), host=host, port=port
    )
