"""The coordinator ↔ replica wire: length-framed RPC over loopback.

``multiprocessing.connection`` gives exactly what a local cluster needs
— authenticated (HMAC challenge), length-prefixed message framing over a
loopback socket — without HTTP parsing on the inter-process hop. One
request is the tuple ``(method, path, params)``; one response is
``(status, body_bytes, extras)`` where ``body_bytes`` is the replica's
already **serialized JSON payload** and ``extras`` is a small metadata
dict — today carrying ``spans`` (the replica's finished trace spans,
when the request propagated trace context, so the coordinator can
stitch one cross-process trace). Older 2-tuple responses are still
accepted on the read side: in-process test fakes and mid-upgrade
replicas reply without extras and simply contribute no spans. Shipping
bytes instead of objects is the cluster's hot-path trick: the
coordinator forwards them to the client socket verbatim, so proxying a
cache hit costs the coordinator an HTTP parse and two memcpys while the
replica pays the (much larger) JSON serialization — which is what lets
N replicas outrun one.

* :class:`ReplicaTransport` — replica side: an ephemeral-port listener
  plus a thread per coordinator connection, each looping recv →
  ``handle`` → send until EOF or :meth:`close`.
* :class:`ReplicaClient` — coordinator side: a small pool of persistent
  connections (borrow per request, return unless broken). Every failure
  mode — refused, reset, timeout, EOF — surfaces as
  :class:`ClusterError` so the coordinator's failover path has a single
  thing to catch.
"""

from __future__ import annotations

import json
import os
import threading
from multiprocessing.connection import Client, Connection, Listener
from typing import Any, Callable, Mapping

from repro.errors import ClusterError
from repro.obs import TRACE_PARAM

#: Seconds a coordinator waits on a replica reply before declaring it
#: unreachable (expansion cold paths are slow; hydrated hits are not).
DEFAULT_REQUEST_TIMEOUT = 60.0

Handle = Callable[[str, str, Mapping[str, Any]], tuple[int, Any]]


def _encode_body(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


class ReplicaTransport:
    """Replica-side listener serving ``handle`` to coordinator clients.

    ``span_export`` (optional) is called with the request's trace id
    after the handler finishes; whatever span records it returns ride
    back in the response's ``extras["spans"]`` for coordinator-side
    trace stitching.
    """

    def __init__(
        self,
        handle: Handle,
        host: str = "127.0.0.1",
        span_export: "Callable[[str], list | None] | None" = None,
    ) -> None:
        self._handle = handle
        self._span_export = span_export
        self._authkey = os.urandom(16)
        self._listener = Listener((host, 0), authkey=self._authkey)
        self._closed = threading.Event()
        self._conn_threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.address
        return (host, int(port))

    @property
    def authkey(self) -> bytes:
        return self._authkey

    def serve(self) -> None:
        """Accept coordinator connections until :meth:`close` (blocking)."""
        while not self._closed.is_set():
            try:
                conn = self._listener.accept()
            except Exception:  # noqa: BLE001
                # accept() raises when close() tears the socket down, and
                # on a failed auth handshake; both mean "try again or stop".
                if self._closed.is_set():
                    break
                continue
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-cluster-replica-conn",
                daemon=True,
            )
            worker.start()
            self._conn_threads.append(worker)

    def _serve_connection(self, conn: Connection) -> None:
        try:
            while not self._closed.is_set():
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                extras: dict[str, Any] = {}
                try:
                    method, path, params = message
                    # The handler strips the trace params from its own
                    # copy, so the id is captured here, before dispatch.
                    trace_id = None
                    if isinstance(params, Mapping):
                        trace_id = params.get(TRACE_PARAM)
                    status, payload = self._handle(str(method), str(path), params)
                    body = payload if isinstance(payload, bytes) else _encode_body(payload)
                    if trace_id is not None and self._span_export is not None:
                        spans = self._span_export(str(trace_id))
                        if spans:
                            extras["spans"] = spans
                except Exception as exc:  # noqa: BLE001 — a request must not kill the loop
                    status = 500
                    body = _encode_body(
                        {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}
                    )
                try:
                    conn.send((int(status), body, extras))
                except (OSError, ValueError, BrokenPipeError):
                    break
        finally:
            conn.close()

    def close(self) -> None:
        """Stop accepting; in-flight connection loops exit on next recv."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ReplicaClient:
    """Coordinator-side connection pool for one replica."""

    def __init__(
        self,
        address: tuple[str, int],
        authkey: bytes,
        timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self._address = (str(address[0]), int(address[1]))
        self._authkey = bytes(authkey)
        self._timeout = timeout
        self._idle: list[Connection] = []
        self._lock = threading.Lock()
        self._closed = False

    def _checkout(self) -> Connection:
        with self._lock:
            if self._closed:
                raise ClusterError("replica client is closed")
            if self._idle:
                return self._idle.pop()
        try:
            return Client(self._address, authkey=self._authkey)
        except Exception as exc:  # noqa: BLE001 — refused/reset/auth all mean "down"
            raise ClusterError(
                f"cannot connect to replica at {self._address}: {exc}"
            ) from None

    def _checkin(self, conn: Connection) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(conn)
                return
        conn.close()

    def request(
        self,
        method: str,
        path: str,
        params: Mapping[str, Any],
        timeout: float | None = None,
    ) -> tuple[int, bytes, dict[str, Any]]:
        """One RPC round-trip; broken connections are discarded, not reused.

        Returns ``(status, body, extras)``; a legacy 2-tuple reply (no
        extras on the wire) comes back with empty extras.
        """
        conn = self._checkout()
        try:
            conn.send((method, path, dict(params)))
            if not conn.poll(self._timeout if timeout is None else timeout):
                raise ClusterError(
                    f"replica at {self._address} timed out on {path}"
                )
            reply = conn.recv()
            if len(reply) == 3:
                status, body, extras = reply
            else:
                (status, body), extras = reply, {}
        except ClusterError:
            conn.close()
            raise
        except (OSError, EOFError, ValueError, TypeError) as exc:
            conn.close()
            raise ClusterError(
                f"replica at {self._address} failed on {path}: {exc}"
            ) from None
        self._checkin(conn)
        return int(status), bytes(body), dict(extras or {})

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()
