"""The replica worker process: hydrate, announce, serve, drain.

A replica is one OS process owning a full single-node serving stack — a
:class:`~repro.serve.pool.SessionPool`, an
:class:`~repro.serve.app.ExpansionService`, and the pagination-aware
:class:`~repro.serve.cluster.routes.RoutedService` face — reached over
the :mod:`~repro.serve.cluster.transport` RPC instead of HTTP. The
coordinator describes it with a picklable :class:`ReplicaSpec` and
spawns :func:`replica_main` via ``multiprocessing`` (``spawn`` context:
no inherited locks, threads, or SQLite handles).

Lifecycle::

    spawn -> build sessions (hydrate)  -> ("ready", address, authkey)
          -> accept/serve RPC loop     -> SIGTERM
          -> stop accepting, drain in-flight, close stores -> exit 0

**Snapshot hydration**: store-backed configurations arrive with their
``store`` path rewritten to a private snapshot file the coordinator cut
from the source store via the SQLite backup API
(:meth:`DocumentStore.snapshot`), so every replica owns its bytes —
shared-nothing — and a restarted replica is simply handed a *fresh*
snapshot. Hydration happens before the ready message: by the time the
coordinator routes a request here, every session is built and warm.

**Incremental maintenance** (``--follow``): when the spec carries
``feed_sources`` (config name → *source* store path), the replica starts
one :class:`~repro.feed.FeedTailer` per followed config after hydration.
The tailer polls the source's changelog from the snapshot's generation
and applies deltas to the replica's private store, so the replica
converges on live ingest without re-hydration; the snapshot path is only
taken at (re)start — or when a tailer reports a *gap* (its history was
truncated by compaction), in which case the replica shuts its transport
down and exits cleanly: the supervisor sees it die and respawns it with
a fresh snapshot. Restart-equals-rehydrate stays the single recovery
story. ``/healthz`` and ``/metrics`` payloads gain a ``feed`` block with
per-config tailer stats (applied generation, lag, fallbacks, errors).
"""

from __future__ import annotations

import dataclasses
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.feed import Changefeed, FeedTailer
from repro.serve.app import ExpansionService
from repro.serve.cluster.routes import RoutedService
from repro.serve.cluster.transport import ReplicaTransport
from repro.serve.pool import ServeConfig, SessionPool
from repro.tenancy import TenantRegistry, TenantSpec

#: Seconds a terminating replica waits for in-flight requests.
DRAIN_TIMEOUT = 10.0


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica process needs to build its serving stack.

    ``store_overrides`` maps configuration names to per-replica snapshot
    paths; matching configs are rebuilt with that path as their store.
    ``feed_sources`` maps configuration names to *source* store paths to
    tail (see module docstring); empty = snapshot-only replicas (the
    pre-feed behavior, and the default). ``tenant_specs`` carries the
    coordinator's tenant registry as plain dicts (picklable across the
    spawn boundary); the replica rebuilds a registry from them so its
    response caches and payloads are tenant-scoped, but with
    ``enforce_limits=False`` — rate limits and quotas are enforced once,
    at the coordinator.
    """

    name: str
    configs: tuple[ServeConfig, ...]
    store_overrides: Mapping[str, str] = field(default_factory=dict)
    cache_size: int = 1024
    cache_ttl: float | None = None
    workers: int = 4
    feed_sources: Mapping[str, str] = field(default_factory=dict)
    feed_poll_interval: float = 0.25
    tenant_specs: tuple[Mapping[str, Any], ...] = ()
    tracing: bool = True
    trace_capacity: int = 256
    slow_threshold: float = 0.25

    def effective_configs(self) -> list[ServeConfig]:
        out = []
        for config in self.configs:
            override = self.store_overrides.get(config.name)
            if override is not None:
                config = dataclasses.replace(config, store=override)
            out.append(config)
        return out


class TailingReplicaService:
    """A replica service plus the feed tailers keeping it converged.

    Wraps a :class:`RoutedService`, delegating everything, and:

    * augments ``/healthz`` and ``/metrics`` payloads with a ``feed``
      block (per-config tailer stats) so the coordinator can aggregate
      replica lag without a side channel;
    * owns the tailers' lifecycle — :meth:`close` stops them *before*
      draining the service, so no mutation lands mid-shutdown;
    * exposes :attr:`on_gap`, called with the config name when a tailer
      hits a truncated log prefix; ``replica_main`` points it at the
      transport's shutdown so the process exits cleanly and the
      supervisor re-hydrates it from a fresh snapshot (gap recovery IS
      restart-equals-rehydrate, not a second code path).
    """

    def __init__(self, routed: RoutedService) -> None:
        self._routed = routed
        self._tailers: dict[str, FeedTailer] = {}
        self._feeds: list[Changefeed] = []
        self.on_gap: Callable[[str], None] | None = None

    @property
    def tailers(self) -> Mapping[str, FeedTailer]:
        return dict(self._tailers)

    def follow(
        self, config_name: str, source_path: str, spec: ReplicaSpec
    ) -> FeedTailer:
        """Start tailing ``source_path``'s changelog into ``config_name``."""
        entry = self._routed.pool.get(config_name)
        feed = Changefeed(source_path)

        def _gap(_tailer: FeedTailer, _batch: Any) -> None:
            hook = self.on_gap
            if hook is not None:
                hook(config_name)
            return None  # stop the tailer; recovery is a fresh snapshot

        tailer = FeedTailer(
            feed,
            entry.index,
            start_after=entry.generation(),
            consumer=f"{spec.name}:{config_name}",
            poll_interval=spec.feed_poll_interval,
            on_gap=_gap,
            tracer=self._routed.service.tracer,
        )
        self._feeds.append(feed)
        self._tailers[config_name] = tailer
        tailer.start()
        return tailer

    def feed_stats(self) -> dict[str, Any]:
        return {name: t.stats() for name, t in self._tailers.items()}

    def handle(
        self, method: str, path: str, params: Mapping[str, Any]
    ) -> tuple[int, Any]:
        status, payload = self._routed.handle(method, path, params)
        normalized = path.rstrip("/") or path
        if (
            status == 200
            and normalized in ("/healthz", "/metrics")
            and isinstance(payload, dict)
        ):
            payload = dict(payload)
            payload["feed"] = self.feed_stats()
        return status, payload

    def close(self, drain_timeout: float = DRAIN_TIMEOUT) -> None:
        for tailer in self._tailers.values():
            tailer.stop()
        for feed in self._feeds:
            feed.close()
        self._routed.close(drain_timeout=drain_timeout)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._routed, name)


def build_replica_service(
    spec: ReplicaSpec,
) -> RoutedService | TailingReplicaService:
    """Assemble (and fully hydrate) one replica's serving stack."""
    tenants = None
    if spec.tenant_specs:
        tenants = TenantRegistry(
            specs=[TenantSpec.from_dict(d) for d in spec.tenant_specs]
        )
    service = ExpansionService(
        SessionPool(spec.effective_configs()),
        cache_size=spec.cache_size,
        cache_ttl=spec.cache_ttl,
        workers=spec.workers,
        tenants=tenants,
        enforce_limits=False,  # the coordinator is the enforcement edge
        tracing=spec.tracing,
        trace_capacity=spec.trace_capacity,
        slow_threshold=spec.slow_threshold,
    )
    # Replica spans carry their process identity, so a stitched
    # cross-process trace shows which replica served the hop.
    service.tracer.tags.update({"tier": "replica", "replica": spec.name})
    for name in service.pool.names():
        service.pool.get(name)  # build now: ready means warm
    routed = RoutedService(service)
    if not spec.feed_sources:
        return routed
    tailing = TailingReplicaService(routed)
    for config_name, source_path in spec.feed_sources.items():
        tailing.follow(config_name, source_path, spec)
    return tailing


def replica_main(spec: ReplicaSpec, ready: Any) -> None:
    """Process entry point (see module docstring). ``ready`` is a Pipe end."""
    try:
        routed = build_replica_service(spec)
        # trace_export ships the finished trace's spans back in the RPC
        # response so the coordinator stitches one cross-process trace.
        transport = ReplicaTransport(
            routed.handle, span_export=routed.service.trace_export
        )
        if isinstance(routed, TailingReplicaService):
            # A gap means this replica's history is gone: exit the serve
            # loop cleanly (off-thread — close() joins the accept loop)
            # and let the supervisor re-hydrate us from a fresh snapshot.
            routed.on_gap = lambda _config: threading.Thread(
                target=transport.close,
                name="repro-replica-gap-exit",
                daemon=True,
            ).start()
    except Exception as exc:  # noqa: BLE001 — report the failure, don't hang the parent
        try:
            ready.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            ready.close()
        return
    ready.send(("ready", transport.address, transport.authkey))
    ready.close()

    stopping = threading.Event()

    def _terminate(signum: int, frame: Any) -> None:
        stopping.set()
        transport.close()  # accept loop exits; serve() returns

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    transport.serve()
    # Graceful exit: refuse new work, drain in-flight requests, release
    # the store connections (satellite: clean replica supervision).
    routed.close(drain_timeout=DRAIN_TIMEOUT)
