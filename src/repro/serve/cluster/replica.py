"""The replica worker process: hydrate, announce, serve, drain.

A replica is one OS process owning a full single-node serving stack — a
:class:`~repro.serve.pool.SessionPool`, an
:class:`~repro.serve.app.ExpansionService`, and the pagination-aware
:class:`~repro.serve.cluster.routes.RoutedService` face — reached over
the :mod:`~repro.serve.cluster.transport` RPC instead of HTTP. The
coordinator describes it with a picklable :class:`ReplicaSpec` and
spawns :func:`replica_main` via ``multiprocessing`` (``spawn`` context:
no inherited locks, threads, or SQLite handles).

Lifecycle::

    spawn -> build sessions (hydrate)  -> ("ready", address, authkey)
          -> accept/serve RPC loop     -> SIGTERM
          -> stop accepting, drain in-flight, close stores -> exit 0

**Snapshot hydration**: store-backed configurations arrive with their
``store`` path rewritten to a private snapshot file the coordinator cut
from the source store via the SQLite backup API
(:meth:`DocumentStore.snapshot`), so every replica owns its bytes —
shared-nothing — and a restarted replica is simply handed a *fresh*
snapshot. Hydration happens before the ready message: by the time the
coordinator routes a request here, every session is built and warm.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.serve.app import ExpansionService
from repro.serve.cluster.routes import RoutedService
from repro.serve.cluster.transport import ReplicaTransport
from repro.serve.pool import ServeConfig, SessionPool

#: Seconds a terminating replica waits for in-flight requests.
DRAIN_TIMEOUT = 10.0


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica process needs to build its serving stack.

    ``store_overrides`` maps configuration names to per-replica snapshot
    paths; matching configs are rebuilt with that path as their store.
    """

    name: str
    configs: tuple[ServeConfig, ...]
    store_overrides: Mapping[str, str] = field(default_factory=dict)
    cache_size: int = 1024
    cache_ttl: float | None = None
    workers: int = 4

    def effective_configs(self) -> list[ServeConfig]:
        out = []
        for config in self.configs:
            override = self.store_overrides.get(config.name)
            if override is not None:
                config = dataclasses.replace(config, store=override)
            out.append(config)
        return out


def build_replica_service(spec: ReplicaSpec) -> RoutedService:
    """Assemble (and fully hydrate) one replica's serving stack."""
    service = ExpansionService(
        SessionPool(spec.effective_configs()),
        cache_size=spec.cache_size,
        cache_ttl=spec.cache_ttl,
        workers=spec.workers,
    )
    for name in service.pool.names():
        service.pool.get(name)  # build now: ready means warm
    return RoutedService(service)


def replica_main(spec: ReplicaSpec, ready: Any) -> None:
    """Process entry point (see module docstring). ``ready`` is a Pipe end."""
    try:
        routed = build_replica_service(spec)
        transport = ReplicaTransport(routed.handle)
    except Exception as exc:  # noqa: BLE001 — report the failure, don't hang the parent
        try:
            ready.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            ready.close()
        return
    ready.send(("ready", transport.address, transport.authkey))
    ready.close()

    stopping = threading.Event()

    def _terminate(signum: int, frame: Any) -> None:
        stopping.set()
        transport.close()  # accept loop exits; serve() returns

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    transport.serve()
    # Graceful exit: refuse new work, drain in-flight requests, release
    # the store connections (satellite: clean replica supervision).
    routed.close(drain_timeout=DRAIN_TIMEOUT)
