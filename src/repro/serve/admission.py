"""Bounded in-flight admission control and the unified shed response.

:class:`AdmissionController` started life inside the cluster coordinator
as the per-replica load-shed gate; it now also backs per-*tenant*
admission on both serve tiers, so it lives here and the coordinator
re-exports it. A key is whatever the caller bounds — a replica name, a
tenant name — and ``try_acquire`` optionally takes a per-key depth so
one controller can enforce heterogeneous tenant limits.

:func:`shed_payload` is the single source of truth for 429 bodies:
rate-limit sheds and admission sheds — serve tier and cluster tier —
all share one shape (``error``/``message``/``retry_after``, plus
``tenant`` and/or ``replica`` tags), and the HTTP handlers emit the
``Retry-After`` header from the payload's ``retry_after`` field.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import ClusterError


class AdmissionController:
    """Bounded per-key in-flight accounting (the load-shed gate)."""

    def __init__(self, queue_depth: int) -> None:
        if queue_depth < 1:
            raise ClusterError(f"queue_depth must be >= 1, got {queue_depth}")
        self.queue_depth = queue_depth
        self._lock = threading.Lock()
        self._in_flight: dict[str, int] = {}

    def try_acquire(self, key: str, depth: int | None = None) -> bool:
        """Claim one slot on ``key``; False = saturated, shed now.

        ``depth`` overrides the controller default for this key (e.g. a
        tenant's ``max_in_flight``); ``None`` uses ``queue_depth``.
        """
        bound = self.queue_depth if depth is None else depth
        with self._lock:
            current = self._in_flight.get(key, 0)
            if current >= bound:
                return False
            self._in_flight[key] = current + 1
            return True

    def release(self, key: str) -> None:
        with self._lock:
            current = self._in_flight.get(key, 0)
            self._in_flight[key] = max(0, current - 1)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._in_flight)


def shed_payload(
    message: str,
    retry_after: float,
    tenant: str | None = None,
    replica: str | None = None,
) -> dict[str, Any]:
    """The one 429 body shape every shed path responds with."""
    payload: dict[str, Any] = {
        "error": "overloaded",
        "message": message,
        "retry_after": retry_after,
    }
    if replica is not None:
        payload["replica"] = replica
    if tenant is not None:
        payload["tenant"] = tenant
    return payload
