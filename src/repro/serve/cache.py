"""The serving layer's tier-0 cache (re-export of :mod:`repro.caching`).

:class:`LRUTTLCache` memoizes whole response payloads keyed on
``(config, endpoint, query, params..., index generation)``. It is the
top of the serving cache hierarchy — below it sit the per-session
retrieval cache (memoized seed-query searches) and the candidate-stats
cache, both owned by :class:`~repro.api.Session` and backed by the
*same* implementation. All three tiers are reported by ``/metrics``;
see :mod:`repro.caching` for the eviction/expiration/invalidation
semantics.
"""

from __future__ import annotations

from repro.caching import NO_TTL, LRUTTLCache

__all__ = ["LRUTTLCache", "NO_TTL"]
