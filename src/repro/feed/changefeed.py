"""The changefeed reader: a pure-SQL tail over a store's replication log.

A :class:`Changefeed` reads the ``changelog`` table the
:class:`~repro.store.DocumentStore` writes inside every mutation
transaction (see :mod:`repro.store.schema`). It deliberately opens its
*own* SQLite connection on the store path instead of borrowing a
:class:`DocumentStore` handle:

* the reader works identically in-process (the serving tier's
  ``/changefeed`` endpoint) and out-of-process (a replica tailing the
  coordinator's source store across a process boundary);
* it never touches the store's in-memory mirrors, so it cannot observe
  them mid-update and the store's single-writer assumption is untouched
  (claims are the one tiny write, retried under the store's generous
  ``busy_timeout``);
* under WAL, its read transactions never block the writer.

Each :meth:`Changefeed.read_since` call is one deferred transaction, so
the floor, the log rows, and the generation it reports are a single
consistent snapshot — a concurrent truncation can never silently swallow
generations out of the middle of a batch.

**Materialization**: ``upsert`` records carry ``doc_ids`` only; the
reader joins the ``documents`` table at read time and attaches the
*latest committed* payloads. Replaying an old upsert therefore applies
the newest version of the document — convergent by construction (a later
upsert or delete record re-applies on top) and the log stays O(batch)
small.

**Gap contract**: asking for ``since < changelog_floor`` means the
truncated prefix is gone. That is not an error — the batch comes back
with ``gap=True`` and no entries, telling the consumer to re-hydrate
from a snapshot (whose generation becomes the new ``since``) and resume.

Cursors (:func:`encode_feed_cursor` / :func:`decode_feed_cursor`) are
opaque base64url JSON in the same idiom as the cluster tier's pagination
cursors: self-contained, endpoint-tagged, malformed ones rejected with a
400-mapped error.
"""

from __future__ import annotations

import base64
import binascii
import json
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import FeedError
from repro.store import schema
from repro.store.store import DocumentStore

#: Default (and HTTP-capped) number of log records per read.
DEFAULT_BATCH_LIMIT = 256
MAX_BATCH_LIMIT = 500

#: Tag stamped into feed cursors; decode rejects anything else.
CURSOR_ENDPOINT = "changefeed"


@dataclass(frozen=True)
class FeedEntry:
    """One replication-log record, materialized for application.

    ``documents`` is populated for ``kind="upsert"`` only: the latest
    committed payload of every ``doc_id`` in the batch, as JSON-ready
    mappings (``doc_id``/``kind``/``title``/``fields``/``terms``).
    """

    generation: int
    kind: str  # "upsert" | "delete" | "compact"
    doc_ids: tuple[str, ...]
    payload: Mapping[str, Any] = field(default_factory=dict)
    documents: tuple[Mapping[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "kind": self.kind,
            "doc_ids": list(self.doc_ids),
            "payload": dict(self.payload),
            "documents": [dict(d) for d in self.documents],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FeedEntry":
        try:
            return cls(
                generation=int(raw["generation"]),
                kind=str(raw["kind"]),
                doc_ids=tuple(str(d) for d in raw["doc_ids"]),
                payload=dict(raw.get("payload") or {}),
                documents=tuple(dict(d) for d in raw.get("documents") or ()),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FeedError(f"malformed feed entry: {exc}") from None


@dataclass(frozen=True)
class FeedBatch:
    """One :meth:`Changefeed.read_since` result.

    ``generation`` and ``floor`` are the source's values in the same
    read snapshot as ``entries``. ``gap=True`` means the requested
    ``since`` precedes the floor: the entries are gone, fall back to a
    snapshot. ``exhausted`` is True when the batch reached the source's
    generation (nothing newer existed at read time).
    """

    since: int
    entries: tuple[FeedEntry, ...]
    generation: int
    floor: int
    gap: bool = False

    @property
    def exhausted(self) -> bool:
        return not self.gap and self.last_generation >= self.generation

    @property
    def last_generation(self) -> int:
        """Resume point after applying this batch (``since`` if empty)."""
        return self.entries[-1].generation if self.entries else self.since

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[FeedEntry]:
        return iter(self.entries)


# -- cursors -----------------------------------------------------------------


def encode_feed_cursor(config: str, generation: int) -> str:
    """Mint an opaque resumable cursor for ``config`` at ``generation``."""
    raw = json.dumps(
        {
            "endpoint": CURSOR_ENDPOINT,
            "config": config,
            "generation": int(generation),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return (
        base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii").rstrip("=")
    )


def decode_feed_cursor(token: str) -> dict[str, Any]:
    """Unpack a cursor from :func:`encode_feed_cursor`; 400-shaped on junk."""
    if not isinstance(token, str) or not token:
        raise FeedError("cursor must be a non-empty string")
    try:
        padded = token + "=" * (-len(token) % 4)
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        state = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError):
        raise FeedError("invalid cursor (not a changefeed token)") from None
    if not isinstance(state, dict) or state.get("endpoint") != CURSOR_ENDPOINT:
        raise FeedError("cursor is not a changefeed continuation token")
    generation = state.get("generation")
    if not isinstance(generation, int) or generation < 0:
        raise FeedError("invalid cursor (bad generation)")
    if not isinstance(state.get("config"), str):
        raise FeedError("invalid cursor (missing config)")
    return state


# -- the reader --------------------------------------------------------------


class Changefeed:
    """Resumable reader over one store file's replication log.

    Parameters
    ----------
    source:
        An open :class:`DocumentStore` or a path to one. Either way the
        feed opens its own connection on the file (see module docstring).
    """

    def __init__(self, source: DocumentStore | str | Path) -> None:
        path = source.path if isinstance(source, DocumentStore) else Path(source)
        if not path.exists():
            raise FeedError(f"no document store at {path}")
        self._path = path
        # One shared connection, serialized by a lock: feed reads are a
        # few indexed lookups, and pollers arrive at most a few times a
        # second — simpler than per-thread connection caching and just
        # as fast at this cadence.
        self._conn = sqlite3.connect(
            str(path), check_same_thread=False, isolation_level=None
        )
        schema.configure(self._conn)
        self._lock = threading.Lock()
        self._closed = False

    @property
    def path(self) -> Path:
        return self._path

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "Changefeed":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _meta_int(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise FeedError(
                f"store at {self._path} has no meta key {key!r}; "
                f"is it a repro document store?"
            )
        return int(row[0])

    def generation(self) -> int:
        """The source's current committed generation."""
        with self._lock:
            self._require_open()
            return self._meta_int("generation")

    def floor(self) -> int:
        """The source's changelog floor (see module docstring)."""
        with self._lock:
            self._require_open()
            return self._meta_int("changelog_floor")

    def _require_open(self) -> None:
        if self._closed:
            raise FeedError(f"changefeed over {self._path} is closed")

    def read_since(
        self,
        since: int,
        limit: int = DEFAULT_BATCH_LIMIT,
        consumer: str | None = None,
    ) -> FeedBatch:
        """Log records with ``generation > since``, oldest first.

        ``consumer`` (optional) records a claim *at* ``since`` before
        reading: polling for records past ``since`` attests that
        everything up to it has been applied, which is what bounds
        background truncation. Claims are written even when the read
        then reports a gap — a gapped consumer's claim is stale anyway
        and its post-snapshot poll moves it forward.
        """
        since = int(since)
        if since < 0:
            raise FeedError(f"since must be >= 0, got {since}")
        limit = int(limit)
        if limit < 1:
            raise FeedError(f"limit must be >= 1, got {limit}")
        with self._lock:  # analyze: ignore[LOCK001] - a short indexed read transaction (plus one tiny claim write) on the feed's private connection; the lock just serializes shared-connection access
            self._require_open()
            if consumer:
                self._conn.execute(
                    "INSERT INTO feed_claims (consumer, generation, updated) "
                    "VALUES (?, ?, strftime('%s','now')) "
                    "ON CONFLICT(consumer) DO UPDATE SET "
                    "generation = excluded.generation, "
                    "updated = excluded.updated",
                    (str(consumer), since),
                )
            # One deferred transaction: floor, rows, and generation are a
            # single consistent snapshot, so a racing truncation cannot
            # carve generations out of the middle of this batch.
            self._conn.execute("BEGIN")
            try:
                floor = self._meta_int("changelog_floor")
                generation = self._meta_int("generation")
                if since < floor:
                    return FeedBatch(
                        since=since,
                        entries=(),
                        generation=generation,
                        floor=floor,
                        gap=True,
                    )
                rows = self._conn.execute(
                    "SELECT generation, kind, doc_ids, payload FROM changelog "
                    "WHERE generation > ? ORDER BY generation LIMIT ?",
                    (since, limit),
                ).fetchall()
                entries = tuple(self._materialize(rows))
            finally:
                self._conn.execute("COMMIT")
        return FeedBatch(
            since=since, entries=entries, generation=generation, floor=floor
        )

    def _materialize(self, rows: list[tuple]) -> Iterator[FeedEntry]:
        """Rows → entries, joining upsert doc payloads from ``documents``."""
        for generation, kind, doc_ids_raw, payload_raw in rows:
            doc_ids = tuple(json.loads(doc_ids_raw))
            documents: tuple[Mapping[str, Any], ...] = ()
            if kind == "upsert" and doc_ids:
                placeholders = ",".join("?" * len(doc_ids))
                by_id = {
                    doc_id: {
                        "doc_id": doc_id,
                        "kind": doc_kind,
                        "title": title,
                        "fields": json.loads(fields),
                        "terms": json.loads(terms),
                    }
                    for doc_id, doc_kind, title, fields, terms in self._conn.execute(
                        f"SELECT doc_id, kind, title, fields, terms "
                        f"FROM documents WHERE doc_id IN ({placeholders})",
                        doc_ids,
                    )
                }
                # Document rows are permanent (tombstones keep payloads),
                # so every logged doc_id resolves; order follows the batch.
                documents = tuple(by_id[d] for d in doc_ids if d in by_id)
            yield FeedEntry(
                generation=int(generation),
                kind=str(kind),
                doc_ids=doc_ids,
                payload=json.loads(payload_raw),
                documents=documents,
            )


def resolve_read_args(
    cursor: Any,
    since_raw: Any,
    limit_raw: Any,
    consumer: Any,
) -> tuple[int, int, str | None]:
    """Normalize the ``/changefeed`` HTTP parameters → ``read_since`` args.

    One parser for both fronts (the serve tier and the cluster
    coordinator), so their accepted parameters cannot drift. Raises
    :class:`FeedError` (HTTP 400) on conflicts and malformed values.
    """
    if cursor is not None and since_raw is not None:
        raise FeedError("pass either 'since' or 'cursor', not both")
    if cursor is not None:
        since = int(decode_feed_cursor(str(cursor))["generation"])
    else:
        try:
            since = int(since_raw) if since_raw is not None else 0
        except (TypeError, ValueError):
            raise FeedError(
                f"since must be an integer generation, got {since_raw!r}"
            ) from None
    try:
        limit = int(limit_raw) if limit_raw is not None else DEFAULT_BATCH_LIMIT
    except (TypeError, ValueError):
        raise FeedError(f"limit must be an integer, got {limit_raw!r}") from None
    if not 1 <= limit <= MAX_BATCH_LIMIT:
        raise FeedError(f"limit must be in 1..{MAX_BATCH_LIMIT}, got {limit}")
    return since, limit, str(consumer) if consumer else None


def batch_to_payload(
    config: str, batch: FeedBatch, limit: int
) -> dict[str, Any]:
    """The JSON body both ``/changefeed`` endpoints (serve + cluster) emit.

    Shape (see API.md: Changefeed)::

        {"config", "since", "generation", "floor", "count", "gap",
         "entries": [...], "next_cursor", "exhausted"}

    ``next_cursor`` resumes after this batch; on a gap it resumes at the
    *floor* — valid only once the client has re-hydrated from a snapshot
    at or past that generation.
    """
    resume = batch.floor if batch.gap else batch.last_generation
    payload: dict[str, Any] = {
        "config": config,
        "since": batch.since,
        "generation": batch.generation,
        "floor": batch.floor,
        "count": len(batch.entries),
        "gap": batch.gap,
        "limit": limit,
        "entries": [entry.to_dict() for entry in batch.entries],
        "next_cursor": encode_feed_cursor(config, resume),
        "exhausted": batch.exhausted,
    }
    if batch.gap:
        payload["message"] = (
            f"generations {batch.since + 1}..{batch.floor} were truncated "
            f"by compaction; re-hydrate from a snapshot (generation >= "
            f"{batch.floor}) and resume from its generation"
        )
    return payload
