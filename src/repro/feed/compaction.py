"""``CompactionScheduler`` — background tombstone compaction + log GC.

The scheduler closes the loop the changelog opens: mutations append log
records forever, so *something* has to (a) drop tombstoned postings once
enough deletes accumulate and (b) truncate the applied prefix of the
changelog so the store file stops growing. Both run on one daemon thread
that ticks every ``interval`` seconds; the actual compaction runs inside
the store's ordinary write transaction, so writers are only briefly
serialized (one transaction, no VACUUM by default) and readers never
block at all (WAL).

Trigger: compact when ``tombstones >= min_tombstones`` AND
``tombstone_ratio >= ratio`` — an absolute floor so tiny stores don't
thrash, a ratio so big stores compact proportionally (the classic
LSM-style dual trigger).

Truncation is claim-bounded: the changelog is only dropped up to
``min(slowest claim, generation - keep)``, so an attached tailer that is
merely *slow* keeps its history, while one that fell behind the keep
window (or never claimed) gets a gap signal and falls back to a
snapshot — exactly the contract :class:`~repro.feed.FeedTailer`
implements.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import FeedError
from repro.store.store import DocumentStore


class CompactionScheduler:
    """Periodically compact ``store`` and truncate its changelog.

    Parameters
    ----------
    store:
        The open :class:`DocumentStore` to maintain (not closed here).
    interval:
        Seconds between trigger checks.
    min_tombstones / tombstone_ratio:
        Dual compaction trigger (both must hold).
    changelog_keep:
        Always retain at least this many trailing log records, even with
        no registered consumers — a reconnecting tailer with a recent
        cursor should not need a snapshot just because it blinked.
    vacuum:
        Pass-through to :meth:`DocumentStore.compact`; off by default
        because VACUUM rewrites the whole file and blocks writers.
    """

    def __init__(
        self,
        store: DocumentStore,
        *,
        interval: float = 5.0,
        min_tombstones: int = 8,
        tombstone_ratio: float = 0.2,
        changelog_keep: int = 64,
        vacuum: bool = False,
    ) -> None:
        if interval <= 0:
            raise FeedError(f"interval must be > 0, got {interval}")
        if not 0.0 < tombstone_ratio <= 1.0:
            raise FeedError(
                f"tombstone_ratio must be in (0, 1], got {tombstone_ratio}"
            )
        if min_tombstones < 1:
            raise FeedError(
                f"min_tombstones must be >= 1, got {min_tombstones}"
            )
        if changelog_keep < 0:
            raise FeedError(
                f"changelog_keep must be >= 0, got {changelog_keep}"
            )
        self._store = store
        self._interval = float(interval)
        self._min_tombstones = int(min_tombstones)
        self._ratio = float(tombstone_ratio)
        self._keep = int(changelog_keep)
        self._vacuum = bool(vacuum)
        self._lock = threading.Lock()
        self._ticks = 0
        self._compactions = 0
        self._truncated_entries = 0
        self._last_error: str | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "ticks": self._ticks,
                "compactions": self._compactions,
                "truncated_entries": self._truncated_entries,
                "last_error": self._last_error,
                "interval": self._interval,
                "min_tombstones": self._min_tombstones,
                "tombstone_ratio": self._ratio,
                "changelog_keep": self._keep,
                "running": self.running,
            }

    def run_once(self) -> dict[str, Any]:
        """One trigger check (synchronous; what each tick runs).

        Returns ``{"compacted": bool, "truncated": int}``. All store
        work runs outside the stats lock.
        """
        stats = self._store.stats()
        compacted = False
        if (
            stats["tombstones"] >= self._min_tombstones
            and stats["tombstone_ratio"] >= self._ratio
        ):
            self._store.compact(vacuum=self._vacuum)
            compacted = True
        truncated = self._truncate()
        with self._lock:
            self._ticks += 1
            if compacted:
                self._compactions += 1
            self._truncated_entries += truncated
        return {"compacted": compacted, "truncated": truncated}

    def _truncate(self) -> int:
        """Drop the applied changelog prefix (claim- and keep-bounded)."""
        generation = self._store.generation
        upto = generation - self._keep
        claims = self._store.claims()
        if claims:
            upto = min(upto, min(claims.values()))
        if upto <= self._store.changelog_floor:
            return 0
        return self._store.truncate_changelog(upto)

    # analyze: ignore[GUARD001] - _stop_event is a threading.Event (internally synchronized); the loop polls it lock-free by design
    def _loop(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                self.run_once()
            except Exception as exc:  # keep ticking; surface via stats
                with self._lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"

    def start(self) -> "CompactionScheduler":
        """Start the background tick loop (daemon thread); idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-feed-compactor", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        thread = self._thread  # analyze: ignore[GUARD001] - lock-free liveness probe; the binding is replaced atomically (GIL)
        return thread is not None and thread.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()  # analyze: ignore[GUARD001] - threading.Event is internally synchronized
        thread = self._thread  # analyze: ignore[GUARD001] - lock-free read of an atomically replaced binding; join must not run under the stats lock
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
