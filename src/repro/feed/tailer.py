"""``FeedTailer`` — apply a changefeed incrementally to a mutable backend.

The tailer is the consumer half of the replication subsystem: it polls a
:class:`~repro.feed.changefeed.Changefeed` for records past its applied
generation and replays each one onto a mutable index backend (anything
with the ``add_all`` / ``remove`` / ``store`` surface of
:class:`~repro.store.SQLiteIndexBackend`). Cluster replicas run one per
followed config so they converge on the coordinator's source store by
deltas instead of snapshot re-hydration.

Guarantees, in the order they matter:

* **exactly-once per generation** — an entry with
  ``generation <= applied`` is skipped, so overlapping reads after a
  crash/retry never double-apply a batch;
* **crash isolation** — an exception while applying a batch leaves
  ``applied`` where it was, increments ``errors``, and the loop retries
  after the poll interval; a buggy consumer cannot wedge the feed or
  skip generations;
* **gap handling** — a ``gap`` batch (the log prefix was truncated by
  compaction) invokes the ``on_gap`` callback; the callback re-hydrates
  from a snapshot and returns the snapshot's generation to resume from,
  or ``None`` to stop the tailer. Without a callback the tailer stops
  and reports ``gap`` status.

Applying an entry is convergent because upsert records carry the
*latest* committed payloads (see :mod:`repro.feed.changefeed`): replaying
``upsert d1`` after ``d1`` was later rewritten applies the newest
version, and the later record re-applies it — same fixed point.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping, Protocol

from repro.data.documents import Document
from repro.errors import FeedError, StoreError
from repro.feed.changefeed import (
    DEFAULT_BATCH_LIMIT,
    Changefeed,
    FeedBatch,
    FeedEntry,
)


class MutableBackend(Protocol):
    """The slice of the backend surface the tailer needs."""

    def add_all(self, documents: Any) -> list[int]: ...

    def remove(self, target: str | int) -> int: ...


def _entry_document(raw: Mapping[str, Any]) -> Document:
    """A materialized feed document payload → :class:`Document`."""
    return Document(
        doc_id=str(raw["doc_id"]),
        terms={str(t): int(c) for t, c in dict(raw["terms"]).items()},
        kind=str(raw.get("kind", "text")),
        title=str(raw.get("title", "")),
        fields=dict(raw.get("fields") or {}),
    )


def apply_entry(entry: FeedEntry, backend: Any) -> None:
    """Replay one log record onto ``backend`` (idempotently).

    ``upsert`` re-adds the materialized documents; ``delete`` tombstones
    each doc_id (already-deleted and never-seen ids are fine — the
    source's later records cover them); ``compact`` compacts the local
    store if the backend has one (without VACUUM: replicas are
    short-lived and the rewrite cost isn't worth it on the apply path).
    """
    if entry.kind == "upsert":
        if entry.documents:
            backend.add_all([_entry_document(d) for d in entry.documents])
    elif entry.kind == "delete":
        store = getattr(backend, "store", None)
        if store is not None:
            # One log record -> one local transaction, so the replica's
            # generation advances in lockstep with the source's and the
            # coordinator's lag arithmetic stays exact. Ids the local
            # store never saw live (possible only when replaying history
            # the exactly-once guard normally skips) are no-ops.
            live = [doc_id for doc_id in entry.doc_ids if doc_id in store]
            if live:
                store.delete_all(live)
        else:
            for doc_id in entry.doc_ids:
                try:
                    backend.remove(doc_id)
                except StoreError:
                    # Already tombstoned locally, or the doc was upserted
                    # and deleted inside a truncated-then-replayed window;
                    # the state we converge to is "deleted" either way.
                    pass
    elif entry.kind == "compact":
        store = getattr(backend, "store", None)
        if store is not None:
            store.compact(vacuum=False)
    else:
        raise FeedError(f"unknown changelog record kind: {entry.kind!r}")


class FeedTailer:
    """Poll a changefeed and keep a mutable backend converged.

    Parameters
    ----------
    feed:
        The :class:`Changefeed` to read (not closed by the tailer).
    backend:
        The mutable backend to apply entries to.
    start_after:
        The generation the backend already reflects (its hydration
        snapshot's generation); only records past it are applied.
    consumer:
        Optional claim name; when set, every poll records the applied
        generation in the source's ``feed_claims`` table so compaction
        will not truncate records this tailer still needs.
    on_gap:
        ``callback(tailer, batch) -> int | None``; see module docstring.
    tracer:
        Optional :class:`repro.obs.Tracer`; each non-empty apply batch
        becomes a ``feed.apply`` root trace (with per-entry counts), so
        background maintenance shows up in ``/debug/traces`` and the
        slow log alongside request traffic.
    """

    def __init__(
        self,
        feed: Changefeed,
        backend: Any,
        *,
        start_after: int = 0,
        consumer: str | None = None,
        poll_interval: float = 0.2,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        on_gap: Callable[["FeedTailer", FeedBatch], int | None] | None = None,
        tracer: Any = None,
    ) -> None:
        if poll_interval <= 0:
            raise FeedError(f"poll_interval must be > 0, got {poll_interval}")
        self._feed = feed
        self._backend = backend
        self._consumer = consumer
        self._tracer = tracer
        self._poll_interval = float(poll_interval)
        self._batch_limit = int(batch_limit)
        self._on_gap = on_gap
        self._lock = threading.Lock()
        self._applied = int(start_after)
        self._source_generation = self._applied
        self._batches = 0
        self._entries_applied = 0
        self._errors = 0
        self._snapshot_fallbacks = 0
        self._last_error: str | None = None
        self._status = "idle"  # idle | running | stopped | gap
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- introspection -------------------------------------------------------

    @property
    def applied(self) -> int:
        """Newest source generation the backend reflects."""
        with self._lock:
            return self._applied

    @property
    def lag(self) -> int:
        """Generations between the source and this tailer (>= 0)."""
        with self._lock:
            return max(0, self._source_generation - self._applied)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "applied": self._applied,
                "source_generation": self._source_generation,
                "lag": max(0, self._source_generation - self._applied),
                "batches": self._batches,
                "entries_applied": self._entries_applied,
                "errors": self._errors,
                "snapshot_fallbacks": self._snapshot_fallbacks,
                "last_error": self._last_error,
                "status": self._status,
                "consumer": self._consumer,
            }

    # -- the apply loop ------------------------------------------------------

    def run_once(self) -> FeedBatch:
        """One poll-and-apply step; returns the batch it saw.

        All sqlite and backend work runs outside the stats lock — the
        lock only guards the counters (see repro.devtools LOCK001).
        """
        with self._lock:
            since = self._applied
        batch = self._feed.read_since(
            since, limit=self._batch_limit, consumer=self._consumer
        )
        with self._lock:
            self._source_generation = batch.generation
        if batch.gap:
            self._handle_gap(batch)
            return batch
        applied_now = 0
        if len(batch.entries) and self._tracer is not None:
            # A root trace per non-empty batch: background maintenance
            # is visible in /debug/traces next to request traffic.
            with self._tracer.request(
                "feed.apply",
                consumer=self._consumer,
                entries=len(batch.entries),
                since=since,
            ) as root:
                applied_now = self._apply_entries(batch, since)
                if root is not None:
                    root.set_attr("applied", applied_now)
        else:
            applied_now = self._apply_entries(batch, since)
        with self._lock:
            self._batches += 1
        return batch

    def _apply_entries(self, batch: FeedBatch, since: int) -> int:
        applied_now = 0
        for entry in batch:
            if entry.generation <= since:
                continue  # exactly-once: never re-apply a generation
            apply_entry(entry, self._backend)
            since = entry.generation
            applied_now += 1
            with self._lock:
                self._applied = entry.generation
                self._entries_applied += 1
        return applied_now

    # analyze: ignore[GUARD001] - _stop_event is a threading.Event (internally synchronized); signaling it outside the stats lock is deliberate
    def _handle_gap(self, batch: FeedBatch) -> None:
        with self._lock:
            self._snapshot_fallbacks += 1
        if self._on_gap is None:
            with self._lock:
                self._status = "gap"
            self._stop_event.set()
            return
        resume_at = self._on_gap(self, batch)
        if resume_at is None:
            with self._lock:
                self._status = "gap"
            self._stop_event.set()
            return
        with self._lock:
            self._applied = int(resume_at)

    def catch_up(self, deadline: float | None = None) -> int:
        """Synchronously apply until exhausted; returns entries applied.

        Intended for tests and the CLI's bounded ``tail`` mode, not the
        background loop.
        """
        import time

        applied_before = self.stats()["entries_applied"]
        while True:
            batch = self.run_once()
            if batch.gap or batch.exhausted:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
        return self.stats()["entries_applied"] - applied_before

    # analyze: ignore[GUARD001] - _stop_event is a threading.Event (internally synchronized); the loop polls it lock-free by design
    def _loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                batch = self.run_once()
            except Exception as exc:  # crash isolation: note it, retry
                with self._lock:
                    self._errors += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
                self._stop_event.wait(self._poll_interval)
                continue
            if batch.gap or batch.exhausted:
                # Caught up (or waiting on a snapshot): idle-poll.
                self._stop_event.wait(self._poll_interval)
        with self._lock:
            if self._status != "gap":
                self._status = "stopped"

    def start(self) -> "FeedTailer":
        """Start the background apply loop (daemon thread); idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._status = "running"
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-feed-tailer", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        thread = self._thread  # analyze: ignore[GUARD001] - lock-free liveness probe; the binding is replaced atomically (GIL)
        return thread is not None and thread.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the loop to exit and join it."""
        self._stop_event.set()  # analyze: ignore[GUARD001] - threading.Event is internally synchronized
        thread = self._thread  # analyze: ignore[GUARD001] - lock-free read of an atomically replaced binding; join must not run under the stats lock
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)
