"""``repro.feed`` — durable changefeed and incremental replica maintenance.

The replication subsystem over :mod:`repro.store`: every committed
mutation batch leaves a generation-stamped record in the store file's
``changelog`` table (written in the same transaction as the data, so
log and data commit atomically). This package provides the three actors
around that log:

* :class:`Changefeed` — a resumable reader (``read_since``), with opaque
  cursors and gap detection after compaction;
* :class:`FeedTailer` — a consumer loop that applies records to a
  mutable index backend exactly-once per generation, with crash
  isolation and snapshot fallback on gaps;
* :class:`CompactionScheduler` — a background thread that compacts
  tombstones on a dual trigger and truncates the applied (claim-bounded)
  changelog prefix.

Together they make the cluster tier's replicas *maintainable*: the
coordinator's ``/ingest`` writes to the source store, and replicas
converge by tailing deltas instead of snapshot re-hydration.
"""

from repro.feed.changefeed import (
    DEFAULT_BATCH_LIMIT,
    MAX_BATCH_LIMIT,
    Changefeed,
    FeedBatch,
    FeedEntry,
    batch_to_payload,
    decode_feed_cursor,
    encode_feed_cursor,
)
from repro.feed.compaction import CompactionScheduler
from repro.feed.tailer import FeedTailer, apply_entry

__all__ = [
    "DEFAULT_BATCH_LIMIT",
    "MAX_BATCH_LIMIT",
    "Changefeed",
    "FeedBatch",
    "FeedEntry",
    "FeedTailer",
    "CompactionScheduler",
    "apply_entry",
    "batch_to_payload",
    "decode_feed_cursor",
    "encode_feed_cursor",
]
