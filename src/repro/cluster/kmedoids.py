"""K-medoids clustering with cluster representatives (related work [1]).

[1] ("Using Trees to Depict a Forest") generates one *representative* per
cluster using k-medoids — an actual member of the cluster rather than a
synthetic centroid. For query expansion this matters twice: the medoid is
a presentable exemplar of the cluster, and medoid-based clustering is
robust to the outlier results that ambiguous queries drag in.

The implementation is a deterministic PAM-style alternation over cosine
distance: assign every point to its nearest medoid, then move each medoid
to the member minimizing the within-cluster distance sum, until fixed
point or ``max_iter``. Initialization is k-means++-style D² seeding with
an explicit RNG seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.similarity import cosine_similarity_matrix
from repro.errors import ClusteringError


@dataclass(frozen=True)
class KMedoidsResult:
    """Labels plus the medoid row index of each cluster."""

    labels: np.ndarray
    medoids: tuple[int, ...]
    inertia: float  # total point-to-medoid cosine distance
    n_iter: int


class KMedoids:
    """PAM-style k-medoids over cosine distance.

    Parameters
    ----------
    n_clusters:
        Number of clusters (>= 1); capped at the point count on ``fit``.
    seed:
        RNG seed for the D² initialization.
    max_iter:
        Upper bound on assign/update alternations.
    """

    def __init__(self, n_clusters: int, seed: int = 0, max_iter: int = 50) -> None:
        if n_clusters < 1:
            raise ClusteringError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ClusteringError(f"max_iter must be >= 1, got {max_iter}")
        self._k = n_clusters
        self._seed = seed
        self._max_iter = max_iter

    def fit(self, matrix: np.ndarray) -> KMedoidsResult:
        """Cluster the rows of ``matrix`` (n_points x n_features)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ClusteringError(f"bad matrix shape {matrix.shape}")
        n = matrix.shape[0]
        k = min(self._k, n)
        distances = 1.0 - cosine_similarity_matrix(matrix)
        np.fill_diagonal(distances, 0.0)
        np.clip(distances, 0.0, None, out=distances)

        medoids = self._init_medoids(distances, n, k)
        labels = np.argmin(distances[:, medoids], axis=1)
        n_iter = 0
        for n_iter in range(1, self._max_iter + 1):
            new_medoids = list(medoids)
            for ci in range(k):
                members = np.nonzero(labels == ci)[0]
                if members.size == 0:
                    continue
                within = distances[np.ix_(members, members)].sum(axis=1)
                new_medoids[ci] = int(members[int(np.argmin(within))])
            new_medoids_arr = np.array(sorted(set(new_medoids)), dtype=np.int64)
            if new_medoids_arr.size < k:
                # Two clusters collapsed onto one medoid; keep the old set.
                new_medoids_arr = np.asarray(medoids)
            new_labels = np.argmin(distances[:, new_medoids_arr], axis=1)
            if (
                new_medoids_arr.shape == np.asarray(medoids).shape
                and np.array_equal(new_medoids_arr, medoids)
                and np.array_equal(new_labels, labels)
            ):
                break
            medoids = new_medoids_arr
            labels = new_labels
        inertia = float(
            distances[np.arange(n), np.asarray(medoids)[labels]].sum()
        )
        return KMedoidsResult(
            labels=labels.astype(np.int64),
            medoids=tuple(int(m) for m in medoids),
            inertia=inertia,
            n_iter=n_iter,
        )

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        """Clustering-backend interface: labels only."""
        return self.fit(matrix).labels

    def _init_medoids(
        self, distances: np.ndarray, n: int, k: int
    ) -> np.ndarray:
        """k-means++-style D² seeding over the distance matrix."""
        rng = np.random.default_rng(self._seed)
        first = int(rng.integers(n))
        medoids = [first]
        while len(medoids) < k:
            closest = distances[:, medoids].min(axis=1)
            total = closest.sum()
            if total <= 0.0:
                # All remaining points coincide with a medoid: pick the
                # lowest unused index for determinism.
                unused = [i for i in range(n) if i not in medoids]
                medoids.append(unused[0])
                continue
            probs = closest / total
            medoids.append(int(rng.choice(n, p=probs)))
        return np.array(sorted(set(medoids)), dtype=np.int64)


def cluster_representatives(
    result: KMedoidsResult,
) -> dict[int, int]:
    """Map cluster label → medoid row index (the [1]-style representative)."""
    return {ci: m for ci, m in enumerate(result.medoids)}
