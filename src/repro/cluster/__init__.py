"""Clustering substrate: TF vector space, cosine k-means, agglomerative.

The paper clusters seed-query results with k-means over TF vectors under
cosine similarity (§C). Clustering is pluggable — any
``ClusteringBackend`` can be passed to the expansion pipeline, supporting
the paper's future-work question of how clustering methods affect the
expanded queries.
"""

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.bisecting import BisectingKMeans
from repro.cluster.kmeans import CosineKMeans, KMeansResult
from repro.cluster.kmedoids import KMedoids, KMedoidsResult, cluster_representatives
from repro.cluster.kselect import AdaptiveKClusterer, KSelection, choose_k
from repro.cluster.quality import (
    normalized_mutual_information,
    purity,
    silhouette_score,
)
from repro.cluster.selection import AutoClustering, default_backends
from repro.cluster.similarity import cosine_similarity, cosine_similarity_matrix
from repro.cluster.vectorizer import TfVectorizer

__all__ = [
    "AdaptiveKClusterer",
    "AgglomerativeClustering",
    "AutoClustering",
    "BisectingKMeans",
    "CosineKMeans",
    "KMeansResult",
    "KMedoids",
    "KMedoidsResult",
    "KSelection",
    "TfVectorizer",
    "cosine_similarity",
    "choose_k",
    "cluster_representatives",
    "cosine_similarity_matrix",
    "default_backends",
    "normalized_mutual_information",
    "purity",
    "silhouette_score",
]
