"""Cosine similarity helpers."""

from __future__ import annotations

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two 1-D vectors; 0.0 if either is a zero vector."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def cosine_similarity_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity of the rows of ``matrix``.

    Zero rows yield zero similarity with everything (including themselves).
    """
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = norms.copy()
    safe[safe == 0.0] = 1.0
    unit = matrix / safe
    sims = unit @ unit.T
    zero = (norms == 0.0).ravel()
    sims[zero, :] = 0.0
    sims[:, zero] = 0.0
    return sims
