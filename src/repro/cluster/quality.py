"""Clustering-quality measures: purity, NMI (external), silhouette
(internal).

Used by tests and benchmarks to check that the synthetic corpora cluster the
way the paper's data does (near-separable shopping categories, noisier
Wikipedia senses), and by the dynamic clustering selector (§7 future work)
to pick a backend without ground truth.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

from repro.cluster.similarity import cosine_similarity_matrix


def purity(labels: Sequence[int], truth: Sequence[int]) -> float:
    """Fraction of points whose cluster's majority truth class matches theirs."""
    if len(labels) != len(truth):
        raise ValueError("labels and truth must have equal length")
    if not labels:
        raise ValueError("purity of an empty clustering is undefined")
    by_cluster: dict[int, Counter] = {}
    for lab, t in zip(labels, truth):
        by_cluster.setdefault(lab, Counter())[t] += 1
    correct = sum(counts.most_common(1)[0][1] for counts in by_cluster.values())
    return correct / len(labels)


def normalized_mutual_information(labels: Sequence[int], truth: Sequence[int]) -> float:
    """NMI with arithmetic-mean normalization; 1.0 for identical partitions.

    Returns 1.0 when both partitions are single-cluster (zero entropy on both
    sides means they trivially agree), and 0.0 when exactly one side has zero
    entropy.
    """
    if len(labels) != len(truth):
        raise ValueError("labels and truth must have equal length")
    n = len(labels)
    if n == 0:
        raise ValueError("NMI of an empty clustering is undefined")
    joint: Counter = Counter(zip(labels, truth))
    left: Counter = Counter(labels)
    right: Counter = Counter(truth)

    def entropy(counts: Counter) -> float:
        h = 0.0
        for c in counts.values():
            p = c / n
            h -= p * math.log(p)
        return h

    h_left = entropy(left)
    h_right = entropy(right)
    if h_left == 0.0 and h_right == 0.0:
        return 1.0
    if h_left == 0.0 or h_right == 0.0:
        return 0.0
    mi = 0.0
    for (a, b), c in joint.items():
        p_ab = c / n
        mi += p_ab * math.log(p_ab / ((left[a] / n) * (right[b] / n)))
    return mi / ((h_left + h_right) / 2.0)


def silhouette_score(matrix: np.ndarray, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient under cosine distance (1 - similarity).

    For each point: a = mean distance to its own cluster's other members,
    b = lowest mean distance to another cluster; s = (b - a) / max(a, b).
    Singleton clusters contribute s = 0 (scikit-learn's convention). A
    single-cluster labeling is undefined and raises ValueError.
    """
    labels_arr = np.asarray(labels, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != labels_arr.shape[0]:
        raise ValueError("matrix rows and labels must align")
    cluster_ids = sorted(set(int(lab) for lab in labels_arr))
    if len(cluster_ids) < 2:
        raise ValueError("silhouette needs at least 2 clusters")
    dist = 1.0 - cosine_similarity_matrix(matrix)
    scores = np.zeros(matrix.shape[0])
    members = {c: np.flatnonzero(labels_arr == c) for c in cluster_ids}
    for i in range(matrix.shape[0]):
        own = members[int(labels_arr[i])]
        if own.size <= 1:
            scores[i] = 0.0
            continue
        a = float(dist[i, own].sum() / (own.size - 1))  # excludes self (0)
        b = math.inf
        for c in cluster_ids:
            if c == int(labels_arr[i]):
                continue
            other = members[c]
            b = min(b, float(dist[i, other].mean()))
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0.0 else (b - a) / denom
    return float(scores.mean())
