"""TF vector-space model over a set of documents.

Each result is modeled as a vector whose components are the features/terms
in the results, weighted by term frequency (§C). Vectors are L2-normalized
so that dot products are cosine similarities.
"""

from __future__ import annotations

import numpy as np

from repro.data.documents import Document
from repro.errors import ClusteringError


class TfVectorizer:
    """Builds the term-frequency matrix for a fixed list of documents.

    The vocabulary is the union of the documents' terms, in sorted order for
    determinism. ``matrix()`` returns an ``(n_docs, n_terms)`` float array of
    L2-normalized TF weights.
    """

    def __init__(self, documents: list[Document], sublinear_tf: bool = False) -> None:
        if not documents:
            raise ClusteringError("cannot vectorize an empty document list")
        self._documents = documents
        self._sublinear = sublinear_tf
        vocab = sorted({t for doc in documents for t in doc.terms})
        self._vocab = vocab
        self._term_index = {t: i for i, t in enumerate(vocab)}
        self._matrix = self._build()

    def _build(self) -> np.ndarray:
        mat = np.zeros((len(self._documents), len(self._vocab)), dtype=np.float64)
        for row, doc in enumerate(self._documents):
            for term, tf in doc.terms.items():
                weight = 1.0 + np.log(tf) if self._sublinear else float(tf)
                mat[row, self._term_index[term]] = weight
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return mat / norms

    @property
    def vocabulary(self) -> list[str]:
        return list(self._vocab)

    @property
    def documents(self) -> list[Document]:
        return list(self._documents)

    def matrix(self) -> np.ndarray:
        """The (n_docs, n_terms) L2-normalized TF matrix (a copy)."""
        return self._matrix.copy()

    def vector(self, row: int) -> np.ndarray:
        """The normalized TF vector of document ``row`` (a copy)."""
        return self._matrix[row].copy()

    def term_column(self, term: str) -> int:
        """Column index of ``term``; raises if the term is not in vocabulary."""
        try:
            return self._term_index[term]
        except KeyError:
            raise ClusteringError(f"term not in vectorizer vocabulary: {term!r}") from None
