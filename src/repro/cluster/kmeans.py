"""Spherical k-means: k-means over L2-normalized TF vectors (cosine).

This is the clustering method of the paper's experimental setup (§C):
"We adopt k-means for result clustering ... the similarity of two results is
the cosine similarity of the vectors." With unit-norm inputs, maximizing
cosine similarity to the centroid equals minimizing Euclidean distance, and
re-normalizing centroids each round yields the classic spherical k-means.

``k`` is an *upper bound* on the number of clusters, mirroring §1 ("k is an
upper bound specified by the user"): empty clusters are dropped, so the
result may have fewer clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    ``labels[i]`` is the cluster id of point i (ids are 0..n_clusters-1 with
    no gaps); ``centroids`` has one unit-norm row per surviving cluster;
    ``inertia`` is the total cosine dissimilarity (n - sum of similarities);
    ``iterations`` is the number of Lloyd rounds performed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    def members(self, cluster_id: int) -> list[int]:
        """Point indices belonging to ``cluster_id``."""
        return [int(i) for i in np.flatnonzero(self.labels == cluster_id)]

    def clusters(self) -> list[list[int]]:
        """All clusters as lists of point indices."""
        return [self.members(c) for c in range(self.n_clusters)]


class CosineKMeans:
    """Spherical k-means with k-means++-style seeding.

    Parameters
    ----------
    n_clusters:
        Upper bound k on the number of clusters.
    max_iter:
        Maximum Lloyd iterations per restart.
    n_init:
        Number of seeded restarts; the run with lowest inertia wins.
    seed:
        RNG seed; identical inputs and seed give identical output.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 50,
        n_init: int = 4,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ClusteringError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ClusteringError(f"max_iter must be >= 1, got {max_iter}")
        if n_init < 1:
            raise ClusteringError(f"n_init must be >= 1, got {n_init}")
        self._k = n_clusters
        self._max_iter = max_iter
        self._n_init = n_init
        self._seed = seed

    def fit(self, matrix: np.ndarray) -> KMeansResult:
        """Cluster the rows of ``matrix`` (assumed L2-normalized)."""
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ClusteringError("matrix must be a non-empty 2-D array")
        n = matrix.shape[0]
        k = min(self._k, n)
        rng = np.random.default_rng(self._seed)
        best: KMeansResult | None = None
        for _ in range(self._n_init):
            result = self._run_once(matrix, k, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    # -- internals --------------------------------------------------------

    @staticmethod
    def _seed_centroids(matrix: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding adapted to cosine dissimilarity (1 - sim)."""
        n = matrix.shape[0]
        chosen = [int(rng.integers(n))]
        dissim = 1.0 - matrix @ matrix[chosen[0]]
        dissim = np.clip(dissim, 0.0, None)
        while len(chosen) < k:
            total = float(dissim.sum())
            if total <= 1e-12:
                # All points coincide with a centroid; pick uniformly.
                candidates = [i for i in range(n) if i not in set(chosen)]
                chosen.append(int(rng.choice(candidates)))
            else:
                probs = dissim / total
                chosen.append(int(rng.choice(n, p=probs)))
            new_d = 1.0 - matrix @ matrix[chosen[-1]]
            dissim = np.minimum(dissim, np.clip(new_d, 0.0, None))
        return matrix[chosen].copy()

    def _run_once(
        self, matrix: np.ndarray, k: int, rng: np.random.Generator
    ) -> KMeansResult:
        centroids = self._seed_centroids(matrix, k, rng)
        labels = np.zeros(matrix.shape[0], dtype=np.int64)
        iterations = 0
        for iterations in range(1, self._max_iter + 1):
            sims = matrix @ centroids.T
            new_labels = np.argmax(sims, axis=1)
            new_centroids = centroids.copy()
            for c in range(k):
                members = matrix[new_labels == c]
                if members.shape[0] == 0:
                    continue
                mean = members.mean(axis=0)
                norm = np.linalg.norm(mean)
                if norm > 0:
                    new_centroids[c] = mean / norm
            if np.array_equal(new_labels, labels) and iterations > 1:
                centroids = new_centroids
                break
            labels = new_labels
            centroids = new_centroids
        labels, centroids = _compact(labels, centroids)
        sims = matrix @ centroids.T
        inertia = float(matrix.shape[0] - sims[np.arange(matrix.shape[0]), labels].sum())
        return KMeansResult(
            labels=labels, centroids=centroids, inertia=inertia, iterations=iterations
        )


def _compact(labels: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop empty clusters and renumber labels to 0..m-1."""
    used = np.unique(labels)
    remap = {int(old): new for new, old in enumerate(used)}
    new_labels = np.array([remap[int(lab)] for lab in labels], dtype=np.int64)
    return new_labels, centroids[used]
