"""Bisecting k-means: repeated 2-way spherical splits.

A third clustering backend for the paper's future-work study (§7). Starts
with one cluster and repeatedly bisects the cluster with the largest
cosine inertia using 2-means, until ``n_clusters`` clusters exist.
Bisecting k-means is known to produce more balanced, hierarchical-like
partitions than plain k-means on text data.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import CosineKMeans
from repro.errors import ClusteringError


class BisectingKMeans:
    """Top-down spherical clustering to at most ``n_clusters`` clusters."""

    def __init__(self, n_clusters: int, seed: int = 0, n_init: int = 3) -> None:
        if n_clusters < 1:
            raise ClusteringError(f"n_clusters must be >= 1, got {n_clusters}")
        self._k = n_clusters
        self._seed = seed
        self._n_init = n_init

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ClusteringError("matrix must be a non-empty 2-D array")
        n = matrix.shape[0]
        k = min(self._k, n)
        labels = np.zeros(n, dtype=np.int64)
        inertias = {0: self._inertia(matrix)}
        frozen: set[int] = set()  # clusters 2-means could not split
        next_id = 1
        round_no = 0
        while len(inertias) < k:
            round_no += 1
            # Split the cluster with the largest inertia that is splittable.
            splittable = [
                cid for cid, _ in sorted(inertias.items(), key=lambda kv: -kv[1])
                if cid not in frozen and int((labels == cid).sum()) >= 2
            ]
            if not splittable:
                break
            target = splittable[0]
            rows = np.flatnonzero(labels == target)
            sub = matrix[rows]
            result = CosineKMeans(
                n_clusters=2,
                seed=self._seed + round_no,
                n_init=self._n_init,
            ).fit(sub)
            if result.n_clusters < 2:
                # Coincident points: cannot split; never try again.
                frozen.add(target)
                continue
            moved = rows[result.labels == 1]
            labels[moved] = next_id
            inertias[target] = self._inertia(matrix[labels == target])
            inertias[next_id] = self._inertia(matrix[labels == next_id])
            next_id += 1
        return self._compact(labels)

    @staticmethod
    def _inertia(rows: np.ndarray) -> float:
        """Total cosine dissimilarity of rows to their normalized mean."""
        if rows.shape[0] == 0:
            return 0.0
        mean = rows.mean(axis=0)
        norm = np.linalg.norm(mean)
        if norm == 0.0:
            return float(rows.shape[0])
        centroid = mean / norm
        return float(rows.shape[0] - (rows @ centroid).sum())

    @staticmethod
    def _compact(labels: np.ndarray) -> np.ndarray:
        used = sorted(set(int(lab) for lab in labels))
        remap = {old: new for new, old in enumerate(used)}
        return np.array([remap[int(lab)] for lab in labels], dtype=np.int64)
