"""Dynamic choice of the cluster count k (paper §1: k is an *upper bound*).

"we propose to first cluster the results into k clusters using one of the
existing clustering methods, where k is an upper bound specified by the
user" — the system is free to use fewer clusters when the data supports
fewer interpretations. :func:`choose_k` sweeps k from 2 to the bound and
keeps the labeling with the best mean-cosine silhouette; a corpus with two
senses then yields two expanded queries even if the user allowed five.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cluster.kmeans import CosineKMeans
from repro.cluster.quality import silhouette_score
from repro.errors import ClusteringError


@dataclass(frozen=True)
class KSelection:
    """Outcome of the k sweep."""

    k: int
    labels: np.ndarray
    silhouettes: dict[int, float]  # k -> score, for every k tried


def choose_k(
    matrix: np.ndarray,
    max_k: int,
    seed: int = 0,
    backend_factory: Callable[[int], object] | None = None,
) -> KSelection:
    """Pick the best k in ``[2, max_k]`` by silhouette score.

    Parameters
    ----------
    matrix:
        Row-per-result feature matrix.
    max_k:
        The user's granularity upper bound (>= 2). Values above the point
        count are clamped.
    backend_factory:
        ``k -> clustering backend`` with ``fit_predict``; defaults to
        spherical k-means with the given seed. Every candidate k uses a
        fresh backend.

    Single-point inputs cannot be split: a :class:`ClusteringError` is
    raised (the caller should skip expansion for singleton result sets).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError(f"bad matrix shape {matrix.shape}")
    if max_k < 2:
        raise ClusteringError(f"max_k must be >= 2, got {max_k}")
    n = matrix.shape[0]
    if n < 2:
        raise ClusteringError("cannot choose k for fewer than 2 points")
    if backend_factory is None:
        def backend_factory(k):
            return CosineKMeans(n_clusters=k, seed=seed)

    best_k = 2
    best_score = -np.inf
    best_labels: np.ndarray | None = None
    silhouettes: dict[int, float] = {}
    for k in range(2, min(max_k, n) + 1):
        backend = backend_factory(k)
        labels = np.asarray(_fit(backend, matrix), dtype=np.int64)
        if len(set(labels.tolist())) < 2:
            score = -1.0
        else:
            score = silhouette_score(matrix, labels)
        silhouettes[k] = score
        if score > best_score:
            best_k, best_score, best_labels = k, score, labels
    assert best_labels is not None
    return KSelection(k=best_k, labels=best_labels, silhouettes=silhouettes)


def _fit(backend, matrix: np.ndarray) -> np.ndarray:
    """Run a backend that exposes either fit_predict or fit().labels."""
    if hasattr(backend, "fit_predict"):
        return backend.fit_predict(matrix)
    return backend.fit(matrix).labels


class AdaptiveKClusterer:
    """Pipeline-compatible clusterer that picks k <= the configured bound.

    Plugs into :class:`~repro.core.expander.ClusterQueryExpander` as the
    ``clusterer`` argument; exposes the chosen :class:`KSelection` after
    each ``fit_predict`` call.
    """

    def __init__(self, max_k: int, seed: int = 0) -> None:
        if max_k < 2:
            raise ClusteringError(f"max_k must be >= 2, got {max_k}")
        self._max_k = max_k
        self._seed = seed
        self.selection: KSelection | None = None

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        self.selection = choose_k(matrix, self._max_k, seed=self._seed)
        return self.selection.labels
