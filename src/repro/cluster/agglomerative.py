"""Average-link agglomerative clustering under cosine similarity.

An alternative clustering backend, supporting the paper's future-work
question ("how different clustering methods affect the expanded queries",
§7). Starts from singletons and repeatedly merges the pair of clusters with
the highest average pairwise cosine similarity until ``n_clusters`` remain.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.similarity import cosine_similarity_matrix
from repro.errors import ClusteringError


class AgglomerativeClustering:
    """Average-link agglomerative clustering to exactly ``n_clusters``.

    O(n^3) worst case, fine for the paper's scale (tens to hundreds of
    results per expansion task).
    """

    def __init__(self, n_clusters: int) -> None:
        if n_clusters < 1:
            raise ClusteringError(f"n_clusters must be >= 1, got {n_clusters}")
        self._k = n_clusters

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        """Return labels (0..m-1) for the rows of ``matrix``."""
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ClusteringError("matrix must be a non-empty 2-D array")
        n = matrix.shape[0]
        k = min(self._k, n)
        sims = cosine_similarity_matrix(matrix)
        clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
        while len(clusters) > k:
            best_pair: tuple[int, int] | None = None
            best_sim = -np.inf
            ids = sorted(clusters)
            for ai in range(len(ids)):
                for bi in range(ai + 1, len(ids)):
                    a, b = ids[ai], ids[bi]
                    block = sims[np.ix_(clusters[a], clusters[b])]
                    avg = float(block.mean())
                    if avg > best_sim:
                        best_sim = avg
                        best_pair = (a, b)
            assert best_pair is not None
            a, b = best_pair
            clusters[a].extend(clusters[b])
            del clusters[b]
        labels = np.zeros(n, dtype=np.int64)
        for new_id, (_, members) in enumerate(sorted(clusters.items())):
            for m in members:
                labels[m] = new_id
        return labels
