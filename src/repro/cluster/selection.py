"""Dynamic clustering-method selection (§7 future work).

"In the future, we would like to investigate how different clustering
methods affect the expanded queries, and design techniques for choosing
the best clustering method dynamically."

:class:`AutoClustering` is such a technique: it runs several clustering
backends over the result vectors and keeps the labeling with the best
internal quality (mean cosine silhouette). It exposes the standard
``fit_predict`` interface, so it plugs straight into
:class:`~repro.core.expander.ClusterQueryExpander` as the ``clusterer``.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.bisecting import BisectingKMeans
from repro.cluster.kmeans import CosineKMeans
from repro.cluster.quality import silhouette_score
from repro.errors import ClusteringError


class _KMeansAdapter:
    """fit_predict facade over CosineKMeans."""

    def __init__(self, n_clusters: int, seed: int) -> None:
        self._impl = CosineKMeans(n_clusters=n_clusters, seed=seed)

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        return self._impl.fit(matrix).labels


def default_backends(n_clusters: int, seed: int = 0) -> dict[str, object]:
    """The three clustering methods shipped with this library."""
    return {
        "kmeans": _KMeansAdapter(n_clusters, seed),
        "agglomerative": AgglomerativeClustering(n_clusters=n_clusters),
        "bisecting": BisectingKMeans(n_clusters=n_clusters, seed=seed),
    }


class AutoClustering:
    """Choose the best backend per input by silhouette score.

    After :meth:`fit_predict`, ``chosen`` holds the winning backend's name
    and ``scores`` the silhouette per backend (single-cluster labelings
    score ``-1``: they carry no classification signal for expansion).
    """

    def __init__(
        self,
        n_clusters: int,
        seed: int = 0,
        backends: dict[str, object] | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ClusteringError(f"n_clusters must be >= 1, got {n_clusters}")
        if backends is None:
            backends = default_backends(n_clusters, seed)
        if not backends:
            raise ClusteringError("AutoClustering needs at least one backend")
        self._backends = backends
        self.chosen: str = ""
        self.scores: dict[str, float] = {}

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        best_name = ""
        best_score = -np.inf
        best_labels: np.ndarray | None = None
        self.scores = {}
        for name in sorted(self._backends):
            backend = self._backends[name]
            labels = np.asarray(backend.fit_predict(matrix), dtype=np.int64)
            if len(set(labels.tolist())) < 2:
                score = -1.0
            else:
                score = silhouette_score(matrix, labels)
            self.scores[name] = score
            if score > best_score:
                best_name, best_score, best_labels = name, score, labels
        assert best_labels is not None
        self.chosen = best_name
        return best_labels
