"""Sliding-window query-biased snippets for raw text."""

from __future__ import annotations

from repro.errors import ConfigError


def best_window(
    tokens: list[str],
    query_terms: tuple[str, ...],
    window_size: int = 12,
) -> tuple[int, int, int]:
    """The window of ``window_size`` tokens with the best query coverage.

    Coverage counts *distinct* query terms inside the window (a window
    mentioning two different query words beats one repeating the same word
    five times). Returns ``(start, end, coverage)`` with ``end`` exclusive;
    ties go to the earliest window. Empty token lists return ``(0, 0, 0)``.
    """
    if window_size < 1:
        raise ConfigError(f"window_size must be >= 1, got {window_size}")
    if not tokens:
        return (0, 0, 0)
    lowered = [t.lower() for t in tokens]
    wanted = {t.lower() for t in query_terms}
    n = len(lowered)
    size = min(window_size, n)
    best = (0, size, 0)
    for start in range(0, n - size + 1):
        window = lowered[start : start + size]
        coverage = len(wanted & set(window))
        if coverage > best[2]:
            best = (start, start + size, coverage)
            if coverage == len(wanted):
                break  # earliest full-coverage window wins
    return best


def text_snippet(
    text: str,
    query_terms: tuple[str, ...],
    window_size: int = 12,
) -> str:
    """Ellipsized best window of ``text`` for the query.

    Tokenization is whitespace splitting — the snippet must show the
    original words, not analyzer output; matching is case-insensitive on
    whole tokens.
    """
    tokens = text.split()
    start, end, _ = best_window(tokens, query_terms, window_size=window_size)
    if not tokens:
        return ""
    prefix = "... " if start > 0 else ""
    suffix = " ..." if end < len(tokens) else ""
    return prefix + " ".join(tokens[start:end]) + suffix
