"""Query-biased snippet generation ([13], the paper's document model source).

The paper models structured documents as sets of ``entity:attribute:value``
triplets following [13] ("Query Biased Snippet Generation in XML Search").
When an expansion system presents its expanded queries, each cluster's
results need a short, query-biased preview — this subpackage provides it
for both document kinds:

- :mod:`repro.snippets.text` — classic sliding-window snippets over raw
  text: the window with the best query-term coverage (ties: earliest) is
  selected and ellipsized.
- :mod:`repro.snippets.structured` — feature selection for structured
  results: query-matching features first, then the rarest (most
  informative) remaining features, mirroring [13]'s query-biased feature
  ranking.

:func:`generate_snippet` dispatches on the document kind.
"""

from repro.snippets.structured import feature_snippet, rank_features
from repro.snippets.text import best_window, text_snippet

from repro.data.documents import Document


def generate_snippet(
    document: Document,
    query_terms: tuple[str, ...],
    raw_text: str = "",
    max_features: int = 3,
    window_size: int = 12,
    idf=None,
) -> str:
    """Render a query-biased snippet for any document.

    Structured documents use feature selection; text documents use the
    best raw-text window when ``raw_text`` is supplied, falling back to a
    term-cloud of the matched query terms plus the document title.
    """
    if document.kind == "structured":
        parts = feature_snippet(
            document, query_terms, max_features=max_features, idf=idf
        )
        return "; ".join(parts)
    if raw_text:
        return text_snippet(raw_text, query_terms, window_size=window_size)
    matched = [t for t in query_terms if t in document.terms]
    title = document.title or document.doc_id
    if matched:
        return f"{title} — matches: {', '.join(matched)}"
    return title


__all__ = [
    "best_window",
    "feature_snippet",
    "generate_snippet",
    "rank_features",
    "text_snippet",
]
