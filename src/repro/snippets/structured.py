"""Query-biased feature selection for structured documents ([13]).

A structured result can have dozens of feature triplets; a snippet shows
the few that matter: features the query actually matches come first, the
rest are ranked by informativeness (inverse document frequency of their
value tokens, when an idf function is available, else value specificity).
"""

from __future__ import annotations

from typing import Callable

from repro.data.documents import Document
from repro.errors import ConfigError


def rank_features(
    document: Document,
    query_terms: tuple[str, ...],
    idf: Callable[[str], float] | None = None,
) -> list[tuple[str, str, float]]:
    """Rank ``document.fields`` for query-biased display.

    Returns ``(key, value, score)`` sorted best-first. A feature scores
    the count of query terms matching its key or value tokens (strongly
    weighted), plus a tie-breaking informativeness component: mean idf of
    its value tokens if ``idf`` is given, else a mild specificity prior
    (longer values are more specific). Deterministic: ties break on key.
    """
    wanted = {t.lower() for t in query_terms}
    ranked: list[tuple[str, str, float]] = []
    for key, value in sorted(document.fields.items()):
        key_tokens = set(key.lower().replace(":", " ").split())
        value_tokens = value.lower().split()
        matches = len(wanted & (key_tokens | set(value_tokens)))
        # Feature-triplet query terms ("memory:category:harddrive") match
        # the whole feature.
        for term in wanted:
            if ":" in term:
                entity_attr, _, qvalue = term.rpartition(":")
                if entity_attr == key.lower() and qvalue in value_tokens:
                    matches += 2
        if idf is not None and value_tokens:
            info = sum(idf(t) for t in value_tokens) / len(value_tokens)
        else:
            info = min(len(value_tokens), 5) * 0.01
        ranked.append((key, value, matches * 10.0 + info))
    ranked.sort(key=lambda kvs: (-kvs[2], kvs[0]))
    return ranked


def feature_snippet(
    document: Document,
    query_terms: tuple[str, ...],
    max_features: int = 3,
    idf: Callable[[str], float] | None = None,
) -> list[str]:
    """The top features rendered as ``key: value`` strings."""
    if max_features < 1:
        raise ConfigError(f"max_features must be >= 1, got {max_features}")
    ranked = rank_features(document, query_terms, idf=idf)
    return [f"{key}: {value}" for key, value, _ in ranked[:max_features]]
