"""Iterative Single-Keyword Refinement (ISKR, §3 / Algorithm 1).

Starting from the user query, repeatedly apply the single best keyword
addition or removal, where a keyword's value is its benefit/cost ratio:

* adding k eliminates results — benefit is the weight eliminated from U
  (precision up), cost is the weight eliminated from C (recall down);
* removing a previously added k regains results — benefit is the weight
  regained in C, cost is the weight regained in U.

The algorithm stops when no keyword has value > 1 (Algorithm 1, line 16).
After each change only the *affected* keywords — those missing from at
least one delta result — are re-valued (the paper's efficiency trick; see
:class:`~repro.core.keyword_stats.BenefitCostTable.refresh_affected`).

Seed terms are never removed: every example in the paper keeps the original
query inside the expanded query.

Under OR semantics (paper appendix) the problem is the mirror image: the
expanded query *collects* results instead of filtering them, so benefit and
cost swap sides; see :meth:`ISKR._expand_or`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.keyword_stats import BenefitCostTable, KeywordValue, value_ratio
from repro.core.metrics import precision_recall_f
from repro.core.universe import AND, OR, ExpansionOutcome, ExpansionTask
from repro.errors import ExpansionError


@dataclass(frozen=True)
class _Move:
    """A candidate refinement step: add or remove one keyword."""

    kind: str  # "add" | "remove"
    keyword: str
    benefit: float
    cost: float
    changed: int  # results eliminated (add) or regained (remove)

    @property
    def value(self) -> float:
        return value_ratio(self.benefit, self.cost)

    def sort_key(self) -> tuple[float, int, int, str]:
        """Best first: higher value, fewer changed results, adds before
        removes on exact ties, lexicographic last."""
        kind_rank = 0 if self.kind == "add" else 1
        return (-self.value, self.changed, kind_rank, self.keyword)


class ISKR:
    """The paper's first expansion algorithm.

    Parameters
    ----------
    max_iterations:
        Safety cap on refinement steps. The stop rule (best value <= 1)
        normally terminates long before this.
    allow_removal:
        Disable to ablate the keyword-removal step of §3 (Example 3.2);
        used by ``benchmarks/bench_ablation_iskr_removal.py``.
    """

    name = "ISKR"

    def __init__(self, max_iterations: int = 100, allow_removal: bool = True) -> None:
        if max_iterations < 1:
            raise ExpansionError(f"max_iterations must be >= 1, got {max_iterations}")
        self._max_iterations = max_iterations
        self._allow_removal = allow_removal

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:
        """Generate the expanded query for ``task``'s cluster."""
        if task.semantics == AND:
            return self._expand_and(task)
        if task.semantics == OR:
            return self._expand_or(task)
        raise ExpansionError(f"unknown semantics: {task.semantics!r}")

    # -- AND semantics (paper core) ---------------------------------------

    def _expand_and(self, task: ExpansionTask) -> ExpansionOutcome:
        uni = task.universe
        table = BenefitCostTable(uni, task.candidates, task.cluster_mask)

        added: list[str] = []
        q_mask = uni.results_mask(task.seed_terms, semantics=AND)
        table.refresh_all(q_mask)

        trace: list[str] = []
        seen_states: set[frozenset[str]] = {frozenset()}
        iterations = 0

        while iterations < self._max_iterations:
            move = self._best_move(task, table, added, q_mask)
            if move is None or move.value <= 1.0:
                break
            if move.kind == "add":
                new_added = added + [move.keyword]
                new_mask = q_mask & uni.has_mask(move.keyword)
                delta = q_mask & ~new_mask  # results eliminated
            else:
                new_added = [k for k in added if k != move.keyword]
                new_mask = self._mask_for(task, new_added)
                delta = new_mask & ~q_mask  # results regained
            state = frozenset(new_added)
            if state in seen_states:
                break  # would revisit a previous query: cycle guard
            seen_states.add(state)
            added = new_added
            q_mask = new_mask
            iterations += 1
            trace.append(("+" if move.kind == "add" else "-") + move.keyword)
            table.refresh_affected(q_mask, delta)
            # The moved keyword's own stats must be authoritative even if it
            # appears in every delta result.
            table.refresh_keywords([move.keyword], q_mask)

        precision, recall, f = precision_recall_f(uni, q_mask, task.cluster_mask)
        return ExpansionOutcome(
            terms=tuple(task.seed_terms) + tuple(added),
            fmeasure=f,
            precision=precision,
            recall=recall,
            iterations=iterations,
            value_updates=table.total_updates,
            trace=tuple(trace),
            cluster_id=task.cluster_id,
        )

    def _mask_for(self, task: ExpansionTask, added: list[str]) -> np.ndarray:
        return task.universe.results_mask(
            tuple(task.seed_terms) + tuple(added), semantics=AND
        )

    def _best_move(
        self,
        task: ExpansionTask,
        table: BenefitCostTable,
        added: list[str],
        q_mask: np.ndarray,
    ) -> _Move | None:
        moves: list[_Move] = []
        best_add: KeywordValue | None = table.best_addition(excluded=set(added))
        if best_add is not None:
            moves.append(
                _Move(
                    kind="add",
                    keyword=best_add.keyword,
                    benefit=best_add.benefit,
                    cost=best_add.cost,
                    changed=best_add.eliminated,
                )
            )
        if self._allow_removal:
            moves.extend(self._removal_moves(task, added, q_mask))
        if not moves:
            return None
        return min(moves, key=_Move.sort_key)

    def _removal_moves(
        self, task: ExpansionTask, added: list[str], q_mask: np.ndarray
    ) -> list[_Move]:
        """Value of removing each previously added keyword (§3).

        D(k) = R(q \\ k) \\ R(q): the results regained by dropping k.
        benefit = S(D ∩ C) (recall up), cost = S(D ∩ U) (precision down).
        """
        uni = task.universe
        out: list[_Move] = []
        for kw in added:
            rest = [k for k in added if k != kw]
            mask_without = self._mask_for(task, rest)
            regained = mask_without & ~q_mask
            benefit = uni.weight_of(regained & task.cluster_mask)
            cost = uni.weight_of(regained & task.other_mask)
            out.append(
                _Move(
                    kind="remove",
                    keyword=kw,
                    benefit=benefit,
                    cost=cost,
                    changed=int(regained.sum()),
                )
            )
        return out

    # -- OR semantics (paper appendix) -------------------------------------

    def _expand_or(self, task: ExpansionTask) -> ExpansionOutcome:
        """Greedy refinement under OR semantics.

        Under OR the expanded query starts empty and *collects* results:
        adding k gains ``~R & has(k)`` — benefit is the gained weight in C,
        cost the gained weight in U; removal is the mirror image. The seed
        terms are carried in the output query for presentation but do not
        constrain R (every universe member already matches the seed).
        """
        uni = task.universe
        selected: list[str] = []
        q_mask = uni.empty_mask()
        trace: list[str] = []
        seen_states: set[frozenset[str]] = {frozenset()}
        iterations = 0
        value_updates = 0

        while iterations < self._max_iterations:
            moves: list[_Move] = []
            for kw in task.candidates:
                if kw in selected:
                    continue
                gained = ~q_mask & uni.has_mask(kw)
                benefit = uni.weight_of(gained & task.cluster_mask)
                cost = uni.weight_of(gained & task.other_mask)
                moves.append(_Move("add", kw, benefit, cost, int(gained.sum())))
                value_updates += 1
            # Removing the last keyword would empty R(q) — F = 0, the
            # global minimum — so a sole keyword is never a removal
            # candidate.
            removable = selected if len(selected) > 1 else []
            for kw in removable:
                rest = tuple(k for k in selected if k != kw)
                mask_without = uni.results_mask(rest, semantics=OR)
                lost = q_mask & ~mask_without
                benefit = uni.weight_of(lost & task.other_mask)
                cost = uni.weight_of(lost & task.cluster_mask)
                moves.append(_Move("remove", kw, benefit, cost, int(lost.sum())))
                value_updates += 1
            if not moves:
                break
            move = min(moves, key=_Move.sort_key)
            if move.value <= 1.0:
                if selected:
                    break
                # Bootstrap: an empty OR query retrieves nothing (F = 0),
                # so any addition gaining cluster weight strictly improves
                # it even when its benefit/cost ratio is <= 1. Pick the
                # best-ratio move among the positive-benefit additions.
                useful = [
                    m for m in moves if m.kind == "add" and m.benefit > 0.0
                ]
                if not useful:
                    break
                move = min(useful, key=_Move.sort_key)
            if move.kind == "add":
                selected.append(move.keyword)
            else:
                selected.remove(move.keyword)
            state = frozenset(selected)
            if state in seen_states:
                break
            seen_states.add(state)
            q_mask = uni.results_mask(tuple(selected), semantics=OR)
            iterations += 1
            trace.append(("+" if move.kind == "add" else "-") + move.keyword)

        precision, recall, f = precision_recall_f(uni, q_mask, task.cluster_mask)
        return ExpansionOutcome(
            terms=tuple(task.seed_terms) + tuple(selected),
            fmeasure=f,
            precision=precision,
            recall=recall,
            iterations=iterations,
            value_updates=value_updates,
            trace=tuple(trace),
            cluster_id=task.cluster_id,
        )
