"""Configuration for the end-to-end expansion pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ExpansionConfig:
    """Knobs of the experimental setup (§C) with the paper's defaults.

    Attributes
    ----------
    n_clusters:
        Upper bound k on the number of result clusters (user-specified
        granularity, §1).
    top_k_results:
        How many top-ranked seed-query results to expand over (the paper
        uses 30 on Wikipedia; ``None`` = all results).
    max_expanded_queries:
        At most this many expanded queries are returned (paper: 5). When the
        clustering yields more clusters, the largest-weight clusters win.
    candidate_fraction:
        Fraction of result terms (by TF-IDF) considered as candidate
        expansion keywords (paper: 0.2).
    min_candidates:
        Floor on the candidate count for small universes.
    use_ranking_weights:
        Weighted precision/recall using the seed query's TF-IDF ranking
        scores (§2); False gives the unweighted metrics.
    semantics:
        ``"and"`` (paper default) or ``"or"`` (paper appendix).
    cluster_seed:
        RNG seed for the clustering backend.
    """

    n_clusters: int = 3
    top_k_results: int | None = 30
    max_expanded_queries: int = 5
    candidate_fraction: float = 0.2
    min_candidates: int = 10
    use_ranking_weights: bool = True
    semantics: str = "and"
    cluster_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ConfigError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.top_k_results is not None and self.top_k_results < 1:
            raise ConfigError(
                f"top_k_results must be >= 1 or None, got {self.top_k_results}"
            )
        if self.max_expanded_queries < 1:
            raise ConfigError(
                f"max_expanded_queries must be >= 1, got {self.max_expanded_queries}"
            )
        if not 0.0 < self.candidate_fraction <= 1.0:
            raise ConfigError(
                f"candidate_fraction must be in (0, 1], got {self.candidate_fraction}"
            )
        if self.min_candidates < 1:
            raise ConfigError(
                f"min_candidates must be >= 1, got {self.min_candidates}"
            )
        if self.semantics not in ("and", "or"):
            raise ConfigError(f"semantics must be 'and' or 'or', got {self.semantics!r}")
