"""Quality measures of §2: weighted precision, recall, F-measure, Eq. 1.

With the cluster C as ground truth and R = R(q) the expanded query's
results (both masks over the universe)::

    precision(q) = S(R ∩ C) / S(R)
    recall(q)    = S(R ∩ C) / S(C)
    F(q)         = 2 P R / (P + R)

and the overall score of a set of expanded queries (one per cluster) is the
harmonic mean of their F-measures (Eq. 1). Unweighted metrics are the
special case of unit weights.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.universe import ResultUniverse


def precision_recall_f(
    universe: ResultUniverse,
    result_mask: np.ndarray,
    cluster_mask: np.ndarray,
) -> tuple[float, float, float]:
    """Weighted (precision, recall, F-measure) of a result set vs a cluster.

    Conventions for empty sets: an empty R(q) has precision 0 and recall 0
    (the paper's formulas are undefined there; any query retrieving nothing
    is maximally bad, and F = 0 follows). ``cluster_mask`` must be non-empty.
    """
    s_r = universe.weight_of(result_mask)
    s_c = universe.weight_of(cluster_mask)
    if s_c <= 0.0:
        raise ValueError("cluster must have positive total weight")
    s_inter = universe.weight_of(result_mask & cluster_mask)
    precision = s_inter / s_r if s_r > 0.0 else 0.0
    recall = s_inter / s_c
    f = fmeasure(precision, recall)
    return precision, recall, f


def fmeasure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall; 0.0 when both are 0."""
    if precision < 0.0 or recall < 0.0:
        raise ValueError("precision and recall must be non-negative")
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; 0.0 if any value is 0 (the limit of Eq. 1)."""
    if not values:
        raise ValueError("harmonic mean of no values is undefined")
    if any(v < 0.0 for v in values):
        raise ValueError("values must be non-negative")
    if any(v == 0.0 for v in values):
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def eq1_score(fmeasures: Iterable[float]) -> float:
    """Eq. 1: overall score of a set of expanded queries.

    ``score(q_1..q_k) = k / (1/F(q_1) + ... + 1/F(q_k))`` — the harmonic
    mean of the per-cluster F-measures.
    """
    return harmonic_mean(list(fmeasures))


def query_fmeasure(
    universe: ResultUniverse,
    query_terms: Sequence[str],
    cluster_mask: np.ndarray,
    semantics: str = "and",
) -> float:
    """Convenience: F-measure of the query ``terms`` against a cluster."""
    mask = universe.results_mask(tuple(query_terms), semantics=semantics)
    _, _, f = precision_recall_f(universe, mask, cluster_mask)
    return f
