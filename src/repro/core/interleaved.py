"""Interleaved clustering and query expansion (§7 future work).

The paper's conclusion lists "the possibility of interweaving the
clustering and query expansion process" as future work. The idea: the
clustering that expansion is asked to classify may itself be imperfect
(§5.2.1 blames "imperfect clustering" for some low user scores), but the
expanded queries reveal where it is wrong — a result that an expanded
query of *another* cluster retrieves cleanly probably belongs there.

:class:`InterleavedExpander` alternates:

1. expand: one query per cluster (any expansion algorithm);
2. reassign: move every result to the cluster whose expanded query
   (a) retrieves it and (b) has the highest F-measure — the strongest
   classifier claiming the result. Results no query retrieves keep their
   current cluster.

The loop stops when the labeling reaches a fixed point, the Eq. 1 score
stops improving, or ``max_rounds`` is hit. The best round (by Eq. 1) is
returned, so interleaving can only match or improve the single-pass
score on the metric it optimizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import ExpansionConfig
from repro.core.expander import ClusterQueryExpander, ExpansionAlgorithm
from repro.core.metrics import eq1_score
from repro.core.universe import ExpansionOutcome, ExpansionTask, ResultUniverse
from repro.errors import ExpansionError
from repro.index.search import SearchEngine


@dataclass(frozen=True)
class InterleavedRound:
    """One expand-reassign round."""

    round_index: int
    labels: tuple[int, ...]
    queries: tuple[tuple[str, ...], ...]
    fmeasures: tuple[float, ...]
    score: float
    n_moved: int  # results reassigned after this round's expansion


@dataclass(frozen=True)
class InterleavedReport:
    """Outcome of the interleaved process for one seed query."""

    seed_query: str
    seed_terms: tuple[str, ...]
    rounds: tuple[InterleavedRound, ...]
    best_round: int
    converged: bool  # labeling reached a fixed point
    seconds: float
    initial_score: float

    @property
    def final_score(self) -> float:
        return self.rounds[self.best_round].score

    @property
    def improvement(self) -> float:
        return self.final_score - self.initial_score

    def queries(self) -> list[str]:
        return [", ".join(q) for q in self.rounds[self.best_round].queries]


class InterleavedExpander:
    """Alternating cluster refinement and query expansion.

    Parameters
    ----------
    engine / algorithm / config / clusterer:
        As in :class:`~repro.core.expander.ClusterQueryExpander`, which
        performs retrieval and the *initial* clustering. ``algorithm`` and
        ``clusterer`` also accept registry names (see :mod:`repro.api`).
    max_rounds:
        Upper bound on expand-reassign rounds (>= 1; 1 reproduces the
        plain single-pass pipeline).
    """

    def __init__(
        self,
        engine: SearchEngine,
        algorithm: ExpansionAlgorithm | str,
        config: ExpansionConfig | None = None,
        clusterer=None,
        max_rounds: int = 4,
    ) -> None:
        if max_rounds < 1:
            raise ExpansionError(f"max_rounds must be >= 1, got {max_rounds}")
        self._pipeline = ClusterQueryExpander(
            engine, algorithm, config, clusterer
        )
        self._engine = engine
        self._algorithm = self._pipeline.algorithm
        self._config = self._pipeline.config
        self._max_rounds = max_rounds

    # -- one round ---------------------------------------------------------

    def _expand_clusters(
        self,
        universe: ResultUniverse,
        labels: np.ndarray,
        seed_terms: tuple[str, ...],
    ) -> tuple[list[ExpansionTask], list[ExpansionOutcome]]:
        tasks = self._pipeline.tasks(universe, labels, seed_terms)
        outcomes = [self._algorithm.expand(task) for task in tasks]
        return tasks, outcomes

    @staticmethod
    def _reassign(
        universe: ResultUniverse,
        labels: np.ndarray,
        tasks: Sequence[ExpansionTask],
        outcomes: Sequence[ExpansionOutcome],
    ) -> tuple[np.ndarray, int]:
        """Move each result to the best-F query that retrieves it.

        Returns the new labels and the number of moved results. Results
        outside every query's result set keep their labels; so do results
        of clusters that were truncated away by ``max_expanded_queries``.
        """
        new_labels = labels.copy()
        order = sorted(
            range(len(tasks)),
            key=lambda i: -outcomes[i].fmeasure,
        )
        claimed = universe.empty_mask()
        for i in order:
            mask = universe.results_mask(
                outcomes[i].terms, semantics=tasks[i].semantics
            )
            take = mask & ~claimed
            new_labels[take] = tasks[i].cluster_id
            claimed |= mask
        moved = int((new_labels != labels).sum())
        return new_labels, moved

    # -- the loop ------------------------------------------------------------

    def expand(self, query: str) -> InterleavedReport:
        """Run the interleaved process for ``query``."""
        t0 = time.perf_counter()
        results = self._pipeline.retrieve(query)
        if not results:
            raise ExpansionError(f"seed query {query!r} retrieved no results")
        seed_terms = tuple(self._engine.parse(query))
        labels = np.asarray(self._pipeline.cluster(results), dtype=np.int64)
        universe = self._pipeline.build_universe(results)

        rounds: list[InterleavedRound] = []
        seen_labelings = {tuple(int(l) for l in labels)}
        converged = False
        for round_index in range(self._max_rounds):
            tasks, outcomes = self._expand_clusters(
                universe, labels, seed_terms
            )
            score = eq1_score([o.fmeasure for o in outcomes])
            new_labels, moved = self._reassign(
                universe, labels, tasks, outcomes
            )
            rounds.append(
                InterleavedRound(
                    round_index=round_index,
                    labels=tuple(int(l) for l in labels),
                    queries=tuple(o.terms for o in outcomes),
                    fmeasures=tuple(o.fmeasure for o in outcomes),
                    score=score,
                    n_moved=moved,
                )
            )
            if moved == 0:
                converged = True
                break
            key = tuple(int(l) for l in new_labels)
            if key in seen_labelings:
                # A labeling cycle: further rounds would repeat.
                converged = True
                break
            seen_labelings.add(key)
            labels = new_labels

        best_round = max(range(len(rounds)), key=lambda i: rounds[i].score)
        return InterleavedReport(
            seed_query=query,
            seed_terms=seed_terms,
            rounds=tuple(rounds),
            best_round=best_round,
            converged=converged,
            seconds=time.perf_counter() - t0,
            initial_score=rounds[0].score,
        )
