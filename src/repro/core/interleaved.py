"""Interleaved clustering and query expansion (§7 future work).

The paper's conclusion lists "the possibility of interweaving the
clustering and query expansion process" as future work. The idea: the
clustering that expansion is asked to classify may itself be imperfect
(§5.2.1 blames "imperfect clustering" for some low user scores), but the
expanded queries reveal where it is wrong — a result that an expanded
query of *another* cluster retrieves cleanly probably belongs there.

:class:`InterleavedExpander` alternates:

1. expand: one query per cluster (any expansion algorithm);
2. reassign: move every result to the cluster whose expanded query
   (a) retrieves it and (b) has the highest F-measure — the strongest
   classifier claiming the result. Results no query retrieves keep their
   current cluster.

The loop stops when the labeling reaches a fixed point, the Eq. 1 score
stops improving, or ``max_rounds`` is hit. The best round (by Eq. 1) is
returned, so interleaving can only match or improve the single-pass
score on the metric it optimizes.

Execution rides the shared stage pipeline, split at the ``tasks``
stage: everything before it (retrieve → cluster → universe →
candidates, plus any custom stages inserted there) runs once, then each
round runs the rest of the pipeline (``tasks → expand`` and any custom
stages among them) extended with the
:class:`~repro.pipeline.ReassignStage` — the same stage objects the
single-pass path executes, with per-stage timings accumulating on the
context across rounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import ExpansionConfig
from repro.core.expander import ClusterQueryExpander, ExpansionAlgorithm
from repro.errors import ExpansionError
from repro.index.search import SearchEngine


@dataclass(frozen=True)
class InterleavedRound:
    """One expand-reassign round."""

    round_index: int
    labels: tuple[int, ...]
    queries: tuple[tuple[str, ...], ...]
    fmeasures: tuple[float, ...]
    score: float
    n_moved: int  # results reassigned after this round's expansion


@dataclass(frozen=True)
class InterleavedReport:
    """Outcome of the interleaved process for one seed query."""

    seed_query: str
    seed_terms: tuple[str, ...]
    rounds: tuple[InterleavedRound, ...]
    best_round: int
    converged: bool  # labeling reached a fixed point
    seconds: float
    initial_score: float

    @property
    def final_score(self) -> float:
        return self.rounds[self.best_round].score

    @property
    def improvement(self) -> float:
        return self.final_score - self.initial_score

    def queries(self) -> list[str]:
        return [", ".join(q) for q in self.rounds[self.best_round].queries]


class InterleavedExpander:
    """Alternating cluster refinement and query expansion.

    Parameters
    ----------
    engine / algorithm / config / clusterer:
        As in :class:`~repro.core.expander.ClusterQueryExpander`, which
        performs retrieval and the *initial* clustering. ``algorithm`` and
        ``clusterer`` also accept registry names (see :mod:`repro.api`).
    max_rounds:
        Upper bound on expand-reassign rounds (>= 1; 1 reproduces the
        plain single-pass pipeline).
    pipeline:
        Optional :class:`~repro.pipeline.Pipeline` override, shared with
        the single-pass expander (custom stages run here too).
    """

    def __init__(
        self,
        engine: SearchEngine,
        algorithm: ExpansionAlgorithm | str,
        config: ExpansionConfig | None = None,
        clusterer=None,
        max_rounds: int = 4,
        pipeline=None,
    ) -> None:
        if max_rounds < 1:
            raise ExpansionError(f"max_rounds must be >= 1, got {max_rounds}")
        self._expander = ClusterQueryExpander(
            engine, algorithm, config, clusterer, pipeline=pipeline
        )
        self._algorithm = self._expander.algorithm
        self._config = self._expander.config
        self._max_rounds = max_rounds

    @property
    def pipeline(self):
        """The single-pass stage pipeline the rounds are split from."""
        return self._expander.pipeline

    def _split_pipeline(self):
        """``(once-only prefix, per-round suffix + reassign)``."""
        from repro.pipeline import ReassignStage

        prefix, rounds = self.pipeline.split("tasks")
        return prefix, rounds.with_stage(ReassignStage())

    # -- the loop ------------------------------------------------------------

    def expand(self, query: str) -> InterleavedReport:
        """Run the interleaved process for ``query``."""
        t0 = time.perf_counter()
        prefix, round_pipeline = self._split_pipeline()
        ctx = self._expander.context(query)
        if prefix is not None:
            ctx = prefix.run(ctx)

        rounds: list[InterleavedRound] = []
        seen_labelings = {tuple(int(lab) for lab in ctx.labels)}
        converged = False
        for round_index in range(self._max_rounds):
            before = tuple(int(lab) for lab in ctx.labels)
            out = round_pipeline.run(ctx)
            moved = int(out.extras["n_moved"])
            rounds.append(
                InterleavedRound(
                    round_index=round_index,
                    labels=before,
                    queries=tuple(eq.terms for eq in out.expanded),
                    fmeasures=tuple(eq.fmeasure for eq in out.expanded),
                    score=out.score,
                    n_moved=moved,
                )
            )
            if moved == 0:
                converged = True
                break
            key = tuple(int(lab) for lab in out.labels)
            if key in seen_labelings:
                # A labeling cycle: further rounds would repeat.
                converged = True
                break
            seen_labelings.add(key)
            ctx = out

        best_round = max(range(len(rounds)), key=lambda i: rounds[i].score)
        return InterleavedReport(
            seed_query=query,
            seed_terms=ctx.seed_terms,
            rounds=tuple(rounds),
            best_round=best_round,
            converged=converged,
            seconds=time.perf_counter() - t0,
            initial_score=rounds[0].score,
        )
