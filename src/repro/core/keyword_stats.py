"""Candidate-keyword selection and vectorized benefit/cost accounting.

§3 defines, for adding keyword k to query q::

    benefit(k, q) = S(R(q) ∩ U ∩ E(k))   # weight eliminated from U
    cost(k, q)    = S(R(q) ∩ C ∩ E(k))   # weight eliminated from C
    value(k, q)   = benefit / cost        # +inf if cost = 0 < benefit

The :class:`BenefitCostTable` below computes these for *batches* of keywords
with one boolean matrix operation, and recomputes only the keywords whose
value is affected by a query change — exactly those missing from at least
one delta result (§3's maintenance argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.universe import ResultUniverse
from repro.index.backend import IndexBackend


def value_ratio(benefit: float, cost: float) -> float:
    """The paper's benefit/cost value with its boundary conventions.

    benefit = 0              → 0 (never attractive, even if cost is 0)
    benefit > 0 and cost = 0 → +inf (strictly good: pure gain)
    otherwise                → benefit / cost
    """
    if benefit <= 0.0:
        return 0.0
    if cost <= 0.0:
        return math.inf
    return benefit / cost


@dataclass(frozen=True)
class KeywordValue:
    """A keyword's current benefit/cost snapshot.

    ``eliminated`` is the number of results the keyword would currently
    eliminate — the tie-break quantity of §4.3 ("choose the keyword that
    eliminates fewer results").
    """

    keyword: str
    benefit: float
    cost: float
    eliminated: int

    @property
    def value(self) -> float:
        return value_ratio(self.benefit, self.cost)

    def sort_key(self) -> tuple[float, int, str]:
        """Descending-value, then fewer-eliminated, then lexicographic."""
        return (-self.value, self.eliminated, self.keyword)


class BenefitCostTable:
    """Benefit/cost/value for a fixed candidate set, updatable in batches.

    The table owns the candidate incidence matrix H (one row per candidate,
    one column per result). Given the current R(q) mask it computes, per
    candidate k::

        elim_k  = R(q) & ~H[k]          # results eliminated by adding k
        benefit = weights[elim_k & U]
        cost    = weights[elim_k & C]

    ``refresh_affected`` recomputes only candidates with ``~H[k] & D ≠ ∅``
    for delta mask D, and returns how many were recomputed (the paper's
    efficiency claim over the delta-F variant is precisely this count).
    """

    def __init__(
        self,
        universe: ResultUniverse,
        candidates: tuple[str, ...],
        cluster_mask: np.ndarray,
    ) -> None:
        self._universe = universe
        self._candidates = list(candidates)
        self._H = universe.incidence_rows(self._candidates)
        self._cluster = np.asarray(cluster_mask, dtype=bool)
        self._other = ~self._cluster
        self._w = universe.weights
        self._benefit = np.zeros(len(self._candidates), dtype=np.float64)
        self._cost = np.zeros(len(self._candidates), dtype=np.float64)
        self._elim_count = np.zeros(len(self._candidates), dtype=np.int64)
        # Lexicographic rank per candidate: the last-resort tie-break.
        order = sorted(range(len(self._candidates)), key=lambda i: self._candidates[i])
        self._name_rank = np.zeros(len(self._candidates), dtype=np.int64)
        for rank, row in enumerate(order):
            self._name_rank[row] = rank
        self.total_updates = 0

    @property
    def candidates(self) -> list[str]:
        return list(self._candidates)

    def refresh_all(self, result_mask: np.ndarray) -> int:
        """Recompute every candidate against the current R(q)."""
        rows = np.arange(len(self._candidates))
        self._recompute(rows, result_mask)
        return len(rows)

    def refresh_affected(self, result_mask: np.ndarray, delta_mask: np.ndarray) -> int:
        """Recompute candidates missing from >= 1 delta result (§3).

        A candidate k' is unaffected iff it appears in *all* delta results
        (then its elimination behaviour on the remaining R(q) is unchanged).
        Returns the number of recomputed candidates.
        """
        if not delta_mask.any():
            return 0
        # k' affected  <=>  exists d in D with ~H[k', d]
        missing_somewhere = ~self._H[:, delta_mask].all(axis=1)
        rows = np.flatnonzero(missing_somewhere)
        self._recompute(rows, result_mask)
        return int(rows.size)

    def refresh_keywords(self, keywords: list[str], result_mask: np.ndarray) -> int:
        """Force-recompute specific keywords (e.g. the one just moved)."""
        row_of = {kw: i for i, kw in enumerate(self._candidates)}
        rows = np.array([row_of[k] for k in keywords if k in row_of], dtype=np.int64)
        self._recompute(rows, result_mask)
        return int(rows.size)

    def _recompute(self, rows: np.ndarray, result_mask: np.ndarray) -> None:
        if rows.size == 0:
            return
        elim = (~self._H[rows]) & result_mask[None, :]
        self._benefit[rows] = (elim & self._other[None, :]) @ self._w
        self._cost[rows] = (elim & self._cluster[None, :]) @ self._w
        self._elim_count[rows] = elim.sum(axis=1)
        self.total_updates += int(rows.size)

    def snapshot(self, row: int) -> KeywordValue:
        """The current value record of candidate ``row``."""
        return KeywordValue(
            keyword=self._candidates[row],
            benefit=float(self._benefit[row]),
            cost=float(self._cost[row]),
            eliminated=int(self._elim_count[row]),
        )

    def best_addition(self, excluded: set[str]) -> KeywordValue | None:
        """Highest-value candidate not in ``excluded`` (ties per §4.3).

        Vectorized: one lexsort over (value desc, eliminated asc, name asc).
        """
        if not self._candidates:
            return None
        values = self.values_array()
        if excluded:
            mask = np.array(
                [kw in excluded for kw in self._candidates], dtype=bool
            )
            if mask.all():
                return None
            values = np.where(mask, -np.inf, values)
        # lexsort: last key is primary.
        order = np.lexsort((self._name_rank, self._elim_count, -values))
        row = int(order[0])
        if values[row] == -np.inf:
            return None
        return self.snapshot(row)

    def values_array(self) -> np.ndarray:
        """Current value ratio per candidate (inf-aware), for strategies."""
        with np.errstate(divide="ignore", invalid="ignore"):
            vals = np.where(
                self._benefit <= 0.0,
                0.0,
                np.where(self._cost <= 0.0, np.inf, self._benefit / self._cost),
            )
        return vals


def select_candidates(
    index: IndexBackend,
    universe: ResultUniverse,
    seed_terms: tuple[str, ...],
    fraction: float = 0.2,
    min_candidates: int = 10,
) -> tuple[str, ...]:
    """Top-``fraction`` of universe terms by TF-IDF, excluding seed terms.

    Reproduces the experimental setup of §C: "we consider the top-20% words
    in the results in terms of tfidf for query expansion". TF is the total
    term frequency over the universe's results; IDF comes from the full
    corpus index. Terms present in *every* universe result are excluded —
    they can never eliminate anything, under AND semantics they are dead
    weight.

    ``min_candidates`` keeps tiny universes useful: at least this many terms
    are returned (when available).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    n_docs = max(index.num_documents, 1)
    seed = set(seed_terms)
    scored: list[tuple[float, str]] = []
    for term in universe.terms:
        if term in seed:
            continue
        has = universe.has_mask(term)
        n_has = int(has.sum())
        if n_has == universe.n:
            continue  # appears everywhere: E(k) empty, useless under AND
        tf = 0
        for doc in universe.documents:
            tf += doc.terms.get(term, 0)
        df = max(index.document_frequency(term), 1)
        idf = math.log(1.0 + n_docs / df)
        scored.append((tf * idf, term))
    scored.sort(key=lambda item: (-item[0], item[1]))
    keep = max(int(round(len(scored) * fraction)), min(min_candidates, len(scored)))
    return tuple(term for _, term in scored[:keep])
