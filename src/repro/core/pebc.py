"""Partial Elimination Based Convergence (PEBC, §4 / Algorithm 2).

Treat the F-measure as an unknown function of "how much of U the query
eliminates". Sample that axis at several percentages, generate one sample
query per percentage with a partial-elimination strategy (§4.3 by default),
then zoom into the adjacent pair of sample points with the highest average
F-measure and repeat. The best query seen anywhere is returned — the
iteration refines the search but never forgets a good sample.

The paper's experimental setup uses 3 points per iteration and 3 iterations
(§C); both are constructor parameters here.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import precision_recall_f
from repro.core.strategies import SampleQuery, make_strategy
from repro.core.universe import AND, OR, ExpansionOutcome, ExpansionTask
from repro.errors import ExpansionError


class PEBC:
    """The paper's second expansion algorithm.

    Parameters
    ----------
    n_segments:
        Number of intervals each iteration's range is split into; the
        iteration tests ``n_segments + 1`` points. Paper §C tests 3 points
        per iteration, i.e. ``n_segments=2``.
    n_iterations:
        Zoom-in rounds (paper §C: 3).
    strategy:
        Sample-query generation strategy: ``"single-result"`` (§4.3,
        default), ``"fixed-order"`` (§4.1) or ``"random-subset"`` (§4.2).
    seed:
        RNG seed for the randomized strategies; fixed seed → fixed output.
    """

    name = "PEBC"

    def __init__(
        self,
        n_segments: int = 2,
        n_iterations: int = 3,
        strategy: str = "single-result",
        seed: int = 0,
    ) -> None:
        if n_segments < 1:
            raise ExpansionError(f"n_segments must be >= 1, got {n_segments}")
        if n_iterations < 1:
            raise ExpansionError(f"n_iterations must be >= 1, got {n_iterations}")
        self._n_segments = n_segments
        self._n_iterations = n_iterations
        self._strategy = make_strategy(strategy)
        self._seed = seed

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:
        if task.semantics == AND:
            return self._converge(task, self._and_sampler(task))
        if task.semantics == OR:
            return self._converge(task, self._or_sampler(task))
        raise ExpansionError(f"unknown semantics: {task.semantics!r}")

    # -- sample-query generators -------------------------------------------

    def _and_sampler(self, task: ExpansionTask):
        """AND semantics (§4): eliminate ~x% of U via the chosen strategy."""
        rng = np.random.default_rng(self._seed)

        def generate(fraction: float) -> SampleQuery:
            return self._strategy.generate(task, fraction, rng)

        return generate

    def _or_sampler(self, task: ExpansionTask):
        """OR semantics (paper appendix): the mirror image of §4.3.

        A sample query at x covers ~x% of the cluster's weight: repeatedly
        pick a random uncovered cluster result, then the candidate keyword
        containing it with the best (gained C weight) / (gained U weight)
        ratio, fewest-gained tie-break — exactly the single-result
        procedure with retrieval and elimination swapped.
        """
        uni = task.universe
        rng = np.random.default_rng(self._seed)
        cluster_weight = task.cluster_weight()

        def generate(fraction: float) -> SampleQuery:
            target = fraction * cluster_weight
            selected: list[str] = []
            covered = uni.empty_mask()
            blocked: set[int] = set()  # cluster results no candidate contains
            prev_gap = abs(uni.weight_of(covered & task.cluster_mask) - target)
            while True:
                covered_c = uni.weight_of(covered & task.cluster_mask)
                if covered_c >= target:
                    break
                open_positions = np.nonzero(task.cluster_mask & ~covered)[0]
                open_positions = [
                    int(p) for p in open_positions if int(p) not in blocked
                ]
                if not open_positions:
                    break
                pick = open_positions[int(rng.integers(len(open_positions)))]
                best_kw = None
                best_key = None
                for kw in task.candidates:
                    if kw in selected or not uni.has_mask(kw)[pick]:
                        continue
                    gained = ~covered & uni.has_mask(kw)
                    benefit = uni.weight_of(gained & task.cluster_mask)
                    cost = uni.weight_of(gained & task.other_mask)
                    ratio = benefit / cost if cost > 0 else np.inf
                    key = (-ratio, int(gained.sum()), kw)
                    if best_key is None or key < best_key:
                        best_key, best_kw = key, kw
                if best_kw is None:
                    blocked.add(pick)
                    continue
                with_kw = covered | uni.has_mask(best_kw)
                new_gap = abs(
                    uni.weight_of(with_kw & task.cluster_mask) - target
                )
                # §4.3's closing rule, mirrored: keep the last keyword only
                # if it lands closer to the target coverage.
                if (
                    uni.weight_of(with_kw & task.cluster_mask) >= target
                    and new_gap > prev_gap
                ):
                    break
                selected.append(best_kw)
                covered = with_kw
                prev_gap = new_gap
            terms = tuple(task.seed_terms) + tuple(selected)
            mask = uni.results_mask(tuple(selected), semantics=OR)
            achieved = (
                uni.weight_of(mask & task.cluster_mask) / cluster_weight
                if cluster_weight > 0
                else 0.0
            )
            return SampleQuery(
                terms=terms,
                selected=tuple(selected),
                result_mask=mask,
                eliminated_share=achieved,  # here: covered share of S(C)
            )

        return generate

    # -- the convergence loop -------------------------------------------------

    def _converge(self, task: ExpansionTask, generate) -> ExpansionOutcome:
        uni = task.universe
        cache: dict[float, tuple[SampleQuery, float]] = {}
        evaluations = 0

        def sample_at(x: float) -> tuple[SampleQuery, float]:
            nonlocal evaluations
            x = round(x, 9)
            if x not in cache:
                sq = generate(x / 100.0)
                _, _, f = precision_recall_f(uni, sq.result_mask, task.cluster_mask)
                cache[x] = (sq, f)
                evaluations += 1
            return cache[x]

        left, right = 0.0, 100.0
        best_sq, best_f = sample_at(0.0)
        trace: list[str] = []
        iterations_done = 0
        for _ in range(self._n_iterations):
            xs = np.linspace(left, right, self._n_segments + 1)
            points: list[tuple[float, SampleQuery, float]] = []
            for x in xs:
                sq, f = sample_at(float(x))
                points.append((float(x), sq, f))
                if f > best_f:
                    best_sq, best_f = sq, f
            iterations_done += 1
            trace.append(
                "it%d [%.1f,%.1f]: " % (iterations_done, left, right)
                + " ".join("%.0f%%→F=%.3f" % (x, f) for x, _, f in points)
            )
            # Zoom into the adjacent pair with the highest average F.
            best_pair = max(
                range(len(points) - 1),
                key=lambda i: (points[i][2] + points[i + 1][2]) / 2.0,
            )
            left, right = points[best_pair][0], points[best_pair + 1][0]
            if right - left < 1e-6:
                break

        precision, recall, f = precision_recall_f(
            uni, best_sq.result_mask, task.cluster_mask
        )
        return ExpansionOutcome(
            terms=best_sq.terms,
            fmeasure=f,
            precision=precision,
            recall=recall,
            iterations=iterations_done,
            value_updates=evaluations,
            trace=tuple(trace),
            cluster_id=task.cluster_id,
        )
