"""Exhaustive optimal expansion for small instances.

QEC is APX-hard (§2), so ISKR and PEBC are heuristics. On *small*
candidate sets the optimum is computable by enumerating keyword subsets;
this module provides that ground truth. It exists for validation — tests
and benchmarks measure how far the heuristics fall from optimal — and is
guarded against accidental exponential blowups.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.metrics import precision_recall_f
from repro.core.universe import AND, ExpansionOutcome, ExpansionTask
from repro.errors import ExpansionError

MAX_EXHAUSTIVE_CANDIDATES = 20


class ExhaustiveOptimalExpansion:
    """Finds the F-measure-optimal expanded query by subset enumeration.

    Parameters
    ----------
    max_candidates:
        Refuse tasks with more candidates than this (2^m subsets).
    max_added:
        Optionally cap the subset size (useful ground truth for "best query
        with at most j extra keywords").
    """

    name = "Exact"

    def __init__(
        self,
        max_candidates: int = MAX_EXHAUSTIVE_CANDIDATES,
        max_added: int | None = None,
    ) -> None:
        if max_candidates < 1 or max_candidates > MAX_EXHAUSTIVE_CANDIDATES:
            raise ExpansionError(
                f"max_candidates must be in [1, {MAX_EXHAUSTIVE_CANDIDATES}]"
            )
        if max_added is not None and max_added < 0:
            raise ExpansionError(f"max_added must be >= 0, got {max_added}")
        self._max_candidates = max_candidates
        self._max_added = max_added

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:
        if task.semantics != AND:
            raise ExpansionError("exhaustive search supports AND semantics only")
        m = len(task.candidates)
        if m > self._max_candidates:
            raise ExpansionError(
                f"{m} candidates exceed the exhaustive limit "
                f"({self._max_candidates}); use ISKR/PEBC instead"
            )
        uni = task.universe
        has = uni.incidence_rows(list(task.candidates))
        seed_mask = uni.results_mask(task.seed_terms, semantics=AND)

        best_terms: tuple[str, ...] = ()
        best_f = -1.0
        best_mask = seed_mask
        evaluated = 0
        max_size = m if self._max_added is None else min(m, self._max_added)
        for size in range(0, max_size + 1):
            for subset in combinations(range(m), size):
                mask = seed_mask.copy()
                for row in subset:
                    mask &= has[row]
                _, _, f = precision_recall_f(uni, mask, task.cluster_mask)
                evaluated += 1
                terms = tuple(task.candidates[i] for i in subset)
                # Strictly better F wins; ties go to fewer keywords (outer
                # loop order), then lexicographic for determinism.
                if f > best_f + 1e-12 or (
                    abs(f - best_f) <= 1e-12
                    and len(terms) == len(best_terms)
                    and terms < best_terms
                ):
                    best_terms = terms
                    best_f = f
                    best_mask = mask

        precision, recall, f = precision_recall_f(uni, best_mask, task.cluster_mask)
        return ExpansionOutcome(
            terms=tuple(task.seed_terms) + best_terms,
            fmeasure=f,
            precision=precision,
            recall=recall,
            iterations=evaluated,
            value_updates=evaluated,
            trace=("exhaustive:%d subsets" % evaluated,),
            cluster_id=task.cluster_id,
        )
