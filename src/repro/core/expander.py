"""End-to-end pipeline: search → cluster → one expanded query per cluster.

This is the library's main entry point. Given a search engine, a seed
query, and a granularity k, it retrieves the (optionally top-k) results,
clusters them with a pluggable backend (k-means over TF vectors by default,
§C), builds one :class:`~repro.core.universe.ExpansionTask` per cluster, and
runs the configured expansion algorithm on each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.cluster.kmeans import CosineKMeans
from repro.cluster.vectorizer import TfVectorizer
from repro.core.config import ExpansionConfig
from repro.core.keyword_stats import select_candidates
from repro.core.metrics import eq1_score
from repro.core.universe import ExpansionOutcome, ExpansionTask, ResultUniverse
from repro.errors import ExpansionError
from repro.index.search import SearchEngine, SearchResult


class ExpansionAlgorithm(Protocol):
    """Anything with a ``name`` and an ``expand(task) -> ExpansionOutcome``."""

    name: str

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:  # pragma: no cover
        ...


class ClusteringBackend(Protocol):
    """Anything that maps a row matrix to integer labels."""

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class _KMeansBackend:
    """Default backend: spherical k-means (§C)."""

    def __init__(self, n_clusters: int, seed: int) -> None:
        self._kmeans = CosineKMeans(n_clusters=n_clusters, seed=seed)

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        return self._kmeans.fit(matrix).labels


@dataclass(frozen=True)
class ExpandedQuery:
    """One expanded query with its per-cluster quality measures."""

    terms: tuple[str, ...]
    cluster_id: int
    cluster_size: int
    fmeasure: float
    precision: float
    recall: float
    outcome: ExpansionOutcome

    def display(self) -> str:
        """Human-readable form, feature triplets kept verbatim."""
        return ", ".join(self.terms)

    def to_dict(self) -> dict:
        """JSON-ready form (see repro.api.schema for the schema contract)."""
        from repro.api import schema

        return schema.expanded_query_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "ExpandedQuery":
        """Inverse of :meth:`to_dict`."""
        from repro.api import schema

        return schema.expanded_query_from_dict(payload)


@dataclass(frozen=True)
class ExpansionReport:
    """Everything produced for one seed query."""

    seed_query: str
    seed_terms: tuple[str, ...]
    expanded: tuple[ExpandedQuery, ...]
    score: float  # Eq. 1 over the returned expanded queries
    n_results: int
    n_clusters: int
    cluster_labels: tuple[int, ...]
    clustering_seconds: float
    expansion_seconds: float
    results: tuple[SearchResult, ...] = field(default_factory=tuple, repr=False)

    def queries(self) -> list[str]:
        return [eq.display() for eq in self.expanded]

    def to_dict(self) -> dict:
        """Versioned JSON envelope (``schema_version``; repro.api.schema)."""
        from repro.api import schema

        return schema.report_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "ExpansionReport":
        """Inverse of :meth:`to_dict`; rejects unsupported versions."""
        from repro.api import schema

        return schema.report_from_dict(payload)


class ClusterQueryExpander:
    """Cluster-then-expand query expansion (the paper's framework).

    Parameters
    ----------
    engine:
        The search substrate over the corpus.
    algorithm:
        The per-cluster expansion algorithm (ISKR, PEBC, or the delta-F
        variant), or its name in :data:`repro.api.ALGORITHMS`.
    config:
        Pipeline knobs; see :class:`~repro.core.config.ExpansionConfig`.
    clusterer:
        Optional clustering backend override (must provide ``fit_predict``),
        or its name in :data:`repro.api.CLUSTERERS`.
    candidate_cache:
        Optional mutable mapping memoizing candidate-keyword selection per
        (seed terms, universe). :class:`repro.api.Session` passes one so
        repeated seed queries and multi-algorithm comparisons share the
        TF-IDF candidate statistics.
    """

    def __init__(
        self,
        engine: SearchEngine,
        algorithm: ExpansionAlgorithm | str,
        config: ExpansionConfig | None = None,
        clusterer: ClusteringBackend | str | None = None,
        candidate_cache: dict | None = None,
    ) -> None:
        self._engine = engine
        self._config = config or ExpansionConfig()
        if isinstance(algorithm, str):
            from repro.api.registries import ALGORITHMS

            algorithm = ALGORITHMS.create(
                algorithm, seed=self._config.cluster_seed
            )
        self._algorithm = algorithm
        if isinstance(clusterer, str):
            from repro.api.registries import CLUSTERERS

            clusterer = CLUSTERERS.create(
                clusterer,
                self._config.n_clusters,
                seed=self._config.cluster_seed,
            )
        self._clusterer = clusterer
        self._candidate_cache = candidate_cache

    @property
    def config(self) -> ExpansionConfig:
        return self._config

    @property
    def algorithm(self) -> ExpansionAlgorithm:
        return self._algorithm

    # -- pipeline steps ------------------------------------------------------

    def retrieve(self, query: str) -> list[SearchResult]:
        """Step 1: run the seed query (AND semantics, ranked, top-k)."""
        return self._engine.search(query, top_k=self._config.top_k_results)

    def cluster(self, results: Sequence[SearchResult]) -> np.ndarray:
        """Step 2: cluster results into <= k clusters over TF vectors."""
        docs = [r.document for r in results]
        matrix = TfVectorizer(docs).matrix()
        backend = self._clusterer or _KMeansBackend(
            self._config.n_clusters, self._config.cluster_seed
        )
        labels = np.asarray(backend.fit_predict(matrix), dtype=np.int64)
        if labels.shape != (len(docs),):
            raise ExpansionError(
                f"clusterer returned labels of shape {labels.shape} "
                f"for {len(docs)} results"
            )
        return labels

    def build_universe(self, results: Sequence[SearchResult]) -> ResultUniverse:
        """Step 3: the result universe, weighted by ranking if configured."""
        docs = [r.document for r in results]
        if self._config.use_ranking_weights:
            # Guard against zero scores (can happen only for degenerate
            # scorers); shift into positive territory.
            raw = np.array([r.score for r in results], dtype=np.float64)
            floor = raw[raw > 0.0].min() * 0.5 if np.any(raw > 0.0) else 1.0
            weights = np.maximum(raw, floor)
            return ResultUniverse(docs, weights)
        return ResultUniverse(docs)

    def tasks(
        self,
        universe: ResultUniverse,
        labels: np.ndarray,
        seed_terms: tuple[str, ...],
    ) -> list[ExpansionTask]:
        """Step 4: one task per cluster, largest-weight clusters first."""
        candidates = self._candidates(universe, seed_terms)
        cluster_ids = sorted(set(int(l) for l in labels))
        tasks = []
        for cid in cluster_ids:
            mask = labels == cid
            tasks.append(
                ExpansionTask(
                    universe=universe,
                    cluster_mask=mask,
                    seed_terms=seed_terms,
                    candidates=candidates,
                    semantics=self._config.semantics,
                    cluster_id=cid,
                )
            )
        tasks.sort(key=lambda t: -t.cluster_weight())
        return tasks[: self._config.max_expanded_queries]

    def _candidates(
        self, universe: ResultUniverse, seed_terms: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Candidate keywords, memoized in the shared cache when present.

        The same seed query always yields the same universe (retrieval is
        deterministic), so (seed terms, universe doc ids, selection knobs)
        identifies the statistics. A racing double-compute under threads is
        benign: both writers store identical values.
        """
        key = None
        if self._candidate_cache is not None:
            key = (
                seed_terms,
                tuple(doc.doc_id for doc in universe.documents),
                self._config.candidate_fraction,
                self._config.min_candidates,
            )
            cached = self._candidate_cache.get(key)
            if cached is not None:
                return cached
        candidates = select_candidates(
            self._engine.index,
            universe,
            seed_terms,
            fraction=self._config.candidate_fraction,
            min_candidates=self._config.min_candidates,
        )
        if key is not None:
            self._candidate_cache[key] = candidates
        return candidates

    # -- the whole thing ------------------------------------------------------

    def expand(self, query: str) -> ExpansionReport:
        """Run the full pipeline for ``query``."""
        results = self.retrieve(query)
        if not results:
            raise ExpansionError(f"seed query {query!r} retrieved no results")
        seed_terms = tuple(self._engine.parse(query))

        t0 = time.perf_counter()
        labels = self.cluster(results)
        t_cluster = time.perf_counter() - t0

        universe = self.build_universe(results)

        t0 = time.perf_counter()
        tasks = self.tasks(universe, labels, seed_terms)
        expanded: list[ExpandedQuery] = []
        for task in tasks:
            outcome = self._algorithm.expand(task)
            expanded.append(
                ExpandedQuery(
                    terms=outcome.terms,
                    cluster_id=task.cluster_id,
                    cluster_size=int(task.cluster_mask.sum()),
                    fmeasure=outcome.fmeasure,
                    precision=outcome.precision,
                    recall=outcome.recall,
                    outcome=outcome,
                )
            )
        t_expand = time.perf_counter() - t0

        score = eq1_score([eq.fmeasure for eq in expanded])
        return ExpansionReport(
            seed_query=query,
            seed_terms=seed_terms,
            expanded=tuple(expanded),
            score=score,
            n_results=len(results),
            n_clusters=len(set(int(l) for l in labels)),
            cluster_labels=tuple(int(l) for l in labels),
            clustering_seconds=t_cluster,
            expansion_seconds=t_expand,
            results=tuple(results),
        )
