"""End-to-end expansion: search → cluster → one expanded query per cluster.

This is the library's main entry point. Given a search engine, a seed
query, and a granularity k, it retrieves the (optionally top-k) results,
clusters them with a pluggable backend (k-means over TF vectors by default,
§C), builds one :class:`~repro.core.universe.ExpansionTask` per cluster, and
runs the configured expansion algorithm on each.

Since the pipeline redesign, :class:`ClusterQueryExpander` is a thin
binding of runtime components (engine, algorithm, config, clusterer,
caches) to a :class:`~repro.pipeline.Pipeline` of stage objects — every
step method executes the same stage instances that ``expand`` runs, and
per-stage wall clock is recorded by the pipeline's timing middleware
(``ExpansionReport.stage_timings``), retrieval included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.core.config import ExpansionConfig
from repro.core.universe import ExpansionOutcome, ExpansionTask, ResultUniverse
from repro.errors import ExpansionError
from repro.index.search import SearchEngine, SearchResult

if TYPE_CHECKING:  # pragma: no cover — lazy at runtime (import cycle)
    from repro.pipeline import ExecutionContext, Pipeline, StageTiming


class ExpansionAlgorithm(Protocol):
    """Anything with a ``name`` and an ``expand(task) -> ExpansionOutcome``."""

    name: str

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:  # pragma: no cover
        ...


class ClusteringBackend(Protocol):
    """Anything that maps a row matrix to integer labels."""

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ExpandedQuery:
    """One expanded query with its per-cluster quality measures."""

    terms: tuple[str, ...]
    cluster_id: int
    cluster_size: int
    fmeasure: float
    precision: float
    recall: float
    outcome: ExpansionOutcome

    def display(self) -> str:
        """Human-readable form, feature triplets kept verbatim."""
        return ", ".join(self.terms)

    def to_dict(self) -> dict:
        """JSON-ready form (see repro.api.schema for the schema contract)."""
        from repro.api import schema

        return schema.expanded_query_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "ExpandedQuery":
        """Inverse of :meth:`to_dict`."""
        from repro.api import schema

        return schema.expanded_query_from_dict(payload)


@dataclass(frozen=True)
class ExpansionReport:
    """Everything produced for one seed query."""

    seed_query: str
    seed_terms: tuple[str, ...]
    expanded: tuple[ExpandedQuery, ...]
    score: float  # Eq. 1 over the returned expanded queries
    n_results: int
    n_clusters: int
    cluster_labels: tuple[int, ...]
    clustering_seconds: float
    expansion_seconds: float
    results: tuple[SearchResult, ...] = field(default_factory=tuple, repr=False)
    #: Per-stage wall clock, execution order (schema v2; empty for v1 payloads).
    stage_timings: tuple["StageTiming", ...] = field(default_factory=tuple)

    def queries(self) -> list[str]:
        return [eq.display() for eq in self.expanded]

    @property
    def retrieval_seconds(self) -> float:
        """Seconds spent in the retrieve stage (0.0 for legacy payloads)."""
        return sum(t.seconds for t in self.stage_timings if t.stage == "retrieve")

    def to_dict(self) -> dict:
        """Versioned JSON envelope (``schema_version``; repro.api.schema)."""
        from repro.api import schema

        return schema.report_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "ExpansionReport":
        """Inverse of :meth:`to_dict`; rejects unsupported versions."""
        from repro.api import schema

        return schema.report_from_dict(payload)


def report_from_context(ctx: "ExecutionContext") -> ExpansionReport:
    """Assemble the :class:`ExpansionReport` from a completed pipeline run.

    The legacy coarse timing fields are derived from the per-stage
    timings: ``clustering_seconds`` is the ``cluster`` stage,
    ``expansion_seconds`` covers candidate mining, task construction, and
    the per-cluster expansion (what the pre-pipeline code timed as one
    block).
    """
    return ExpansionReport(
        seed_query=ctx.query,
        seed_terms=ctx.seed_terms,
        expanded=tuple(ctx.expanded),
        score=float(ctx.score),
        n_results=len(ctx.results),
        n_clusters=len(set(int(lab) for lab in ctx.labels)),
        cluster_labels=tuple(int(lab) for lab in ctx.labels),
        clustering_seconds=ctx.seconds_for("cluster"),
        expansion_seconds=(
            ctx.seconds_for("candidates")
            + ctx.seconds_for("tasks")
            + ctx.seconds_for("expand")
        ),
        results=tuple(ctx.results),
        stage_timings=ctx.timings,
    )


class ClusterQueryExpander:
    """Cluster-then-expand query expansion (the paper's framework).

    Parameters
    ----------
    engine:
        The search substrate over the corpus.
    algorithm:
        The per-cluster expansion algorithm (ISKR, PEBC, or the delta-F
        variant), or its name in :data:`repro.api.ALGORITHMS`.
    config:
        Pipeline knobs; see :class:`~repro.core.config.ExpansionConfig`.
    clusterer:
        Optional clustering backend override (must provide ``fit_predict``),
        or its name in :data:`repro.api.CLUSTERERS`.
    candidate_cache:
        Optional mutable mapping memoizing candidate-keyword selection per
        (seed terms, universe). :class:`repro.api.Session` passes one so
        repeated seed queries and multi-algorithm comparisons share the
        TF-IDF candidate statistics.
    pipeline:
        Optional :class:`~repro.pipeline.Pipeline` override (custom or
        reordered stages, extra middleware). Defaults to
        :func:`repro.pipeline.default_pipeline`.
    """

    def __init__(
        self,
        engine: SearchEngine,
        algorithm: ExpansionAlgorithm | str,
        config: ExpansionConfig | None = None,
        clusterer: ClusteringBackend | str | None = None,
        candidate_cache: dict | None = None,
        pipeline: "Pipeline | None" = None,
    ) -> None:
        self._engine = engine
        self._config = config or ExpansionConfig()
        if isinstance(algorithm, str):
            from repro.api.registries import ALGORITHMS

            algorithm = ALGORITHMS.create(
                algorithm, seed=self._config.cluster_seed
            )
        self._algorithm = algorithm
        if isinstance(clusterer, str):
            from repro.api.registries import CLUSTERERS

            clusterer = CLUSTERERS.create(
                clusterer,
                self._config.n_clusters,
                seed=self._config.cluster_seed,
            )
        self._clusterer = clusterer
        self._candidate_cache = candidate_cache
        if pipeline is None:
            from repro.pipeline import default_pipeline

            pipeline = default_pipeline()
        self._pipeline = pipeline

    @property
    def config(self) -> ExpansionConfig:
        return self._config

    @property
    def algorithm(self) -> ExpansionAlgorithm:
        return self._algorithm

    @property
    def pipeline(self) -> "Pipeline":
        """The stage pipeline this expander executes."""
        return self._pipeline

    # -- pipeline plumbing ---------------------------------------------------

    def context(self, query: str = "") -> "ExecutionContext":
        """A fresh :class:`ExecutionContext` bound to this expander."""
        from repro.pipeline import ExecutionContext

        return ExecutionContext(
            engine=self._engine,
            config=self._config,
            algorithm=self._algorithm,
            clusterer=self._clusterer,
            candidate_cache=self._candidate_cache,
            query=query,
        )

    def run_stages(
        self, query: str, until: str | None = None
    ) -> "ExecutionContext":
        """Run the pipeline for ``query``, optionally stopping early.

        ``until`` names the last stage to execute (e.g. ``"tasks"``);
        harnesses that need intermediate artifacts get them off the
        returned context with per-stage timings already recorded.
        """
        return self._pipeline.run(self.context(query), stop_after=until)

    # -- pipeline steps (compat; each executes the shared stage object) ------

    def retrieve(self, query: str) -> list[SearchResult]:
        """Step 1: run the seed query (AND semantics, ranked, top-k).

        Returns ``[]`` when nothing matches — callers probing queries
        can branch; the empty-result guard fires only inside full
        pipeline runs (:meth:`expand`), where the stage raises.
        """
        try:
            stage = self._pipeline.get_stage("retrieve")
            return list(stage.run(self.context(query)).results)
        except ExpansionError:
            return []

    def cluster(self, results: Sequence[SearchResult]) -> np.ndarray:
        """Step 2: cluster results into <= k clusters over TF vectors."""
        ctx = self.context().evolve(results=tuple(results))
        return self._pipeline.get_stage("cluster").run(ctx).labels

    def build_universe(self, results: Sequence[SearchResult]) -> ResultUniverse:
        """Step 3: the result universe, weighted by ranking if configured."""
        ctx = self.context().evolve(results=tuple(results))
        return self._pipeline.get_stage("universe").run(ctx).universe

    def tasks(
        self,
        universe: ResultUniverse,
        labels: np.ndarray,
        seed_terms: tuple[str, ...],
    ) -> list[ExpansionTask]:
        """Step 4: one task per cluster, largest-weight clusters first."""
        ctx = self.context().evolve(
            universe=universe,
            labels=np.asarray(labels, dtype=np.int64),
            seed_terms=tuple(seed_terms),
        )
        ctx = self._pipeline.get_stage("candidates").run(ctx)
        return list(self._pipeline.get_stage("tasks").run(ctx).tasks)

    # -- the whole thing ------------------------------------------------------

    def expand(self, query: str) -> ExpansionReport:
        """Run the full pipeline for ``query``."""
        return report_from_context(self.run_stages(query))
