"""Vectorized result-set algebra over a fixed universe of results.

For one expansion task, the universe is ``R(seed) = C ∪ U`` — the results of
the original user query (§2, Definition 2.2). Result sets are boolean masks
over the universe; the weighted set size ``S(·)`` is a dot product with the
ranking-weight vector; the elimination set ``E(k)`` (results *not* containing
keyword k) is the negated row of a term-incidence matrix.

This representation makes the per-keyword benefit/cost quantities of §3 and
the affected-keyword test ("keywords that do not appear in all delta
results") single vectorized operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.documents import Document
from repro.errors import ExpansionError

AND = "and"
OR = "or"


class ResultUniverse:
    """The result set of the seed query, with weights and term incidence.

    Parameters
    ----------
    documents:
        The seed query's results (order defines mask positions).
    weights:
        Optional ranking scores (§2's weighted precision/recall). ``None``
        means unweighted, i.e. unit weights. All weights must be positive —
        a zero-weight result would silently drop out of every ``S(·)``.
    """

    def __init__(
        self,
        documents: list[Document],
        weights: list[float] | np.ndarray | None = None,
    ) -> None:
        if not documents:
            raise ExpansionError("a result universe needs at least one result")
        self._documents = list(documents)
        n = len(self._documents)
        if weights is None:
            w = np.ones(n, dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n,):
                raise ExpansionError(
                    f"weights shape {w.shape} does not match {n} documents"
                )
            if np.any(w <= 0.0) or not np.all(np.isfinite(w)):
                raise ExpansionError("weights must be positive and finite")
        self._weights = w
        terms = sorted({t for doc in self._documents for t in doc.terms})
        self._terms = terms
        self._term_row = {t: i for i, t in enumerate(terms)}
        incidence = np.zeros((len(terms), n), dtype=bool)
        for col, doc in enumerate(self._documents):
            for t in doc.terms:
                incidence[self._term_row[t], col] = True
        self._incidence = incidence

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of results in the universe."""
        return len(self._documents)

    @property
    def documents(self) -> list[Document]:
        return list(self._documents)

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def terms(self) -> list[str]:
        """All distinct terms over the universe, sorted."""
        return list(self._terms)

    def document(self, pos: int) -> Document:
        return self._documents[pos]

    def all_mask(self) -> np.ndarray:
        """Mask selecting every result."""
        return np.ones(self.n, dtype=bool)

    def empty_mask(self) -> np.ndarray:
        return np.zeros(self.n, dtype=bool)

    # -- term incidence ------------------------------------------------------

    def __contains__(self, term: object) -> bool:
        return term in self._term_row

    def has_mask(self, term: str) -> np.ndarray:
        """Mask of results containing ``term`` (all-False for unseen terms)."""
        row = self._term_row.get(term)
        if row is None:
            return np.zeros(self.n, dtype=bool)
        return self._incidence[row].copy()

    def elimination_mask(self, term: str) -> np.ndarray:
        """E(k): results *not* containing ``term`` (§3)."""
        return ~self.has_mask(term)

    def incidence_rows(self, terms: list[str]) -> np.ndarray:
        """Stacked has-masks for ``terms`` (unseen terms become all-False rows)."""
        out = np.zeros((len(terms), self.n), dtype=bool)
        for i, t in enumerate(terms):
            row = self._term_row.get(t)
            if row is not None:
                out[i] = self._incidence[row]
        return out

    # -- result-set evaluation ----------------------------------------------

    def results_mask(self, terms: list[str] | tuple[str, ...], semantics: str = AND) -> np.ndarray:
        """R(q) within the universe for the query ``terms``.

        AND: results containing every term (an empty query retrieves the
        whole universe — the seed query's terms are implicit because every
        universe member already matches the seed).
        OR: results containing at least one term (empty query → empty set).
        """
        if semantics == AND:
            mask = self.all_mask()
            for t in terms:
                mask &= self.has_mask(t)
            return mask
        if semantics == OR:
            mask = self.empty_mask()
            for t in terms:
                mask |= self.has_mask(t)
            return mask
        raise ExpansionError(f"unknown semantics: {semantics!r}")

    def weight_of(self, mask: np.ndarray) -> float:
        """S(mask): total ranking score of the selected results (§2)."""
        return float(self._weights[mask].sum())

    def count(self, mask: np.ndarray) -> int:
        return int(mask.sum())

    def total_weight(self) -> float:
        return float(self._weights.sum())


@dataclass(frozen=True)
class ExpansionTask:
    """One per-cluster expansion problem (Definition 2.2).

    Attributes
    ----------
    universe:
        All results of the seed query (``C ∪ U``).
    cluster_mask:
        Boolean mask of the target cluster C over the universe.
    seed_terms:
        The user query's normalized terms. These are always part of the
        expanded query and are never removed.
    candidates:
        Candidate expansion keywords (e.g. top-20% by TF-IDF, §C). Must not
        overlap the seed terms.
    semantics:
        ``"and"`` (paper default) or ``"or"`` (paper appendix).
    """

    universe: ResultUniverse
    cluster_mask: np.ndarray
    seed_terms: tuple[str, ...]
    candidates: tuple[str, ...]
    semantics: str = AND
    cluster_id: int = 0

    def __post_init__(self) -> None:
        mask = np.asarray(self.cluster_mask, dtype=bool)
        if mask.shape != (self.universe.n,):
            raise ExpansionError(
                f"cluster mask shape {mask.shape} != universe size {self.universe.n}"
            )
        object.__setattr__(self, "cluster_mask", mask)
        if not mask.any():
            raise ExpansionError("cluster C must contain at least one result")
        if set(self.candidates) & set(self.seed_terms):
            raise ExpansionError("candidates must not overlap seed terms")
        if self.semantics not in (AND, OR):
            raise ExpansionError(f"unknown semantics: {self.semantics!r}")

    @property
    def other_mask(self) -> np.ndarray:
        """U: results of the seed query not in the cluster."""
        return ~self.cluster_mask

    def cluster_weight(self) -> float:
        """S(C)."""
        return self.universe.weight_of(self.cluster_mask)

    def other_weight(self) -> float:
        """S(U)."""
        return self.universe.weight_of(self.other_mask)


@dataclass(frozen=True)
class ExpansionOutcome:
    """Result of running one expansion algorithm on one task.

    ``terms`` is the full expanded query (seed terms first, then additions in
    the order they survived). ``trace`` records the add/remove steps for
    diagnostics. ``value_updates`` counts per-keyword value recomputations —
    the quantity the ISKR affected-keyword optimization reduces versus the
    delta-F-measure variant (§3, §5.3).
    """

    terms: tuple[str, ...]
    fmeasure: float
    precision: float
    recall: float
    iterations: int = 0
    value_updates: int = 0
    trace: tuple[str, ...] = field(default_factory=tuple)
    cluster_id: int = 0

    def added_terms(self, seed_terms: tuple[str, ...]) -> tuple[str, ...]:
        """The non-seed terms of the expanded query."""
        seed = set(seed_terms)
        return tuple(t for t in self.terms if t not in seed)

    def to_dict(self) -> dict:
        """JSON-ready form (see repro.api.schema for the schema contract)."""
        from repro.api import schema

        return schema.outcome_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "ExpansionOutcome":
        """Inverse of :meth:`to_dict`."""
        from repro.api import schema

        return schema.outcome_from_dict(payload)
