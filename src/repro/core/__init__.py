"""QEC core: the paper's contribution.

Given a user query and a clustering of its results, generate one expanded
query per cluster whose result set is as close to the cluster as possible
(maximal F-measure with the cluster as ground truth, §2). The overall
objective (Eq. 1) is the harmonic mean of per-cluster F-measures.

Modules
-------
- :mod:`~repro.core.universe` — vectorized result-set algebra over the seed
  query's results (``R(q)``, ``E(k)``, weighted ``S(·)``).
- :mod:`~repro.core.metrics` — weighted precision / recall / F-measure and
  the Eq. 1 score.
- :mod:`~repro.core.keyword_stats` — candidate-keyword selection (top
  fraction by TF-IDF, §C) and vectorized benefit/cost computation.
- :mod:`~repro.core.iskr` — Iterative Single-Keyword Refinement (§3).
- :mod:`~repro.core.fmeasure` — the delta-F-measure variant baseline (§5).
- :mod:`~repro.core.strategies` — PEBC sample-query generation (§4.1-4.3).
- :mod:`~repro.core.pebc` — Partial Elimination Based Convergence (§4).
- :mod:`~repro.core.expander` — end-to-end pipeline: search → cluster →
  one expanded query per cluster.
"""

from repro.core.config import ExpansionConfig
from repro.core.exact import ExhaustiveOptimalExpansion
from repro.core.expander import ClusterQueryExpander, ExpandedQuery, ExpansionReport
from repro.core.fmeasure import DeltaFMeasureRefinement
from repro.core.interleaved import InterleavedExpander, InterleavedReport
from repro.core.iskr import ISKR
from repro.core.metrics import eq1_score, fmeasure, precision_recall_f
from repro.core.pebc import PEBC
from repro.core.universe import ExpansionTask, ResultUniverse
from repro.core.vsm import VectorSpaceRefinement

__all__ = [
    "InterleavedExpander",
    "InterleavedReport",
    "ClusterQueryExpander",
    "DeltaFMeasureRefinement",
    "ExhaustiveOptimalExpansion",
    "ExpandedQuery",
    "ExpansionConfig",
    "ExpansionReport",
    "ExpansionTask",
    "ISKR",
    "PEBC",
    "ResultUniverse",
    "VectorSpaceRefinement",
    "eq1_score",
    "fmeasure",
    "precision_recall_f",
]
