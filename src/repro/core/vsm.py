"""Vector-space-model expansion (§7 future work).

"We would also like to study how to support vector space retrieval model."

Under the vector space model an expanded query retrieves a *ranked* list —
a result need not contain every keyword. This algorithm generates, per
cluster, a query whose ranked retrieval best matches the cluster:

1. documents of the universe get L2-normalized TF-IDF vectors (IDF from
   the universe itself, so the module is self-contained);
2. a query is a set of terms; a document's score is the sum of its vector
   components over the query terms;
3. R(q) is the best *prefix* of the score ranking — the F-measure-optimal
   cutoff is found by scanning prefixes (an O(n log n) sweep);
4. terms are added greedily while the best-prefix F-measure improves.

Because the cutoff adapts, recall is no longer hostage to AND semantics —
the vector-space analogue of the keyword-interaction problem disappears,
at the price of needing a ranking threshold at query time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.universe import AND, ExpansionOutcome, ExpansionTask
from repro.errors import ExpansionError


class VectorSpaceRefinement:
    """Greedy query construction under ranked (vector-space) retrieval."""

    name = "VSM"

    def __init__(self, max_terms: int = 8, epsilon: float = 1e-9) -> None:
        if max_terms < 1:
            raise ExpansionError(f"max_terms must be >= 1, got {max_terms}")
        self._max_terms = max_terms
        self._epsilon = epsilon

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:
        if task.semantics != AND:
            raise ExpansionError(
                "VectorSpaceRefinement interprets the task under ranked "
                "retrieval; construct the task with semantics='and'"
            )
        uni = task.universe
        n = uni.n
        weights = uni.weights
        in_cluster = np.asarray(task.cluster_mask, dtype=bool)
        s_cluster = float(weights[in_cluster].sum())

        # Universe-level TF-IDF document vectors, one column per candidate.
        candidates = list(task.candidates)
        tf = np.zeros((n, len(candidates)), dtype=np.float64)
        for col, term in enumerate(candidates):
            for row, doc in enumerate(uni.documents):
                count = doc.terms.get(term, 0)
                if count:
                    tf[row, col] = 1.0 + math.log(count)
        df = (tf > 0).sum(axis=0)
        idf = np.log(1.0 + n / np.maximum(df, 1))
        mat = tf * idf[None, :]
        norms = np.linalg.norm(mat, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        mat = mat / norms

        def best_prefix_f(scores: np.ndarray) -> tuple[float, np.ndarray]:
            """Max F over prefixes of the positive-score ranking."""
            order = np.argsort(-scores, kind="stable")
            positive = scores[order] > 0.0
            if not positive.any():
                return 0.0, np.zeros(n, dtype=bool)
            order = order[positive]
            w = weights[order]
            inter = np.cumsum(w * in_cluster[order])
            total = np.cumsum(w)
            precision = inter / total
            recall = inter / s_cluster
            with np.errstate(divide="ignore", invalid="ignore"):
                f = np.where(
                    precision + recall > 0.0,
                    2.0 * precision * recall / (precision + recall),
                    0.0,
                )
            best = int(np.argmax(f))
            mask = np.zeros(n, dtype=bool)
            mask[order[: best + 1]] = True
            return float(f[best]), mask

        selected: list[int] = []
        scores = np.zeros(n, dtype=np.float64)
        current_f = 0.0
        current_mask = np.zeros(n, dtype=bool)
        trace: list[str] = []
        evaluations = 0
        while len(selected) < self._max_terms:
            best_col = -1
            best_f = current_f
            best_scores: np.ndarray | None = None
            best_mask: np.ndarray | None = None
            for col in range(len(candidates)):
                if col in selected:
                    continue
                tentative = scores + mat[:, col]
                f, mask = best_prefix_f(tentative)
                evaluations += 1
                if f > best_f + self._epsilon:
                    best_col, best_f = col, f
                    best_scores, best_mask = tentative, mask
            if best_col < 0:
                break
            selected.append(best_col)
            scores = best_scores  # type: ignore[assignment]
            current_mask = best_mask  # type: ignore[assignment]
            current_f = best_f
            trace.append("+" + candidates[best_col])

        s_r = float(weights[current_mask].sum())
        s_inter = float(weights[current_mask & in_cluster].sum())
        precision = s_inter / s_r if s_r > 0 else 0.0
        recall = s_inter / s_cluster if s_cluster > 0 else 0.0
        f = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return ExpansionOutcome(
            terms=tuple(task.seed_terms)
            + tuple(candidates[c] for c in selected),
            fmeasure=f,
            precision=precision,
            recall=recall,
            iterations=len(selected),
            value_updates=evaluations,
            trace=tuple(trace),
            cluster_id=task.cluster_id,
        )
