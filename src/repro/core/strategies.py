"""Partial-elimination strategies for PEBC sample-query generation (§4).

Given a target x% — the share of U's weight to eliminate — build a query
(seed + keywords) that eliminates as close to x% of U as possible while
maximizing what is retained of C. Three strategies from the paper:

* :class:`FixedOrderStrategy` (§4.1) — always pick the globally best
  benefit/cost keyword. Inherently produces prefix queries of one fixed
  keyword order, so it cannot steer toward a target percentage (the paper's
  argument for why this is infeasible). Kept as an ablation baseline.
* :class:`RandomSubsetStrategy` (§4.2) — randomly select a subset of U
  worth ~x%, then greedily cover it; eliminating unselected results counts
  as cost. Quality depends heavily on the drawn subset.
* :class:`SingleResultStrategy` (§4.3) — the paper's choice: repeatedly
  pick one random not-yet-eliminated U result and the best-value keyword
  that eliminates it (ties → the keyword eliminating fewer results).

All strategies implement the stop rule of §4.3: once the target is crossed,
the last keyword is kept only if that leaves the eliminated share closer to
the target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.keyword_stats import value_ratio
from repro.core.universe import AND, ExpansionTask
from repro.errors import ExpansionError


@dataclass(frozen=True)
class SampleQuery:
    """A generated sample query and its elimination bookkeeping."""

    terms: tuple[str, ...]  # seed + selected keywords
    selected: tuple[str, ...]  # the non-seed keywords, in selection order
    result_mask: np.ndarray  # R(terms) over the universe
    eliminated_share: float  # achieved share of S(U) eliminated, in [0, 1]


class _EliminationState:
    """Shared bookkeeping: current R(q) and elimination accounting."""

    def __init__(self, task: ExpansionTask) -> None:
        if task.semantics != AND:
            raise ExpansionError("partial elimination is defined for AND semantics")
        self.task = task
        self.uni = task.universe
        self.selected: list[str] = []
        self.mask = self.uni.results_mask(task.seed_terms, semantics=AND)
        self.total_u = task.other_weight()

    def eliminated_weight(self) -> float:
        """Weight of U results no longer retrieved."""
        remaining = self.uni.weight_of(self.mask & self.task.other_mask)
        return self.total_u - remaining

    def share(self) -> float:
        if self.total_u <= 0.0:
            return 0.0
        return self.eliminated_weight() / self.total_u

    def add(self, keyword: str) -> None:
        self.selected.append(keyword)
        self.mask = self.mask & self.uni.has_mask(keyword)

    def undo_last(self) -> None:
        last = self.selected.pop()
        terms = tuple(self.task.seed_terms) + tuple(self.selected)
        self.mask = self.uni.results_mask(terms, semantics=AND)
        del last

    def finish(self) -> SampleQuery:
        return SampleQuery(
            terms=tuple(self.task.seed_terms) + tuple(self.selected),
            selected=tuple(self.selected),
            result_mask=self.mask.copy(),
            eliminated_share=self.share(),
        )

    def benefit_cost(self, keyword: str) -> tuple[float, float, int]:
        """(benefit, cost, #eliminated) of adding ``keyword`` now (§3 defs)."""
        elim = self.mask & ~self.uni.has_mask(keyword)
        benefit = self.uni.weight_of(elim & self.task.other_mask)
        cost = self.uni.weight_of(elim & self.task.cluster_mask)
        return benefit, cost, int(elim.sum())

    def apply_stop_rule(self, target_share: float, before_share: float) -> bool:
        """Keep the last keyword only if it lands closer to the target (§4.3).

        Returns True if the last keyword was undone.
        """
        after_share = self.share()
        if abs(before_share - target_share) < abs(after_share - target_share):
            self.undo_last()
            return True
        return False


class SingleResultStrategy:
    """§4.3: select one random uneliminated U result, then the best keyword
    that eliminates it.

    The per-step keyword scan is vectorized over the candidate incidence
    matrix: one boolean-matrix pass computes every candidate's benefit,
    cost and elimination count against the current R(q).
    """

    name = "single-result"

    def generate(
        self, task: ExpansionTask, target_share: float, rng: np.random.Generator
    ) -> SampleQuery:
        state = _EliminationState(task)
        if target_share <= 0.0 or state.total_u <= 0.0:
            return state.finish()
        target_share = min(target_share, 1.0)
        uni = task.universe
        candidates = task.candidates
        not_h = ~uni.incidence_rows(list(candidates))  # row k: E(k)
        weights = uni.weights
        other = task.other_mask
        cluster = task.cluster_mask
        name_rank = np.argsort(np.argsort(np.array(candidates)))
        selected_rows = np.zeros(len(candidates), dtype=bool)

        blocked: set[int] = set()  # U results no candidate can eliminate
        guard = 0
        max_steps = len(candidates) + uni.n + 1
        while state.share() < target_share and guard < max_steps:
            guard += 1
            remaining = np.flatnonzero(state.mask & task.other_mask)
            pickable = [int(i) for i in remaining if int(i) not in blocked]
            if not pickable:
                break
            r = int(rng.choice(np.asarray(pickable)))
            eligible = not_h[:, r] & ~selected_rows
            if not eligible.any():
                blocked.add(r)
                continue
            elim = not_h & state.mask[None, :]
            benefits = (elim & other[None, :]) @ weights
            costs = (elim & cluster[None, :]) @ weights
            counts = elim.sum(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                values = np.where(
                    benefits <= 0.0,
                    0.0,
                    np.where(costs <= 0.0, np.inf, benefits / costs),
                )
            values = np.where(eligible, values, -np.inf)
            order = np.lexsort((name_rank, counts, -values))
            row = int(order[0])
            if values[row] == -np.inf:
                blocked.add(r)
                continue
            before = state.share()
            state.add(candidates[row])
            selected_rows[row] = True
            if state.share() >= target_share:
                if state.apply_stop_rule(target_share, before):
                    selected_rows[row] = False
                break
        return state.finish()


class FixedOrderStrategy:
    """§4.1: repeatedly take the globally best benefit/cost keyword.

    Deterministic; the rng argument is accepted for interface uniformity.
    """

    name = "fixed-order"

    def generate(
        self, task: ExpansionTask, target_share: float, rng: np.random.Generator
    ) -> SampleQuery:
        del rng
        state = _EliminationState(task)
        if target_share <= 0.0 or state.total_u <= 0.0:
            return state.finish()
        target_share = min(target_share, 1.0)
        while state.share() < target_share:
            best_kw = ""
            best_key: tuple[float, int, str] | None = None
            for kw in task.candidates:
                if kw in state.selected:
                    continue
                benefit, cost, n_elim = state.benefit_cost(kw)
                if benefit <= 0.0:
                    continue  # eliminates nothing from U: useless here
                key = (-value_ratio(benefit, cost), n_elim, kw)
                if best_key is None or key < best_key:
                    best_key, best_kw = key, kw
            if best_key is None:
                break
            before = state.share()
            state.add(best_kw)
            if state.share() >= target_share:
                state.apply_stop_rule(target_share, before)
                break
        return state.finish()


class RandomSubsetStrategy:
    """§4.2: draw a random ~x% subset S of U, then greedily cover S.

    Keyword score is covered-weight of S divided by cost, where cost counts
    both eliminated C results and eliminated U results *outside* S (the
    benefit/cost adjustment illustrated in Example 4.3).
    """

    name = "random-subset"

    def generate(
        self, task: ExpansionTask, target_share: float, rng: np.random.Generator
    ) -> SampleQuery:
        state = _EliminationState(task)
        if target_share <= 0.0 or state.total_u <= 0.0:
            return state.finish()
        target_share = min(target_share, 1.0)
        subset = self._draw_subset(task, target_share, rng)
        guard = 0
        while state.share() < target_share and guard <= len(task.candidates):
            guard += 1
            to_cover = state.mask & subset
            if not to_cover.any():
                break
            best_kw = ""
            best_key: tuple[float, int, str] | None = None
            for kw in task.candidates:
                if kw in state.selected:
                    continue
                elim = state.mask & ~task.universe.has_mask(kw)
                covered = task.universe.weight_of(elim & subset)
                if covered <= 0.0:
                    continue
                stray = task.universe.weight_of(elim & task.other_mask & ~subset)
                cost = task.universe.weight_of(elim & task.cluster_mask) + stray
                key = (-value_ratio(covered, cost), int(elim.sum()), kw)
                if best_key is None or key < best_key:
                    best_key, best_kw = key, kw
            if best_key is None:
                break
            before = state.share()
            state.add(best_kw)
            if state.share() >= target_share:
                state.apply_stop_rule(target_share, before)
                break
        return state.finish()

    @staticmethod
    def _draw_subset(
        task: ExpansionTask, target_share: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Randomly accumulate U results until ~target_share of S(U)."""
        uni = task.universe
        u_positions = np.flatnonzero(task.other_mask)
        order = rng.permutation(u_positions)
        total = task.other_weight()
        target_w = target_share * total
        subset = uni.empty_mask()
        acc = 0.0
        for pos in order:
            if acc >= target_w:
                break
            subset[pos] = True
            acc += float(uni.weights[pos])
        return subset


STRATEGIES = {
    SingleResultStrategy.name: SingleResultStrategy,
    FixedOrderStrategy.name: FixedOrderStrategy,
    RandomSubsetStrategy.name: RandomSubsetStrategy,
}


def make_strategy(name: str):
    """Instantiate a strategy by its paper-section name."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ExpansionError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
