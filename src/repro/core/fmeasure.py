"""The delta-F-measure refinement variant (comparison system of §5).

Identical control flow to ISKR but a keyword's value is the *exact change in
F-measure* caused by adding/removing it. This measures keyword worth
perfectly, so its quality is the same or slightly better than ISKR's — but
every change to q invalidates every keyword's delta-F (F depends on R(q) as
a whole), so all values are recomputed each iteration (§5.3, Figure 6).

This is deliberately the *straightforward* implementation the paper
compares against: per candidate, the result set R(q ∪ {k}) is re-derived
from the documents' term sets and the weighted precision/recall computed
from scratch — no incidence-matrix precomputation, no incremental
maintenance. ISKR's §3 machinery (maintainable benefit/cost, affected-
keyword updates) exists precisely to avoid this work; giving the baseline
that machinery would erase the effect the paper measures in Figure 6.
"""

from __future__ import annotations

from repro.core.metrics import precision_recall_f
from repro.core.universe import AND, ExpansionOutcome, ExpansionTask
from repro.errors import ExpansionError


class DeltaFMeasureRefinement:
    """ISKR's control loop with delta-F-measure keyword values."""

    name = "F-measure"

    def __init__(self, max_iterations: int = 100, epsilon: float = 1e-12) -> None:
        if max_iterations < 1:
            raise ExpansionError(f"max_iterations must be >= 1, got {max_iterations}")
        self._max_iterations = max_iterations
        self._epsilon = epsilon

    def expand(self, task: ExpansionTask) -> ExpansionOutcome:
        if task.semantics != AND:
            raise ExpansionError("the delta-F variant supports AND semantics only")
        uni = task.universe
        docs = uni.documents
        weights = [float(x) for x in uni.weights]
        in_cluster = [bool(b) for b in task.cluster_mask]
        s_cluster = sum(w for w, c in zip(weights, in_cluster) if c)

        def evaluate(result_rows: list[int]) -> float:
            """F-measure of a result set, computed from scratch."""
            s_r = sum(weights[i] for i in result_rows)
            s_inter = sum(weights[i] for i in result_rows if in_cluster[i])
            if s_r <= 0.0 or s_inter <= 0.0:
                return 0.0
            precision = s_inter / s_r
            recall = s_inter / s_cluster
            return 2.0 * precision * recall / (precision + recall)

        def retrieve(terms: tuple[str, ...]) -> list[int]:
            """R(terms) over the universe, via document term-set membership."""
            return [
                i for i, doc in enumerate(docs)
                if all(t in doc.terms for t in terms)
            ]

        added: list[str] = []
        current_rows = retrieve(task.seed_terms)
        current_f = evaluate(current_rows)

        trace: list[str] = []
        seen_states: set[frozenset[str]] = {frozenset()}
        iterations = 0
        value_updates = 0

        while iterations < self._max_iterations:
            best_kind = ""
            best_kw = ""
            best_f = current_f
            best_rows: list[int] | None = None
            # Additions: every candidate, one full retrieval + F evaluation.
            for kw in task.candidates:
                if kw in added:
                    continue
                rows = [i for i in current_rows if kw in docs[i].terms]
                f = evaluate(rows)
                value_updates += 1
                if f > best_f + self._epsilon or (
                    f > best_f - self._epsilon
                    and f > current_f + self._epsilon
                    and kw < best_kw
                ):
                    best_kind, best_kw, best_f, best_rows = "add", kw, f, rows
            # Removals: every previously added keyword, full re-retrieval.
            for kw in added:
                rest = tuple(k for k in added if k != kw)
                rows = retrieve(tuple(task.seed_terms) + rest)
                f = evaluate(rows)
                value_updates += 1
                if f > best_f + self._epsilon:
                    best_kind, best_kw, best_f, best_rows = "remove", kw, f, rows
            if best_rows is None or best_f <= current_f + self._epsilon:
                break
            if best_kind == "add":
                new_added = added + [best_kw]
            else:
                new_added = [k for k in added if k != best_kw]
            state = frozenset(new_added)
            if state in seen_states:
                break
            seen_states.add(state)
            added = new_added
            current_rows = best_rows
            current_f = best_f
            iterations += 1
            trace.append(("+" if best_kind == "add" else "-") + best_kw)

        final_terms = tuple(task.seed_terms) + tuple(added)
        mask = uni.results_mask(final_terms)
        precision, recall, f = precision_recall_f(uni, mask, task.cluster_mask)
        return ExpansionOutcome(
            terms=final_terms,
            fmeasure=f,
            precision=precision,
            recall=recall,
            iterations=iterations,
            value_updates=value_updates,
            trace=tuple(trace),
            cluster_id=task.cluster_id,
        )
