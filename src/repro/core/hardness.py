"""Adversarial QEC instances from the hardness reduction's structure.

The paper proves QEC APX-hard by reduction from set-cover-style problems
(the proof is in the technical report [17]; the structural connection is
visible in §4.1's discussion of weighted partial set cover). This module
generates instances that exhibit that structure, so the heuristics can be
stress-tested against the exhaustive optimum:

* :func:`greedy_trap_task` — a deterministic instance where the highest
  benefit/cost keyword is a *trap*: adding it first blocks the disjoint
  pair of keywords forming the true optimum. Single-keyword greedy without
  removal provably lands in a local optimum here.
* :func:`random_setcover_task` — random keyword/elimination incidence with
  tunable density, the generic hard case.
* :func:`hardness_suite` — a seeded batch of random instances for
  benchmarks.

All generators return :class:`~repro.core.universe.ExpansionTask` objects
small enough for :class:`~repro.core.exact.ExhaustiveOptimalExpansion`.
"""

from __future__ import annotations

import numpy as np

from repro.core.universe import ExpansionTask, ResultUniverse
from repro.data.documents import Document
from repro.errors import ExpansionError

SEED_TERM = "q0"


def _docs_from_incidence(
    n_results: int,
    keywords: list[str],
    contains: dict[str, set[int]],
    prefix: str,
) -> list[Document]:
    """Build documents where keyword k occurs in positions contains[k].

    Every document carries the seed term plus a unique filler term (so no
    document is empty besides the seed and documents stay distinct).
    """
    docs = []
    for pos in range(n_results):
        terms = {SEED_TERM: 1, f"{prefix}filler{pos}": 1}
        for kw in keywords:
            if pos in contains[kw]:
                terms[kw] = 1
        docs.append(Document(doc_id=f"{prefix}{pos}", terms=terms))
    return docs


def greedy_trap_task() -> ExpansionTask:
    """A deterministic local-optimum trap for benefit/cost greedy.

    Layout: cluster C = positions 0..3 with ranking weights (1, 1, 1, 3);
    other results U = positions 4..11, weight 1 each.

    ========  ============  ===============
    keyword   occurs in C   occurs in U
    ========  ============  ===============
    trap      0, 1          none
    left      0, 1, 2       4, 5, 6, 7
    right     0, 1, 2       8, 9, 10, 11
    ========  ============  ===============

    Initial values: ``trap`` eliminates all of U (benefit 8) and the C
    results {2, 3} (cost 1 + 3 = 4) → value 2. ``left``/``right`` each
    eliminate half of U (benefit 4) at the cost of the heavy result 3
    (cost 3) → value 4/3. Greedy therefore adds ``trap``; afterwards every
    addition has value 0 and removing ``trap`` has value 0.5, so ISKR
    stops at F = 0.5 (retrieving only {0, 1}).

    The optimum is {left, right}: together they eliminate all of U while
    keeping {0, 1, 2} — F = 2/3. The instance also defeats the delta-F
    variant, which refuses every single addition (each lowers F from the
    empty query's 0.6) and stops at F = 0.6 < 2/3: reaching the optimum
    requires a *pair* of individually-bad keywords, the set-cover
    interaction at the heart of the hardness proof.
    """
    n = 12
    cluster_positions = set(range(4))
    contains = {
        "trap": {0, 1},
        "left": {0, 1, 2, 4, 5, 6, 7},
        "right": {0, 1, 2, 8, 9, 10, 11},
    }
    docs = _docs_from_incidence(n, list(contains), contains, "trap-")
    weights = [1.0, 1.0, 1.0, 3.0] + [1.0] * 8
    universe = ResultUniverse(docs, weights)
    mask = np.array([pos in cluster_positions for pos in range(n)])
    return ExpansionTask(
        universe=universe,
        cluster_mask=mask,
        seed_terms=(SEED_TERM,),
        candidates=("trap", "left", "right"),
    )


def random_setcover_task(
    n_cluster: int = 6,
    n_other: int = 10,
    n_keywords: int = 8,
    density: float = 0.45,
    seed: int = 0,
) -> ExpansionTask:
    """A random set-cover-structured instance.

    Each keyword occurs in a random ``density`` fraction of the cluster
    and a random (1 - density) fraction of U, giving elimination sets with
    overlapping, conflicting coverage — the regime where greedy choices
    interact badly. All sizes are validated to stay within the exhaustive
    solver's budget.
    """
    if n_cluster < 1 or n_other < 1:
        raise ExpansionError("need at least one result on each side")
    if n_keywords < 1 or n_keywords > 16:
        raise ExpansionError(f"n_keywords must be in [1, 16], got {n_keywords}")
    if not 0.0 < density < 1.0:
        raise ExpansionError(f"density must be in (0, 1), got {density}")
    rng = np.random.default_rng(seed)
    n = n_cluster + n_other
    keywords = [f"k{i:02d}" for i in range(n_keywords)]
    contains: dict[str, set[int]] = {}
    for kw in keywords:
        in_c = {
            pos for pos in range(n_cluster) if rng.random() < density
        }
        in_u = {
            n_cluster + pos
            for pos in range(n_other)
            if rng.random() < (1.0 - density)
        }
        contains[kw] = in_c | in_u
    docs = _docs_from_incidence(n, keywords, contains, f"sc{seed}-")
    universe = ResultUniverse(docs)
    mask = np.array([pos < n_cluster for pos in range(n)])
    return ExpansionTask(
        universe=universe,
        cluster_mask=mask,
        seed_terms=(SEED_TERM,),
        candidates=tuple(keywords),
    )


def hardness_suite(
    count: int = 10,
    seed: int = 0,
    n_keywords: int = 8,
) -> list[ExpansionTask]:
    """``count`` random adversarial tasks plus the deterministic trap."""
    if count < 1:
        raise ExpansionError(f"count must be >= 1, got {count}")
    tasks = [greedy_trap_task()]
    for i in range(count - 1):
        tasks.append(
            random_setcover_task(seed=seed + i, n_keywords=n_keywords)
        )
    return tasks
