"""Generic string-keyed component registry.

Every pluggable axis of the library (expansion algorithms, clustering
backends, retrieval scorers, datasets) is a :class:`Registry` mapping a
short name to a factory. Built-ins register themselves in
:mod:`repro.api.registries`; third-party code extends an axis with the
same decorator::

    from repro.api import ALGORITHMS

    @ALGORITHMS.register("myalg")
    def _make_myalg(seed, **kwargs):
        return MyAlgorithm(**kwargs)

Names are case-insensitive and stored lowercased. Lookups of unknown
names raise :class:`~repro.errors.RegistryError` listing the known names,
so typos fail loudly at configuration time rather than deep inside a run.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import RegistryError

Factory = Callable[..., Any]


class Registry:
    """A named mapping from component names to factories.

    Parameters
    ----------
    kind:
        Human-readable axis name ("algorithm", "clusterer", ...), used in
        error messages.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._factories: dict[str, Factory] = {}

    @property
    def kind(self) -> str:
        return self._kind

    # -- registration --------------------------------------------------------

    def register(
        self, name: str, factory: Factory | None = None
    ) -> Callable[[Factory], Factory] | Factory:
        """Register ``factory`` under ``name``.

        Usable as a decorator (``@REG.register("x")``) or directly
        (``REG.register("x", make_x)``). Re-registering a name replaces the
        previous factory (latest wins), so tests and plugins can override
        built-ins.
        """
        key = self._normalize(name)

        def _add(fn: Factory) -> Factory:
            self._factories[key] = fn
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove ``name``; unknown names raise :class:`RegistryError`."""
        key = self._normalize(name)
        if key not in self._factories:
            raise self._unknown(key)
        del self._factories[key]

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> Factory:
        """The factory registered under ``name``."""
        key = self._normalize(name)
        try:
            return self._factories[key]
        except KeyError:
            raise self._unknown(key) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component: ``get(name)(*args, **kwargs)``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._normalize(name) in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self._kind!r}, names={list(self.names())})"

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise RegistryError("component names must be non-empty strings")
        return name.strip().lower()

    def _unknown(self, key: str) -> RegistryError:
        known = ", ".join(self.names()) or "<none>"
        return RegistryError(
            f"unknown {self._kind} {key!r}; registered {self._kind}s: {known}"
        )
