"""Deprecated alias of :mod:`repro.api.registries` (the canonical module).

The :class:`Registry` class and the registry instances historically
lived in two sibling modules (``registry`` vs ``registries``), an
easy-to-typo split. Everything now lives in
:mod:`repro.api.registries`; importing this module re-exports
:class:`Registry`/``Factory`` *and* the six registry instances from
there (so legacy ``from repro.api.registry import ALGORITHMS`` keeps
working) and emits a :class:`DeprecationWarning`. Update imports to::

    from repro.api import Registry            # preferred
    from repro.api.registries import Registry  # equivalent
"""

from __future__ import annotations

import warnings

from repro.api.registries import (
    ALGORITHMS,
    BACKENDS,
    CLUSTERERS,
    DATASETS,
    Factory,
    Registry,
    SCORERS,
    STAGES,
)

warnings.warn(
    "repro.api.registry is deprecated; import Registry from repro.api "
    "(or repro.api.registries)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "CLUSTERERS",
    "DATASETS",
    "Factory",
    "Registry",
    "SCORERS",
    "STAGES",
]
