"""Stable JSON schema for expansion results (the service boundary).

Every payload that can cross a process boundary — reports, batch results,
search results — serializes to plain JSON types (dict/list/str/int/float/
bool) via ``to_dict`` and reconstructs losslessly via ``from_dict``. The
outermost payloads carry a versioned envelope::

    {"schema_version": 2, "kind": "expansion_report", ...}

Versioning policy (see API.md): additive changes (new optional keys) keep
the version; renames, removals, and meaning changes bump
:data:`SCHEMA_VERSION` and extend :data:`SUPPORTED_VERSIONS` with a
migration in :func:`check_envelope`. Readers reject unknown versions with
:class:`~repro.errors.SchemaError` instead of mis-parsing them.

Version history:

* **v1** — initial envelope (PR 1).
* **v2** — reports carry structured per-stage observability:
  ``stage_timings`` (``[{"stage": ..., "seconds": ...}, ...]`` in
  execution order, from the pipeline's timing middleware). v1 payloads
  remain readable: they round-trip losslessly with empty
  ``stage_timings``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.data.documents import Document
from repro.errors import SchemaError
from repro.pipeline.context import StageTiming

if TYPE_CHECKING:
    from repro.core.expander import ExpandedQuery, ExpansionReport
    from repro.core.universe import ExpansionOutcome
    from repro.index.search import SearchResult

SCHEMA_VERSION = 2
SUPPORTED_VERSIONS = frozenset({1, 2})

KIND_REPORT = "expansion_report"
KIND_BATCH = "batch_report"

#: Report-envelope fields that differ on every recompute (wall clock).
#: Strip these before comparing two payloads for *content* equality —
#: the serving benchmark's ingestion gate and any "did the answer
#: change?" check depend on this list staying in sync with
#: :func:`report_to_dict`.
VOLATILE_REPORT_KEYS = (
    "clustering_seconds",
    "expansion_seconds",
    "stage_timings",
)


def report_content(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The payload minus :data:`VOLATILE_REPORT_KEYS` (content identity)."""
    return {k: v for k, v in payload.items() if k not in VOLATILE_REPORT_KEYS}


def make_envelope(kind: str, data: dict[str, Any]) -> dict[str, Any]:
    """Wrap ``data`` in the versioned envelope for ``kind``."""
    out = {"schema_version": SCHEMA_VERSION, "kind": kind}
    out.update(data)
    return out


def check_envelope(payload: Mapping[str, Any], kind: str) -> None:
    """Validate version and kind; raise :class:`SchemaError` otherwise."""
    if not isinstance(payload, Mapping):
        raise SchemaError(f"expected a mapping, got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version not in SUPPORTED_VERSIONS:
        raise SchemaError(
            f"unsupported schema_version {version!r}; "
            f"supported: {sorted(SUPPORTED_VERSIONS)}"
        )
    got = payload.get("kind")
    if got != kind:
        raise SchemaError(f"expected kind {kind!r}, got {got!r}")


def require(payload: Mapping[str, Any], key: str) -> Any:
    """``payload[key]``, raising :class:`SchemaError` when absent."""
    try:
        return payload[key]
    except KeyError:
        raise SchemaError(f"payload is missing required key {key!r}") from None


# -- documents and search results -------------------------------------------


def document_to_dict(doc: Document) -> dict[str, Any]:
    return {
        "doc_id": doc.doc_id,
        "terms": {t: int(c) for t, c in doc.terms.items()},
        "kind": doc.kind,
        "title": doc.title,
        "fields": dict(doc.fields),
    }


def document_from_dict(payload: Mapping[str, Any]) -> Document:
    return Document(
        doc_id=require(payload, "doc_id"),
        terms={t: int(c) for t, c in require(payload, "terms").items()},
        kind=payload.get("kind", "text"),
        title=payload.get("title", ""),
        fields=dict(payload.get("fields", {})),
    )


def search_result_to_dict(result: "SearchResult") -> dict[str, Any]:
    return {
        "position": int(result.position),
        "score": float(result.score),
        "document": document_to_dict(result.document),
    }


def search_result_from_dict(payload: Mapping[str, Any]) -> "SearchResult":
    from repro.index.search import SearchResult

    return SearchResult(
        position=int(require(payload, "position")),
        document=document_from_dict(require(payload, "document")),
        score=float(require(payload, "score")),
    )


# -- expansion outcomes ------------------------------------------------------


def outcome_to_dict(outcome: "ExpansionOutcome") -> dict[str, Any]:
    return {
        "terms": list(outcome.terms),
        "fmeasure": float(outcome.fmeasure),
        "precision": float(outcome.precision),
        "recall": float(outcome.recall),
        "iterations": int(outcome.iterations),
        "value_updates": int(outcome.value_updates),
        "trace": list(outcome.trace),
        "cluster_id": int(outcome.cluster_id),
    }


def outcome_from_dict(payload: Mapping[str, Any]) -> "ExpansionOutcome":
    from repro.core.universe import ExpansionOutcome

    return ExpansionOutcome(
        terms=tuple(require(payload, "terms")),
        fmeasure=float(require(payload, "fmeasure")),
        precision=float(require(payload, "precision")),
        recall=float(require(payload, "recall")),
        iterations=int(payload.get("iterations", 0)),
        value_updates=int(payload.get("value_updates", 0)),
        trace=tuple(payload.get("trace", ())),
        cluster_id=int(payload.get("cluster_id", 0)),
    )


def expanded_query_to_dict(eq: "ExpandedQuery") -> dict[str, Any]:
    return {
        "terms": list(eq.terms),
        "cluster_id": int(eq.cluster_id),
        "cluster_size": int(eq.cluster_size),
        "fmeasure": float(eq.fmeasure),
        "precision": float(eq.precision),
        "recall": float(eq.recall),
        "outcome": outcome_to_dict(eq.outcome),
    }


def expanded_query_from_dict(payload: Mapping[str, Any]) -> "ExpandedQuery":
    from repro.core.expander import ExpandedQuery

    return ExpandedQuery(
        terms=tuple(require(payload, "terms")),
        cluster_id=int(require(payload, "cluster_id")),
        cluster_size=int(require(payload, "cluster_size")),
        fmeasure=float(require(payload, "fmeasure")),
        precision=float(require(payload, "precision")),
        recall=float(require(payload, "recall")),
        outcome=outcome_from_dict(require(payload, "outcome")),
    )


# -- reports -----------------------------------------------------------------


def _stage_timing(payload: Mapping[str, Any]) -> StageTiming:
    """StageTiming.from_dict with schema-grade error reporting."""
    try:
        return StageTiming.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed stage_timings entry: {exc!r}") from None


def report_to_dict(report: "ExpansionReport") -> dict[str, Any]:
    return make_envelope(
        KIND_REPORT,
        {
            "seed_query": report.seed_query,
            "seed_terms": list(report.seed_terms),
            "expanded": [expanded_query_to_dict(eq) for eq in report.expanded],
            "score": float(report.score),
            "n_results": int(report.n_results),
            "n_clusters": int(report.n_clusters),
            "cluster_labels": [int(lab) for lab in report.cluster_labels],
            "clustering_seconds": float(report.clustering_seconds),
            "expansion_seconds": float(report.expansion_seconds),
            "results": [search_result_to_dict(r) for r in report.results],
            "stage_timings": [t.to_dict() for t in report.stage_timings],
        },
    )


def report_from_dict(payload: Mapping[str, Any]) -> "ExpansionReport":
    from repro.core.expander import ExpansionReport

    check_envelope(payload, KIND_REPORT)
    return ExpansionReport(
        seed_query=require(payload, "seed_query"),
        seed_terms=tuple(require(payload, "seed_terms")),
        expanded=tuple(
            expanded_query_from_dict(eq) for eq in require(payload, "expanded")
        ),
        score=float(require(payload, "score")),
        n_results=int(require(payload, "n_results")),
        n_clusters=int(require(payload, "n_clusters")),
        cluster_labels=tuple(int(lab) for lab in require(payload, "cluster_labels")),
        clustering_seconds=float(require(payload, "clustering_seconds")),
        expansion_seconds=float(require(payload, "expansion_seconds")),
        results=tuple(
            search_result_from_dict(r) for r in payload.get("results", ())
        ),
        # v1 payloads predate per-stage observability; absent = empty.
        stage_timings=tuple(
            _stage_timing(t) for t in payload.get("stage_timings", ())
        ),
    )
