"""The library's front door: a validated, cached, batchable session.

A :class:`Session` binds one corpus + search engine + expansion setup
behind a fluent builder::

    session = (Session.builder()
               .dataset("wikipedia")
               .retrieval("bm25")
               .backend("sharded", shards=8)
               .clusterer("bisecting")
               .algorithm("pebc")
               .config(n_clusters=4)
               .build())
    report = session.expand("java")
    batch = session.expand_many(["java", "columbia", "rockets"], workers=4)

All component names resolve through the registries in
:mod:`repro.api.registries`, so anything a plugin registers is reachable
here. The builder validates names, component kwargs, and known-bad
combinations at :meth:`~SessionBuilder.build` time — a misconfigured
session fails before any retrieval work happens.

What a session caches across queries:

* the corpus, analyzer, engine, and index (built once);
* seed-query retrievals (repeated seed queries never re-search);
* candidate-keyword statistics per (seed terms, universe) — shared by
  every algorithm run on the same seed query.

Algorithm and clusterer instances are created fresh per ``expand`` call
from their registered factories, so stateful components (PEBC's RNG,
AutoClustering's selection) never leak state between queries or between
:meth:`~Session.expand_many` worker threads — batch output is identical
to running :meth:`~Session.expand` per query.

Execution itself is a :class:`~repro.pipeline.Pipeline` of stage
objects (retrieve → cluster → universe → candidates → tasks → expand),
shared by every path through the session — ``expand``, batches,
interleaving, and the step methods. Compose it at build time::

    session = (Session.builder()
               .dataset("wikipedia")
               .stage(MyReranker(), after="retrieve")
               .replace_stage("candidates", MyMiner())
               .middleware(TraceMiddleware())
               .build())
    ctx = session.run_stages("java", until="tasks")   # partial run
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.api import schema
from repro.api.registries import (
    ALGORITHMS,
    BACKENDS,
    CLUSTERERS,
    DATASETS,
    SCORERS,
    STAGES,
)
from repro.caching import LRUTTLCache
from repro.core.config import ExpansionConfig
from repro.core.expander import ClusterQueryExpander, ExpansionReport
from repro.core.universe import ResultUniverse
from repro.errors import ConfigError, SchemaError
from repro.index.search import SearchEngine, SearchResult
from repro.pipeline import ExecutionContext, Middleware, Pipeline, default_pipeline
from repro.text.analyzer import Analyzer

if TYPE_CHECKING:
    from repro.core.interleaved import InterleavedReport
    from repro.core.universe import ExpansionTask
    from repro.data.corpus import Corpus
    from repro.index.backend import IndexBackend


#: Default bounds: plenty for experiment sweeps, finite for services.
DEFAULT_RETRIEVAL_CACHE_SIZE = 1024
DEFAULT_CANDIDATE_CACHE_SIZE = 1024


class CachingSearchEngine:
    """A :class:`SearchEngine` proxy that memoizes ``search()`` calls.

    Sessions route every retrieval through one of these, so repeated seed
    queries (common in batches and experiment sweeps) hit the index once.
    Thread-safe (the cache is a locked :class:`~repro.caching.
    LRUTTLCache`); cached result lists are copied on the way out; at
    most ``maxsize`` retrievals are kept, least-recently-used first out.
    """

    def __init__(
        self,
        engine: SearchEngine,
        maxsize: int = DEFAULT_RETRIEVAL_CACHE_SIZE,
    ) -> None:
        self._engine = engine
        self._cache = LRUTTLCache(maxsize=maxsize)

    @property
    def corpus(self) -> "Corpus":
        return self._engine.corpus

    @property
    def index(self) -> "IndexBackend":
        return self._engine.index

    @property
    def analyzer(self) -> Analyzer:
        return self._engine.analyzer

    @property
    def scorer(self) -> Any:
        return self._engine.scorer

    @property
    def inner(self) -> SearchEngine:
        """The wrapped engine."""
        return self._engine

    def cache_info(self) -> dict[str, int]:
        stats = self._cache.stats()
        return {key: stats[key] for key in ("entries", "capacity", "hits", "misses")}

    def cache_clear(self) -> None:
        self._cache.clear()

    def refresh(self) -> None:
        """Drop cached retrievals and rebuild the inner engine's scorer.

        The serving layer calls this when a mutable backend ingests
        documents: cached result lists and the scorer's collection-
        statistics snapshot are both stale the moment the index changes.
        """
        self.cache_clear()
        refresh = getattr(self._engine, "refresh_scoring", None)
        if callable(refresh):
            refresh()

    def parse(self, query: str) -> list[str]:
        return self._engine.parse(query)

    def search(
        self,
        query: str,
        top_k: int | None = None,
        semantics: str = "and",
    ) -> list[SearchResult]:
        key = (query, top_k, semantics)
        hit, cached = self._cache.lookup(key)
        if hit:
            return list(cached)
        results = self._engine.search(query, top_k=top_k, semantics=semantics)
        self._cache.put(key, list(results))
        return results

    def search_terms(
        self,
        terms: list[str],
        top_k: int | None = None,
        semantics: str = "and",
    ) -> list[SearchResult]:
        return self._engine.search_terms(terms, top_k=top_k, semantics=semantics)

    def boolean_search(
        self, query: str, top_k: int | None = None
    ) -> list[SearchResult]:
        return self._engine.boolean_search(query, top_k=top_k)


# -- batch results -----------------------------------------------------------


@dataclass(frozen=True)
class BatchItem:
    """One query's outcome in a batch: a report or a structured error."""

    query: str
    report: ExpansionReport | None
    error_type: str | None = None
    error_message: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.report is not None

    # analyze: ignore[SCHEMA003] - 'ok' is a derived convenience key
    # (report is not None); from_dict re-derives it from 'report'
    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "ok": self.ok,
            "report": schema.report_to_dict(self.report) if self.report else None,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "seconds": float(self.seconds),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchItem":
        report = payload.get("report")
        return cls(
            query=schema.require(payload, "query"),
            report=schema.report_from_dict(report) if report else None,
            error_type=payload.get("error_type"),
            error_message=payload.get("error_message"),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class BatchReport:
    """Outcome of :meth:`Session.expand_many`, item order = input order."""

    items: tuple[BatchItem, ...]
    workers: int
    seconds: float

    @property
    def n_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    def reports(self) -> list[ExpansionReport]:
        """The successful reports, in input order."""
        return [item.report for item in self.items if item.report is not None]

    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if not item.ok]

    def to_dict(self) -> dict[str, Any]:
        return schema.make_envelope(
            schema.KIND_BATCH,
            {
                "items": [item.to_dict() for item in self.items],
                "workers": int(self.workers),
                "seconds": float(self.seconds),
            },
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchReport":
        schema.check_envelope(payload, schema.KIND_BATCH)
        return cls(
            items=tuple(
                BatchItem.from_dict(i) for i in schema.require(payload, "items")
            ),
            workers=int(schema.require(payload, "workers")),
            seconds=float(schema.require(payload, "seconds")),
        )


# -- builder -----------------------------------------------------------------


class SessionBuilder:
    """Fluent configuration for a :class:`Session`; see module docstring."""

    def __init__(self) -> None:
        self._dataset: str | None = None
        self._dataset_kwargs: dict[str, Any] = {}
        self._corpus = None
        self._engine: SearchEngine | None = None
        self._retrieval: str | None = None
        self._retrieval_kwargs: dict[str, Any] = {}
        self._backend: str | None = None
        self._backend_kwargs: dict[str, Any] = {}
        self._clusterer: str | None = None
        self._clusterer_kwargs: dict[str, Any] = {}
        self._algorithm: str = "iskr"
        self._algorithm_kwargs: dict[str, Any] = {}
        self._config_kwargs: dict[str, Any] = {}
        self._analyzer: Analyzer | None = None
        self._seed: int = 0
        self._retrieval_cache_size: int = DEFAULT_RETRIEVAL_CACHE_SIZE
        self._candidate_cache_size: int = DEFAULT_CANDIDATE_CACHE_SIZE
        self._stage_inserts: list[tuple[Any, str | None, str | None]] = []
        self._stage_replacements: list[tuple[str, Any]] = []
        self._middleware: list[Middleware] = []

    @staticmethod
    def _norm(name: str) -> str:
        # Registries are case-insensitive; normalize here too so name
        # comparisons (build-time guards, per-call overrides) agree.
        return name.strip().lower() if isinstance(name, str) else name

    def dataset(self, name: str, **kwargs: Any) -> "SessionBuilder":
        """Build the corpus from the dataset registry (kwargs → factory)."""
        self._dataset = self._norm(name)
        self._dataset_kwargs = dict(kwargs)
        return self

    def corpus(self, corpus: "Corpus") -> "SessionBuilder":
        """Use a prebuilt corpus instead of a registered dataset."""
        self._corpus = corpus
        return self

    def engine(self, engine: SearchEngine) -> "SessionBuilder":
        """Adopt a prebuilt engine (mutually exclusive with dataset/corpus/retrieval)."""
        self._engine = engine
        return self

    def retrieval(self, name: str, **kwargs: Any) -> "SessionBuilder":
        """Retrieval scorer by registry name (default ``"tfidf"``)."""
        self._retrieval = self._norm(name)
        self._retrieval_kwargs = dict(kwargs)
        return self

    def backend(self, name: str, **kwargs: Any) -> "SessionBuilder":
        """Index storage backend by registry name (default ``"memory"``).

        Built-ins: ``"memory"`` (flat inverted index), ``"disk"``
        (compressed QECX round-trip; pass ``path=...`` to persist),
        ``"sharded"`` (hash-partitioned; pass ``shards=8``). kwargs go
        to the backend factory in :data:`repro.api.registries.BACKENDS`.
        """
        self._backend = self._norm(name)
        self._backend_kwargs = dict(kwargs)
        return self

    def clusterer(self, name: str, **kwargs: Any) -> "SessionBuilder":
        """Clustering backend by registry name (default: spherical k-means)."""
        self._clusterer = self._norm(name)
        self._clusterer_kwargs = dict(kwargs)
        return self

    def algorithm(self, name: str, **kwargs: Any) -> "SessionBuilder":
        """Expansion algorithm by registry name (default ``"iskr"``)."""
        self._algorithm = self._norm(name)
        self._algorithm_kwargs = dict(kwargs)
        return self

    def config(self, **kwargs: Any) -> "SessionBuilder":
        """:class:`ExpansionConfig` knobs (``n_clusters=...``, ...)."""
        self._config_kwargs.update(kwargs)
        return self

    def analyzer(self, analyzer: Analyzer) -> "SessionBuilder":
        """Text analyzer shared by dataset generation and the engine."""
        self._analyzer = analyzer
        return self

    def seed(self, seed: int) -> "SessionBuilder":
        """Master RNG seed (datasets, clustering, stochastic algorithms)."""
        self._seed = int(seed)
        return self

    def cache_capacity(
        self,
        retrieval: int | None = None,
        candidates: int | None = None,
    ) -> "SessionBuilder":
        """LRU capacities for the session's per-seed caches.

        ``retrieval`` bounds memoized seed-query retrievals; ``candidates``
        bounds cached candidate-keyword statistics. Both default to 1024
        entries — plenty for experiment sweeps, finite for long-lived
        serving traffic. Current sizes are visible in
        :meth:`Session.describe` under ``"caches"``.
        """
        if retrieval is not None:
            if int(retrieval) < 1:
                raise ConfigError(
                    f"retrieval cache capacity must be >= 1, got {retrieval}"
                )
            self._retrieval_cache_size = int(retrieval)
        if candidates is not None:
            if int(candidates) < 1:
                raise ConfigError(
                    f"candidate cache capacity must be >= 1, got {candidates}"
                )
            self._candidate_cache_size = int(candidates)
        return self

    # -- pipeline composition ------------------------------------------------

    def stage(
        self,
        stage: Any,
        after: str | None = None,
        before: str | None = None,
    ) -> "SessionBuilder":
        """Insert a custom pipeline stage (appended unless anchored).

        ``stage`` is a :class:`~repro.pipeline.Stage` instance or a name
        in :data:`repro.api.STAGES`; ``after``/``before`` name an anchor
        stage in the default pipeline (e.g. a reranker with
        ``after="retrieve"``). Inserted stages run on every *pipeline*
        execution path — ``expand``, ``expand_many``,
        ``expand_interleaved``, ``run_stages`` — and show up in
        :meth:`Session.describe` and the report's ``stage_timings``.
        (The individual step methods ``retrieve``/``cluster``/... each
        execute exactly one named stage, by design.)
        """
        self._stage_inserts.append((stage, after, before))
        return self

    def replace_stage(self, name: str, stage: Any) -> "SessionBuilder":
        """Swap a default stage (e.g. the ``candidates`` miner) by name."""
        self._stage_replacements.append((name, stage))
        return self

    def middleware(self, *middleware: Middleware) -> "SessionBuilder":
        """Attach observability middleware (``on_stage_start/end/error``).

        Hook failures are isolated: a raising hook never corrupts a
        report. See :mod:`repro.pipeline.middleware`.
        """
        self._middleware.extend(middleware)
        return self

    # -- validation + construction ------------------------------------------

    def build(self) -> "Session":
        """Validate the combination and construct the session.

        Raises :class:`~repro.errors.ConfigError` (or its subclass
        :class:`~repro.errors.RegistryError`) on unknown component names,
        bad component kwargs, conflicting sources, or known-bad
        algorithm/config combinations.
        """
        sources = [
            s for s, set_ in (
                ("dataset", self._dataset is not None),
                ("corpus", self._corpus is not None),
                ("engine", self._engine is not None),
            ) if set_
        ]
        if not sources:
            raise ConfigError(
                "session needs a corpus source: .dataset(name), .corpus(c), "
                f"or .engine(e); registered datasets: {', '.join(DATASETS.names())}"
            )
        if len(sources) > 1:
            raise ConfigError(
                f"conflicting corpus sources: {' and '.join(sources)}; pick one"
            )
        if self._engine is not None and self._retrieval is not None:
            raise ConfigError(
                "retrieval() has no effect on a prebuilt engine(); "
                "configure scoring when constructing the engine instead"
            )
        if self._engine is not None and self._backend is not None:
            raise ConfigError(
                "backend() has no effect on a prebuilt engine(); "
                "configure storage when constructing the engine instead"
            )

        # Resolve names early so typos fail here, not mid-batch.
        ALGORITHMS.get(self._algorithm)
        if self._clusterer is not None:
            CLUSTERERS.get(self._clusterer)
        retrieval = self._retrieval or "tfidf"
        if self._engine is None:
            SCORERS.get(retrieval)
        backend = self._backend or "memory"
        if self._engine is None:
            BACKENDS.get(backend)
        if self._dataset is not None:
            DATASETS.get(self._dataset)

        config = self._build_config()
        if self._algorithm == "exact" and config.semantics != "and":
            raise ConfigError(
                "algorithm 'exact' supports AND semantics only; "
                f"got semantics={config.semantics!r}"
            )

        analyzer = self._analyzer or Analyzer(use_stemming=False)
        engine = self._build_engine(analyzer, retrieval, backend)
        session = Session(
            engine=engine,
            analyzer=analyzer,
            config=config,
            algorithm=self._algorithm,
            algorithm_kwargs=self._algorithm_kwargs,
            clusterer=self._clusterer,
            clusterer_kwargs=self._clusterer_kwargs,
            dataset=self._dataset,
            backend=None if self._engine is not None else backend,
            seed=self._seed,
            pipeline=self._build_pipeline(),
            retrieval_cache_size=self._retrieval_cache_size,
            candidate_cache_size=self._candidate_cache_size,
        )
        # Trial-create the per-query components once: bad kwargs and bad
        # (clusterer, config) combinations surface at build time.
        session._make_algorithm()
        session._make_clusterer()
        return session

    @staticmethod
    def _resolve_stage(stage: Any) -> Any:
        """A Stage instance from a registry name or a ready instance."""
        if isinstance(stage, str):
            return STAGES.create(SessionBuilder._norm(stage))
        if not isinstance(getattr(stage, "name", None), str) or not callable(
            getattr(stage, "run", None)
        ):
            raise ConfigError(
                f"custom stages need .name and .run(ctx); got {stage!r}"
            )
        return stage

    def _build_pipeline(self) -> Pipeline:
        """The session's pipeline: default stages + replacements + inserts.

        Unknown stage names and bad anchors raise at build time
        (:class:`~repro.errors.PipelineError` is a :class:`ConfigError`).
        """
        pipeline = default_pipeline()
        for name, stage in self._stage_replacements:
            pipeline = pipeline.replace_stage(
                self._norm(name), self._resolve_stage(stage)
            )
        for stage, after, before in self._stage_inserts:
            pipeline = pipeline.with_stage(
                self._resolve_stage(stage), after=after, before=before
            )
        if self._middleware:
            pipeline = pipeline.with_middleware(*self._middleware)
        return pipeline

    def _build_config(self) -> ExpansionConfig:
        kwargs = {"cluster_seed": self._seed}
        kwargs.update(self._config_kwargs)
        try:
            return ExpansionConfig(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"bad config() option: {exc}") from None

    def _build_engine(
        self, analyzer: Analyzer, retrieval: str, backend: str
    ) -> SearchEngine:
        if self._engine is not None:
            return self._engine
        if self._corpus is not None:
            corpus = self._corpus
        else:
            try:
                corpus = DATASETS.create(
                    self._dataset,
                    seed=self._seed,
                    analyzer=analyzer,
                    **self._dataset_kwargs,
                )
            except TypeError as exc:
                raise ConfigError(
                    f"bad dataset option for {self._dataset!r}: {exc}"
                ) from None
        if self._retrieval_kwargs:
            kwargs = self._retrieval_kwargs

            def scoring(index: Any) -> Any:
                return SCORERS.create(retrieval, index, **kwargs)

        else:
            scoring = retrieval
        if self._backend_kwargs:
            backend_kwargs = self._backend_kwargs

            def make_backend(corpus_: "Corpus") -> Any:
                try:
                    return BACKENDS.create(backend, corpus_, **backend_kwargs)
                except TypeError as exc:
                    raise ConfigError(
                        f"bad backend option for {backend!r}: {exc}"
                    ) from None

            backend_arg = make_backend
        else:
            backend_arg = backend
        return SearchEngine(corpus, analyzer, scoring=scoring, backend=backend_arg)


# -- the session -------------------------------------------------------------


class Session:
    """A configured expansion service over one corpus; see module docstring.

    Construct via :meth:`Session.builder`; the constructor is considered
    internal. Sessions are safe to share across threads.
    """

    def __init__(
        self,
        *,
        engine: SearchEngine | CachingSearchEngine,
        analyzer: Analyzer,
        config: ExpansionConfig,
        algorithm: str,
        algorithm_kwargs: Mapping[str, Any] | None = None,
        clusterer: str | None = None,
        clusterer_kwargs: Mapping[str, Any] | None = None,
        dataset: str | None = None,
        backend: str | None = None,
        seed: int = 0,
        pipeline: Pipeline | None = None,
        retrieval_cache_size: int = DEFAULT_RETRIEVAL_CACHE_SIZE,
        candidate_cache_size: int = DEFAULT_CANDIDATE_CACHE_SIZE,
        _candidate_cache: dict | None = None,
    ) -> None:
        if isinstance(engine, CachingSearchEngine):
            self._engine = engine
        else:
            self._engine = CachingSearchEngine(engine, maxsize=retrieval_cache_size)
        self._analyzer = analyzer
        self._config = config
        self._algorithm = algorithm
        self._algorithm_kwargs = dict(algorithm_kwargs or {})
        self._clusterer = clusterer
        self._clusterer_kwargs = dict(clusterer_kwargs or {})
        self._dataset = dataset
        self._backend = backend
        self._seed = seed
        self._pipeline = pipeline if pipeline is not None else default_pipeline()
        self._candidate_cache = (
            _candidate_cache
            if _candidate_cache is not None
            else LRUTTLCache(maxsize=candidate_cache_size)
        )

    @staticmethod
    def builder() -> SessionBuilder:
        return SessionBuilder()

    # -- introspection -------------------------------------------------------

    @property
    def engine(self) -> CachingSearchEngine:
        return self._engine

    @property
    def analyzer(self) -> Analyzer:
        return self._analyzer

    @property
    def config(self) -> ExpansionConfig:
        return self._config

    @property
    def algorithm_name(self) -> str:
        return self._algorithm

    @property
    def clusterer_name(self) -> str | None:
        return self._clusterer

    @property
    def dataset_name(self) -> str | None:
        return self._dataset

    @property
    def backend_name(self) -> str | None:
        """Registry name of the index backend (None for prebuilt engines)."""
        return self._backend

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def execution_pipeline(self) -> Pipeline:
        """The stage pipeline every expansion path of this session runs."""
        return self._pipeline

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Stage names in execution order (custom stages included)."""
        return self._pipeline.names

    def clear_caches(self) -> None:
        """Drop cached retrievals and candidate statistics.

        Siblings created with :meth:`with_config` share these caches, so
        clearing one session clears them for the whole family.
        """
        self._engine.cache_clear()
        self._candidate_cache.clear()

    def refresh(self) -> None:
        """Invalidate every cache tier *and* the scorer's stats snapshot.

        :meth:`clear_caches` plus a scorer rebuild on the wrapped engine —
        the full response to a mutable-backend ingestion. The serving
        layer (:mod:`repro.serve`) calls this from its
        :class:`~repro.index.dynamic.DynamicIndex` mutation listener.
        """
        self._engine.refresh()
        self._candidate_cache.clear()

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary of the session's configuration."""
        return {
            "dataset": self._dataset,
            "backend": self._backend,
            "algorithm": self._algorithm,
            "clusterer": self._clusterer or "kmeans",
            "n_clusters": self._config.n_clusters,
            "top_k_results": self._config.top_k_results,
            "semantics": self._config.semantics,
            "seed": self._seed,
            "stages": self._pipeline.describe(),
            "caches": self.cache_info(),
        }

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Entry counts, capacities, and hit/miss tallies per cache tier."""
        candidates = self._candidate_cache
        if isinstance(candidates, LRUTTLCache):
            stats = candidates.stats()
            info = {
                key: stats[key]
                for key in ("entries", "capacity", "hits", "misses")
            }
        else:  # a plain mapping injected by a caller
            info = {"entries": len(candidates)}
        return {
            "retrieval": self._engine.cache_info(),
            "candidates": info,
        }

    def with_config(self, **overrides: Any) -> "Session":
        """A sibling session with config overrides, sharing engine + caches."""
        try:
            config = replace(self._config, **overrides)
        except TypeError as exc:
            raise ConfigError(f"bad config override: {exc}") from None
        return Session(
            engine=self._engine,
            analyzer=self._analyzer,
            config=config,
            algorithm=self._algorithm,
            algorithm_kwargs=self._algorithm_kwargs,
            clusterer=self._clusterer,
            clusterer_kwargs=self._clusterer_kwargs,
            dataset=self._dataset,
            backend=self._backend,
            seed=self._seed,
            pipeline=self._pipeline,
            _candidate_cache=self._candidate_cache,
        )

    # -- component creation (fresh per call; see module docstring) -----------

    def _make_algorithm(self, name: str | None = None) -> Any:
        if name is not None:
            name = SessionBuilder._norm(name)
        if name is None or name == self._algorithm:
            kwargs = self._algorithm_kwargs
            name = self._algorithm
        else:
            kwargs = {}
        try:
            return ALGORITHMS.create(name, seed=self._seed, **kwargs)
        except TypeError as exc:
            raise ConfigError(f"bad algorithm option for {name!r}: {exc}") from None

    def _make_clusterer(self) -> Any:
        if self._clusterer is None:
            return None
        try:
            return CLUSTERERS.create(
                self._clusterer,
                self._config.n_clusters,
                seed=self._seed,
                **self._clusterer_kwargs,
            )
        except TypeError as exc:
            raise ConfigError(
                f"bad clusterer option for {self._clusterer!r}: {exc}"
            ) from None

    def pipeline(self, algorithm: str | None = None) -> ClusterQueryExpander:
        """A fresh single-query expander wired to this session's caches.

        The expander binds fresh per-call components (algorithm,
        clusterer) to the session's shared :attr:`execution_pipeline`,
        so every expander executes the same stage objects.
        """
        return ClusterQueryExpander(
            self._engine,
            self._make_algorithm(algorithm),
            self._config,
            self._make_clusterer(),
            candidate_cache=self._candidate_cache,
            pipeline=self._pipeline,
        )

    def run_stages(
        self,
        query: str,
        until: str | None = None,
        algorithm: str | None = None,
    ) -> ExecutionContext:
        """Run the pipeline for ``query``; return the final context.

        ``until`` names the last stage to execute (e.g. ``"tasks"``) for
        harnesses that need intermediate artifacts — the PRF comparison
        and the experiment suite consume retrievals, labels, universe,
        and tasks from the returned context, with per-stage timings
        already recorded.
        """
        return self.pipeline(algorithm).run_stages(query, until=until)

    # -- retrieval + pipeline steps ------------------------------------------

    def search(
        self, query: str, top_k: int | None = None, semantics: str = "and"
    ) -> list[SearchResult]:
        """Plain ranked retrieval (cached per session)."""
        return self._engine.search(query, top_k=top_k, semantics=semantics)

    def retrieve(self, query: str) -> list[SearchResult]:
        """Step 1 of the pipeline: seed-query results under the config."""
        return self.pipeline().retrieve(query)

    def cluster(self, results: Sequence[SearchResult]) -> np.ndarray:
        """Step 2: cluster the results with the configured backend."""
        return self.pipeline().cluster(results)

    def build_universe(self, results: Sequence[SearchResult]) -> ResultUniverse:
        """Step 3: the (optionally ranking-weighted) result universe."""
        return self.pipeline().build_universe(results)

    def tasks(
        self,
        universe: ResultUniverse,
        labels: np.ndarray,
        seed_terms: tuple[str, ...],
    ) -> "list[ExpansionTask]":
        """Step 4: per-cluster expansion tasks (candidates cached)."""
        return self.pipeline().tasks(universe, labels, seed_terms)

    # -- expansion ------------------------------------------------------------

    def expand(self, query: str, algorithm: str | None = None) -> ExpansionReport:
        """Run the full pipeline for one seed query.

        ``algorithm`` overrides the session's algorithm by registry name
        for this call only (engine, clustering, and candidate caches are
        shared, so comparing algorithms on one query is cheap).
        """
        return self.pipeline(algorithm).expand(query)

    def expand_interleaved(
        self,
        query: str,
        max_rounds: int = 4,
        algorithm: str | None = None,
    ) -> "InterleavedReport":
        """§7 interleaved clustering/expansion on this session's components."""
        from repro.core.interleaved import InterleavedExpander

        return InterleavedExpander(
            self._engine,
            self._make_algorithm(algorithm),
            self._config,
            clusterer=self._make_clusterer(),
            max_rounds=max_rounds,
            pipeline=self._pipeline,
        ).expand(query)

    def expand_many(
        self,
        queries: Iterable[str],
        workers: int = 1,
        algorithm: str | None = None,
    ) -> BatchReport:
        """Expand a batch of seed queries with per-query error isolation.

        Failed queries become :class:`BatchItem` error records (never
        exceptions), so one empty-result query cannot sink a batch.
        ``workers > 1`` fans out over threads; outputs are identical to
        sequential per-query :meth:`expand` calls and keep input order.
        """
        queries = list(queries)
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")

        def run_one(query: str) -> BatchItem:
            t0 = time.perf_counter()
            try:
                report = self.expand(query, algorithm=algorithm)
                return BatchItem(
                    query=query,
                    report=report,
                    seconds=time.perf_counter() - t0,
                )
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                return BatchItem(
                    query=query,
                    report=None,
                    error_type=type(exc).__name__,
                    error_message=str(exc),
                    seconds=time.perf_counter() - t0,
                )

        t0 = time.perf_counter()
        if workers == 1 or len(queries) <= 1:
            items = [run_one(q) for q in queries]
        else:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(queries))
            ) as pool:
                items = list(pool.map(run_one, queries))
        return BatchReport(
            items=tuple(items),
            workers=workers,
            seconds=time.perf_counter() - t0,
        )
