"""repro.api — registry-driven session façade (the library's front door).

See API.md at the repository root for the full guide. In short::

    from repro.api import Session

    session = (Session.builder()
               .dataset("wikipedia")
               .retrieval("bm25")
               .algorithm("pebc")
               .config(n_clusters=4)
               .build())
    report = session.expand("java")
    batch = session.expand_many(["java", "rockets"], workers=4)
    payload = report.to_dict()          # versioned, JSON-ready

Pluggable axes live in the registries; extend them with
``@ALGORITHMS.register("name")`` (and likewise for clusterers, scorers,
and datasets).
"""

from repro.api.registries import (
    ALGORITHMS,
    BACKENDS,
    CLUSTERERS,
    DATASETS,
    Registry,
    SCORERS,
    STAGES,
)
from repro.api.schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    report_from_dict,
    report_to_dict,
)
from repro.api.session import (
    BatchItem,
    BatchReport,
    CachingSearchEngine,
    Session,
    SessionBuilder,
)

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "BatchItem",
    "BatchReport",
    "CLUSTERERS",
    "CachingSearchEngine",
    "DATASETS",
    "Registry",
    "SCHEMA_VERSION",
    "SCORERS",
    "STAGES",
    "SUPPORTED_VERSIONS",
    "Session",
    "SessionBuilder",
    "report_from_dict",
    "report_to_dict",
]
