"""Built-in component registries: the library's pluggable axes.

Five axes, each a :class:`~repro.api.registry.Registry`:

=============  ======================================================
``ALGORITHMS``  expansion algorithms — ``factory(seed, **kw)``
``CLUSTERERS``  clustering backends — ``factory(n_clusters, seed, **kw)``
``SCORERS``     retrieval scorers — ``factory(index, **kw)``
``DATASETS``    corpus builders — ``factory(seed, analyzer, **kw)``
``BACKENDS``    index storage backends — ``factory(corpus, **kw)``
=============  ======================================================

Every factory returns a ready component: algorithms expose
``expand(task)``, clusterers expose ``fit_predict(matrix)``, scorers
expose ``score``/``rank``, datasets return a
:class:`~repro.data.corpus.Corpus`, and backends return an
:class:`~repro.index.backend.IndexBackend` over the given corpus.
Extend any axis with ``@REGISTRY.register("name")``.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Registry
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.bisecting import BisectingKMeans
from repro.cluster.kmeans import CosineKMeans
from repro.cluster.kmedoids import KMedoids
from repro.cluster.kselect import AdaptiveKClusterer
from repro.cluster.selection import AutoClustering
from repro.core.exact import ExhaustiveOptimalExpansion
from repro.core.fmeasure import DeltaFMeasureRefinement
from repro.core.iskr import ISKR
from repro.core.pebc import PEBC
from repro.core.vsm import VectorSpaceRefinement
from repro.data.xml_ingest import corpus_from_xml
from repro.datasets.shopping import build_shopping_corpus
from repro.datasets.wikipedia import build_wikipedia_corpus
from repro.errors import RegistryError
from repro.index.inverted_index import InvertedIndex
from repro.index.scoring import TfIdfScorer
from repro.index.sharded import ShardedIndex

ALGORITHMS = Registry("algorithm")
CLUSTERERS = Registry("clusterer")
SCORERS = Registry("scorer")
DATASETS = Registry("dataset")
BACKENDS = Registry("backend")


# -- expansion algorithms ----------------------------------------------------


@ALGORITHMS.register("iskr")
def _make_iskr(seed: int = 0, **kwargs) -> ISKR:
    return ISKR(**kwargs)


@ALGORITHMS.register("pebc")
def _make_pebc(seed: int = 0, **kwargs) -> PEBC:
    return PEBC(seed=seed, **kwargs)


@ALGORITHMS.register("exact")
def _make_exact(seed: int = 0, **kwargs) -> ExhaustiveOptimalExpansion:
    return ExhaustiveOptimalExpansion(**kwargs)


@ALGORITHMS.register("fmeasure")
def _make_fmeasure(seed: int = 0, **kwargs) -> DeltaFMeasureRefinement:
    return DeltaFMeasureRefinement(**kwargs)


@ALGORITHMS.register("vsm")
def _make_vsm(seed: int = 0, **kwargs) -> VectorSpaceRefinement:
    return VectorSpaceRefinement(**kwargs)


# -- clustering backends -----------------------------------------------------


class _FitAdapter:
    """fit_predict facade over backends exposing ``fit(matrix).labels``."""

    def __init__(self, impl) -> None:
        self._impl = impl

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        return self._impl.fit(matrix).labels


@CLUSTERERS.register("kmeans")
def _make_kmeans(n_clusters: int, seed: int = 0, **kwargs) -> _FitAdapter:
    return _FitAdapter(CosineKMeans(n_clusters=n_clusters, seed=seed, **kwargs))


@CLUSTERERS.register("bisecting")
def _make_bisecting(n_clusters: int, seed: int = 0, **kwargs) -> BisectingKMeans:
    return BisectingKMeans(n_clusters=n_clusters, seed=seed, **kwargs)


@CLUSTERERS.register("agglomerative")
def _make_agglomerative(
    n_clusters: int, seed: int = 0, **kwargs
) -> AgglomerativeClustering:
    return AgglomerativeClustering(n_clusters=n_clusters, **kwargs)


@CLUSTERERS.register("kmedoids")
def _make_kmedoids(n_clusters: int, seed: int = 0, **kwargs) -> _FitAdapter:
    return _FitAdapter(KMedoids(n_clusters=n_clusters, seed=seed, **kwargs))


@CLUSTERERS.register("auto")
def _make_auto(n_clusters: int, seed: int = 0, **kwargs) -> AutoClustering:
    return AutoClustering(n_clusters=n_clusters, seed=seed, **kwargs)


@CLUSTERERS.register("kselect")
def _make_kselect(n_clusters: int, seed: int = 0, **kwargs) -> AdaptiveKClusterer:
    if n_clusters < 2:
        raise RegistryError(
            f"clusterer 'kselect' picks k <= n_clusters and needs "
            f"n_clusters >= 2, got {n_clusters}"
        )
    return AdaptiveKClusterer(max_k=n_clusters, seed=seed, **kwargs)


# -- retrieval scorers -------------------------------------------------------


@SCORERS.register("tfidf")
def _make_tfidf(index, **kwargs) -> TfIdfScorer:
    return TfIdfScorer(index, **kwargs)


@SCORERS.register("bm25")
def _make_bm25(index, **kwargs):
    from repro.index.bm25 import BM25Scorer

    return BM25Scorer(index, **kwargs)


@SCORERS.register("lm")
def _make_lm(index, **kwargs):
    from repro.index.lm import LMDirichletScorer

    return LMDirichletScorer(index, **kwargs)


# -- index backends ----------------------------------------------------------


@BACKENDS.register("memory")
def _make_memory_backend(corpus) -> InvertedIndex:
    """Flat in-memory inverted index (the default)."""
    return InvertedIndex(corpus)


@BACKENDS.register("disk")
def _make_disk_backend(corpus, path=None, codec="varint"):
    """Compressed binary index, round-tripped through the QECX format.

    ``path=None`` serializes through a temporary file that is removed
    once loaded (the reader keeps the compressed blobs in memory). A
    real ``path`` persists the index there, and is *reused* on the next
    construction when it already exists and still matches the corpus
    (document count and every document length are verified; a stale
    file raises rather than silently serving old postings). On reuse
    the file's stored codec wins — ``codec`` only affects a fresh build.
    """
    import os
    import tempfile

    from repro.errors import IndexingError
    from repro.index.diskindex import DiskIndex

    if path is not None:
        from pathlib import Path

        path = Path(path)
        if path.exists():
            loaded = DiskIndex.load(path)
            stale = loaded.num_documents != len(corpus) or any(
                loaded.doc_length(pos) != doc.length()
                for pos, doc in enumerate(corpus)
            )
            if stale:
                raise IndexingError(
                    f"index at {path} does not match the corpus "
                    f"({loaded.num_documents} vs {len(corpus)} documents, or "
                    f"differing document lengths); delete it to rebuild"
                )
            return loaded
        return DiskIndex.build(corpus, path, codec=codec)
    fd, tmp = tempfile.mkstemp(suffix=".qecx")
    os.close(fd)
    try:
        return DiskIndex.build(corpus, tmp, codec=codec)
    finally:
        os.unlink(tmp)


@BACKENDS.register("sharded")
def _make_sharded_backend(corpus, shards=4, **kwargs) -> ShardedIndex:
    """Hash-partitioned index with thread-pool query fan-out."""
    return ShardedIndex(corpus, n_shards=shards, **kwargs)


# -- datasets ----------------------------------------------------------------


@DATASETS.register("wikipedia")
def _make_wikipedia(seed: int = 0, analyzer=None, **kwargs):
    return build_wikipedia_corpus(seed=seed, analyzer=analyzer, **kwargs)


@DATASETS.register("shopping")
def _make_shopping(seed: int = 0, analyzer=None, **kwargs):
    return build_shopping_corpus(seed=seed, analyzer=analyzer, **kwargs)


@DATASETS.register("xml")
def _make_xml(seed: int = 0, analyzer=None, documents=None, **kwargs):
    if not documents:
        raise RegistryError(
            "dataset 'xml' needs documents={doc_id: xml_string, ...}"
        )
    return corpus_from_xml(documents, analyzer=analyzer, **kwargs)
