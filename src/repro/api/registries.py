"""The :class:`Registry` class and the built-in component registries.

This module is the canonical home of both the generic string-keyed
:class:`Registry` and the library's pluggable axes (the historical
``repro.api.registry`` module is a deprecated alias). Six axes:

=============  ======================================================
``ALGORITHMS``  expansion algorithms — ``factory(seed, **kw)``
``CLUSTERERS``  clustering backends — ``factory(n_clusters, seed, **kw)``
``SCORERS``     retrieval scorers — ``factory(index, **kw)``
``DATASETS``    corpus builders — ``factory(seed, analyzer, **kw)``
``BACKENDS``    index storage backends — ``factory(corpus, **kw)``
``STAGES``      pipeline stages — ``factory(**kw) -> Stage``
=============  ======================================================

Every factory returns a ready component: algorithms expose
``expand(task)``, clusterers expose ``fit_predict(matrix)``, scorers
expose ``score``/``rank``, datasets return a
:class:`~repro.data.corpus.Corpus`, backends return an
:class:`~repro.index.backend.IndexBackend` over the given corpus, and
stages conform to the :class:`~repro.pipeline.Stage` protocol
(``name`` + ``run(ctx) -> ctx``). Extend any axis with
``@REGISTRY.register("name")``::

    from repro.api import ALGORITHMS

    @ALGORITHMS.register("myalg")
    def _make_myalg(seed, **kwargs):
        return MyAlgorithm(**kwargs)

Names are case-insensitive and stored lowercased. Lookups of unknown
names raise :class:`~repro.errors.RegistryError` listing the known names,
so typos fail loudly at configuration time rather than deep inside a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.bisecting import BisectingKMeans
from repro.cluster.kmeans import CosineKMeans
from repro.cluster.kmedoids import KMedoids
from repro.cluster.kselect import AdaptiveKClusterer
from repro.cluster.selection import AutoClustering
from repro.core.exact import ExhaustiveOptimalExpansion
from repro.core.fmeasure import DeltaFMeasureRefinement
from repro.core.iskr import ISKR
from repro.core.pebc import PEBC
from repro.core.vsm import VectorSpaceRefinement
from repro.data.xml_ingest import corpus_from_xml
from repro.datasets.shopping import build_shopping_corpus
from repro.datasets.wikipedia import build_wikipedia_corpus
from repro.errors import RegistryError
from repro.index.inverted_index import InvertedIndex
from repro.index.scoring import TfIdfScorer
from repro.index.sharded import ShardedIndex
from repro.pipeline import stages as pipeline_stages

if TYPE_CHECKING:
    from pathlib import Path

    from repro.data.corpus import Corpus
    from repro.index.bm25 import BM25Scorer
    from repro.index.diskindex import DiskIndex
    from repro.index.dynamic import DynamicIndex
    from repro.index.lm import LMDirichletScorer
    from repro.store import DocumentStore, SQLiteIndexBackend
    from repro.text.analyzer import Analyzer

Factory = Callable[..., Any]


class Registry:
    """A named mapping from component names to factories.

    Parameters
    ----------
    kind:
        Human-readable axis name ("algorithm", "clusterer", ...), used in
        error messages.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._factories: dict[str, Factory] = {}

    @property
    def kind(self) -> str:
        return self._kind

    # -- registration --------------------------------------------------------

    def register(
        self, name: str, factory: Factory | None = None
    ) -> Callable[[Factory], Factory] | Factory:
        """Register ``factory`` under ``name``.

        Usable as a decorator (``@REG.register("x")``) or directly
        (``REG.register("x", make_x)``). Re-registering a name replaces the
        previous factory (latest wins), so tests and plugins can override
        built-ins.
        """
        key = self._normalize(name)

        def _add(fn: Factory) -> Factory:
            self._factories[key] = fn
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove ``name``; unknown names raise :class:`RegistryError`."""
        key = self._normalize(name)
        if key not in self._factories:
            raise self._unknown(key)
        del self._factories[key]

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> Factory:
        """The factory registered under ``name``."""
        key = self._normalize(name)
        try:
            return self._factories[key]
        except KeyError:
            raise self._unknown(key) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component: ``get(name)(*args, **kwargs)``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._normalize(name) in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self._kind!r}, names={list(self.names())})"

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise RegistryError("component names must be non-empty strings")
        return name.strip().lower()

    def _unknown(self, key: str) -> RegistryError:
        known = ", ".join(self.names()) or "<none>"
        return RegistryError(
            f"unknown {self._kind} {key!r}; registered {self._kind}s: {known}"
        )


ALGORITHMS = Registry("algorithm")
CLUSTERERS = Registry("clusterer")
SCORERS = Registry("scorer")
DATASETS = Registry("dataset")
BACKENDS = Registry("backend")
STAGES = Registry("stage")


# -- expansion algorithms ----------------------------------------------------


@ALGORITHMS.register("iskr")
def _make_iskr(seed: int = 0, **kwargs: Any) -> ISKR:
    return ISKR(**kwargs)


@ALGORITHMS.register("pebc")
def _make_pebc(seed: int = 0, **kwargs: Any) -> PEBC:
    return PEBC(seed=seed, **kwargs)


@ALGORITHMS.register("exact")
def _make_exact(seed: int = 0, **kwargs: Any) -> ExhaustiveOptimalExpansion:
    return ExhaustiveOptimalExpansion(**kwargs)


@ALGORITHMS.register("fmeasure")
def _make_fmeasure(seed: int = 0, **kwargs: Any) -> DeltaFMeasureRefinement:
    return DeltaFMeasureRefinement(**kwargs)


@ALGORITHMS.register("vsm")
def _make_vsm(seed: int = 0, **kwargs: Any) -> VectorSpaceRefinement:
    return VectorSpaceRefinement(**kwargs)


# -- clustering backends -----------------------------------------------------


class _FitAdapter:
    """fit_predict facade over backends exposing ``fit(matrix).labels``."""

    def __init__(self, impl: Any) -> None:
        self._impl = impl

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        return self._impl.fit(matrix).labels


@CLUSTERERS.register("kmeans")
def _make_kmeans(n_clusters: int, seed: int = 0, **kwargs: Any) -> _FitAdapter:
    return _FitAdapter(CosineKMeans(n_clusters=n_clusters, seed=seed, **kwargs))


@CLUSTERERS.register("bisecting")
def _make_bisecting(
    n_clusters: int, seed: int = 0, **kwargs: Any
) -> BisectingKMeans:
    return BisectingKMeans(n_clusters=n_clusters, seed=seed, **kwargs)


@CLUSTERERS.register("agglomerative")
def _make_agglomerative(
    n_clusters: int, seed: int = 0, **kwargs: Any
) -> AgglomerativeClustering:
    return AgglomerativeClustering(n_clusters=n_clusters, **kwargs)


@CLUSTERERS.register("kmedoids")
def _make_kmedoids(n_clusters: int, seed: int = 0, **kwargs: Any) -> _FitAdapter:
    return _FitAdapter(KMedoids(n_clusters=n_clusters, seed=seed, **kwargs))


@CLUSTERERS.register("auto")
def _make_auto(n_clusters: int, seed: int = 0, **kwargs: Any) -> AutoClustering:
    return AutoClustering(n_clusters=n_clusters, seed=seed, **kwargs)


@CLUSTERERS.register("kselect")
def _make_kselect(
    n_clusters: int, seed: int = 0, **kwargs: Any
) -> AdaptiveKClusterer:
    if n_clusters < 2:
        raise RegistryError(
            f"clusterer 'kselect' picks k <= n_clusters and needs "
            f"n_clusters >= 2, got {n_clusters}"
        )
    return AdaptiveKClusterer(max_k=n_clusters, seed=seed, **kwargs)


# -- retrieval scorers -------------------------------------------------------


@SCORERS.register("tfidf")
def _make_tfidf(index: Any, **kwargs: Any) -> TfIdfScorer:
    return TfIdfScorer(index, **kwargs)


@SCORERS.register("bm25")
def _make_bm25(index: Any, **kwargs: Any) -> "BM25Scorer":
    from repro.index.bm25 import BM25Scorer

    return BM25Scorer(index, **kwargs)


@SCORERS.register("lm")
def _make_lm(index: Any, **kwargs: Any) -> "LMDirichletScorer":
    from repro.index.lm import LMDirichletScorer

    return LMDirichletScorer(index, **kwargs)


# -- index backends ----------------------------------------------------------


@BACKENDS.register("memory")
def _make_memory_backend(corpus: "Corpus") -> InvertedIndex:
    """Flat in-memory inverted index (the default)."""
    return InvertedIndex(corpus)


@BACKENDS.register("disk")
def _make_disk_backend(
    corpus: "Corpus", path: "str | Path | None" = None, codec: str = "varint"
) -> "DiskIndex":
    """Compressed binary index, round-tripped through the QECX format.

    ``path=None`` serializes through a temporary file that is removed
    once loaded (the reader keeps the compressed blobs in memory). A
    real ``path`` persists the index there, and is *reused* on the next
    construction when it already exists and still matches the corpus
    (document count and every document length are verified; a stale
    file raises rather than silently serving old postings). On reuse
    the file's stored codec wins — ``codec`` only affects a fresh build.
    """
    import os
    import tempfile

    from repro.errors import IndexingError
    from repro.index.diskindex import DiskIndex

    if path is not None:
        from pathlib import Path

        path = Path(path)
        if path.exists():
            loaded = DiskIndex.load(path)
            stale = loaded.num_documents != len(corpus) or any(
                loaded.doc_length(pos) != doc.length()
                for pos, doc in enumerate(corpus)
            )
            if stale:
                raise IndexingError(
                    f"index at {path} does not match the corpus "
                    f"({loaded.num_documents} vs {len(corpus)} documents, or "
                    f"differing document lengths); delete it to rebuild"
                )
            return loaded
        return DiskIndex.build(corpus, path, codec=codec)
    fd, tmp = tempfile.mkstemp(suffix=".qecx")
    os.close(fd)
    try:
        return DiskIndex.build(corpus, tmp, codec=codec)
    finally:
        os.unlink(tmp)


@BACKENDS.register("sharded")
def _make_sharded_backend(
    corpus: "Corpus", shards: int = 4, **kwargs: Any
) -> ShardedIndex:
    """Hash-partitioned index with thread-pool query fan-out."""
    return ShardedIndex(corpus, n_shards=shards, **kwargs)


@BACKENDS.register("sqlite")
def _make_sqlite_backend(
    corpus: "Corpus",
    path: "str | Path | None" = None,
    store: "DocumentStore | None" = None,
) -> "SQLiteIndexBackend":
    """Durable SQLite-backed index that *adopts* the engine's corpus.

    ``store`` is an open :class:`~repro.store.DocumentStore` (the
    serving layer passes one so the pool and the backend share a single
    writer); ``path`` opens or creates a store file. With neither, the
    index lives in a temporary file for the process lifetime — durable
    semantics, throwaway storage.

    An empty store is bulk-loaded from the corpus in one transaction; a
    populated one is verified against the corpus (position-aligned
    doc_ids and lengths) and reused — a mismatched file raises instead
    of silently serving other data, like the ``"disk"`` backend.
    """
    import atexit
    import shutil
    import tempfile
    from pathlib import Path

    from repro.store import DocumentStore, SQLiteIndexBackend

    if store is None:
        if path is None:
            tmpdir = tempfile.mkdtemp(prefix="repro-store-")
            # Throwaway storage must not outlive the process (the
            # pathless "disk" backend cleans up the same way).
            atexit.register(shutil.rmtree, tmpdir, True)
            path = Path(tmpdir) / "store.sqlite"
        store = DocumentStore(path)
    elif path is not None:
        raise RegistryError(
            "backend 'sqlite' takes either path=... or store=..., not both"
        )
    return SQLiteIndexBackend(store, corpus=corpus)


@BACKENDS.register("dynamic")
def _make_dynamic_backend(corpus: "Corpus") -> "DynamicIndex":
    """Append-friendly index that *adopts* the engine's corpus.

    Because the corpus object is shared (not copied), documents appended
    via :meth:`DynamicIndex.add <repro.index.dynamic.DynamicIndex.add>`
    after construction are immediately retrievable through the engine.
    The serving layer (:mod:`repro.serve`) subscribes to the index's
    mutation listeners to invalidate its caches on ingestion.
    """
    from repro.index.dynamic import DynamicIndex

    return DynamicIndex(corpus=corpus)


# -- datasets ----------------------------------------------------------------


@DATASETS.register("wikipedia")
def _make_wikipedia(
    seed: int = 0, analyzer: "Analyzer | None" = None, **kwargs: Any
) -> "Corpus":
    return build_wikipedia_corpus(seed=seed, analyzer=analyzer, **kwargs)


@DATASETS.register("shopping")
def _make_shopping(
    seed: int = 0, analyzer: "Analyzer | None" = None, **kwargs: Any
) -> "Corpus":
    return build_shopping_corpus(seed=seed, analyzer=analyzer, **kwargs)


@DATASETS.register("xml")
def _make_xml(
    seed: int = 0,
    analyzer: "Analyzer | None" = None,
    documents: "dict[str, str] | None" = None,
    **kwargs: Any,
) -> "Corpus":
    if not documents:
        raise RegistryError(
            "dataset 'xml' needs documents={doc_id: xml_string, ...}"
        )
    return corpus_from_xml(documents, analyzer=analyzer, **kwargs)


# -- pipeline stages ---------------------------------------------------------
# The default expansion pipeline, plus the §7 reassignment step. Factories
# take only kwargs: stages are stateless and read their inputs (engine,
# config, algorithm, ...) off the ExecutionContext at run time.

STAGES.register("retrieve", pipeline_stages.RetrieveStage)
STAGES.register("cluster", pipeline_stages.ClusterStage)
STAGES.register("universe", pipeline_stages.UniverseStage)
STAGES.register("candidates", pipeline_stages.CandidateStage)
STAGES.register("tasks", pipeline_stages.TasksStage)
STAGES.register("expand", pipeline_stages.ExpandStage)
STAGES.register("reassign", pipeline_stages.ReassignStage)
