"""Built-in component registries: the library's pluggable axes.

Four axes, each a :class:`~repro.api.registry.Registry`:

=============  ======================================================
``ALGORITHMS``  expansion algorithms — ``factory(seed, **kw)``
``CLUSTERERS``  clustering backends — ``factory(n_clusters, seed, **kw)``
``SCORERS``     retrieval scorers — ``factory(index, **kw)``
``DATASETS``    corpus builders — ``factory(seed, analyzer, **kw)``
=============  ======================================================

Every factory returns a ready component: algorithms expose
``expand(task)``, clusterers expose ``fit_predict(matrix)``, scorers
expose ``score``/``rank``, datasets return a
:class:`~repro.data.corpus.Corpus`. Extend any axis with
``@REGISTRY.register("name")``.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Registry
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.bisecting import BisectingKMeans
from repro.cluster.kmeans import CosineKMeans
from repro.cluster.kmedoids import KMedoids
from repro.cluster.kselect import AdaptiveKClusterer
from repro.cluster.selection import AutoClustering
from repro.core.exact import ExhaustiveOptimalExpansion
from repro.core.fmeasure import DeltaFMeasureRefinement
from repro.core.iskr import ISKR
from repro.core.pebc import PEBC
from repro.core.vsm import VectorSpaceRefinement
from repro.data.xml_ingest import corpus_from_xml
from repro.datasets.shopping import build_shopping_corpus
from repro.datasets.wikipedia import build_wikipedia_corpus
from repro.errors import RegistryError
from repro.index.scoring import TfIdfScorer

ALGORITHMS = Registry("algorithm")
CLUSTERERS = Registry("clusterer")
SCORERS = Registry("scorer")
DATASETS = Registry("dataset")


# -- expansion algorithms ----------------------------------------------------


@ALGORITHMS.register("iskr")
def _make_iskr(seed: int = 0, **kwargs) -> ISKR:
    return ISKR(**kwargs)


@ALGORITHMS.register("pebc")
def _make_pebc(seed: int = 0, **kwargs) -> PEBC:
    return PEBC(seed=seed, **kwargs)


@ALGORITHMS.register("exact")
def _make_exact(seed: int = 0, **kwargs) -> ExhaustiveOptimalExpansion:
    return ExhaustiveOptimalExpansion(**kwargs)


@ALGORITHMS.register("fmeasure")
def _make_fmeasure(seed: int = 0, **kwargs) -> DeltaFMeasureRefinement:
    return DeltaFMeasureRefinement(**kwargs)


@ALGORITHMS.register("vsm")
def _make_vsm(seed: int = 0, **kwargs) -> VectorSpaceRefinement:
    return VectorSpaceRefinement(**kwargs)


# -- clustering backends -----------------------------------------------------


class _FitAdapter:
    """fit_predict facade over backends exposing ``fit(matrix).labels``."""

    def __init__(self, impl) -> None:
        self._impl = impl

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        return self._impl.fit(matrix).labels


@CLUSTERERS.register("kmeans")
def _make_kmeans(n_clusters: int, seed: int = 0, **kwargs) -> _FitAdapter:
    return _FitAdapter(CosineKMeans(n_clusters=n_clusters, seed=seed, **kwargs))


@CLUSTERERS.register("bisecting")
def _make_bisecting(n_clusters: int, seed: int = 0, **kwargs) -> BisectingKMeans:
    return BisectingKMeans(n_clusters=n_clusters, seed=seed, **kwargs)


@CLUSTERERS.register("agglomerative")
def _make_agglomerative(
    n_clusters: int, seed: int = 0, **kwargs
) -> AgglomerativeClustering:
    return AgglomerativeClustering(n_clusters=n_clusters, **kwargs)


@CLUSTERERS.register("kmedoids")
def _make_kmedoids(n_clusters: int, seed: int = 0, **kwargs) -> _FitAdapter:
    return _FitAdapter(KMedoids(n_clusters=n_clusters, seed=seed, **kwargs))


@CLUSTERERS.register("auto")
def _make_auto(n_clusters: int, seed: int = 0, **kwargs) -> AutoClustering:
    return AutoClustering(n_clusters=n_clusters, seed=seed, **kwargs)


@CLUSTERERS.register("kselect")
def _make_kselect(n_clusters: int, seed: int = 0, **kwargs) -> AdaptiveKClusterer:
    if n_clusters < 2:
        raise RegistryError(
            f"clusterer 'kselect' picks k <= n_clusters and needs "
            f"n_clusters >= 2, got {n_clusters}"
        )
    return AdaptiveKClusterer(max_k=n_clusters, seed=seed, **kwargs)


# -- retrieval scorers -------------------------------------------------------


@SCORERS.register("tfidf")
def _make_tfidf(index, **kwargs) -> TfIdfScorer:
    return TfIdfScorer(index, **kwargs)


@SCORERS.register("bm25")
def _make_bm25(index, **kwargs):
    from repro.index.bm25 import BM25Scorer

    return BM25Scorer(index, **kwargs)


@SCORERS.register("lm")
def _make_lm(index, **kwargs):
    from repro.index.lm import LMDirichletScorer

    return LMDirichletScorer(index, **kwargs)


# -- datasets ----------------------------------------------------------------


@DATASETS.register("wikipedia")
def _make_wikipedia(seed: int = 0, analyzer=None, **kwargs):
    return build_wikipedia_corpus(seed=seed, analyzer=analyzer, **kwargs)


@DATASETS.register("shopping")
def _make_shopping(seed: int = 0, analyzer=None, **kwargs):
    return build_shopping_corpus(seed=seed, analyzer=analyzer, **kwargs)


@DATASETS.register("xml")
def _make_xml(seed: int = 0, analyzer=None, documents=None, **kwargs):
    if not documents:
        raise RegistryError(
            "dataset 'xml' needs documents={doc_id: xml_string, ...}"
        )
    return corpus_from_xml(documents, analyzer=analyzer, **kwargs)
