"""Okapi BM25 scoring: an alternative ranker to TF-IDF.

The paper ranks with TF-IDF (§C); BM25 is the standard stronger baseline
and exercises the pipeline's scorer pluggability. Same interface as
:class:`~repro.index.scoring.TfIdfScorer`.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.index.backend import IndexBackend, TermFrequencyCache


class BM25Scorer:
    """Okapi BM25 with the conventional k1/b parameterization.

    Backend-agnostic: reads term frequencies through the
    :class:`IndexBackend` protocol only.
    """

    def __init__(self, index: IndexBackend, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0.0:
            raise ValueError(f"k1 must be >= 0, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self._index = index
        self._k1 = k1
        self._b = b
        self._tf = TermFrequencyCache(index)
        n = max(index.num_documents, 1)
        total_len = sum(index.doc_length(i) for i in range(index.num_documents))
        self._avg_len = (total_len / n) if n else 1.0
        self._n = n

    def idf(self, term: str) -> float:
        """BM25 idf: ``log(1 + (N - df + 0.5) / (df + 0.5))`` (never negative)."""
        df = self._index.document_frequency(term)
        return math.log(1.0 + (self._n - df + 0.5) / (df + 0.5))

    def score(self, doc_pos: int, terms: Iterable[str]) -> float:
        dl = max(self._index.doc_length(doc_pos), 1)
        norm = self._k1 * (1.0 - self._b + self._b * dl / max(self._avg_len, 1e-9))
        total = 0.0
        for term in terms:
            tf = self._tf.tf(term, doc_pos)
            if tf:
                total += self.idf(term) * tf * (self._k1 + 1.0) / (tf + norm)
        return total

    def rank(self, doc_positions: list[int], terms: Iterable[str]) -> list[tuple[int, float]]:
        """(doc, score) sorted by descending score, position tie-break."""
        term_list = list(terms)
        scored = [(pos, self.score(pos, term_list)) for pos in doc_positions]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored
