"""Hash-partitioned index: N sub-backends behind one ``IndexBackend``.

Documents are partitioned by corpus position (``pos % n_shards`` — a
perfect hash on the integer document id) into per-shard sub-corpora,
each indexed by its own sub-backend (an in-memory
:class:`~repro.index.inverted_index.InvertedIndex` unless a factory says
otherwise). Because a document lives wholly inside one shard, boolean
queries decompose exactly: every shard answers the query over its own
documents and the shard answers — disjoint, locally sorted — are k-way
merged back into global corpus positions.

Queries fan out over a thread pool (one task per shard). Sub-backends
only need the :class:`~repro.index.backend.IndexBackend` protocol, so a
shard can just as well be a compressed :class:`DiskIndex` — the merge
layer never looks inside.

The OR path deliberately bypasses the sub-backends' pairwise
posting-list unions: within a shard the union of k posting lists is a
set-union of document ids followed by one sort, which avoids
materializing intermediate :class:`Posting` objects and is what makes
the sharded backend faster than the flat in-memory index on broad OR
queries (see ``benchmarks/bench_backends.py``).
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Callable, Iterable, Sequence

from repro.data.corpus import Corpus
from repro.errors import IndexingError
from repro.index.backend import BackendCapabilities, IndexBackend
from repro.index.inverted_index import InvertedIndex
from repro.index.postings import Posting, PostingList

#: Cap on fan-out threads; shards beyond this share workers.
DEFAULT_MAX_WORKERS = 8


class ShardedIndex:
    """One :class:`IndexBackend` over ``n_shards`` hash partitions.

    Parameters
    ----------
    corpus:
        The corpus to index. Positions in query answers are positions in
        this corpus, exactly as for the flat index.
    n_shards:
        Number of partitions (>= 1). More shards than documents is legal;
        surplus shards are simply empty.
    max_workers:
        Fan-out thread count. ``None`` picks ``min(n_shards, 8)``; ``0``
        disables the pool and runs shards sequentially (useful under
        profilers and in single-threaded embeddings).
    shard_factory:
        ``factory(sub_corpus) -> IndexBackend`` for building each shard's
        sub-backend; defaults to :class:`InvertedIndex`.
    """

    def __init__(
        self,
        corpus: Corpus,
        n_shards: int = 4,
        max_workers: int | None = None,
        shard_factory: Callable[[Corpus], IndexBackend] | None = None,
    ) -> None:
        if n_shards < 1:
            raise IndexingError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = int(n_shards)
        self._doc_lengths = [doc.length() for doc in corpus]
        factory = shard_factory or InvertedIndex
        partitions: list[list] = [[] for _ in range(self._n_shards)]
        globals_: list[list[int]] = [[] for _ in range(self._n_shards)]
        for pos, doc in enumerate(corpus):
            shard = pos % self._n_shards
            partitions[shard].append(doc)
            globals_[shard].append(pos)
        self._shards: list[IndexBackend] = [
            factory(Corpus(docs)) for docs in partitions
        ]
        self._globals = globals_
        if max_workers is None:
            max_workers = min(self._n_shards, DEFAULT_MAX_WORKERS)
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = Lock()
        self._closed = False
        self._vocab: list[str] | None = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the fan-out pool (idempotent; queries then run serially)."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # analyze: ignore[GUARD001] - double-checked creation: the lock-free
    # fast-path read of _pool/_closed is the optimization; the slow path
    # re-checks both under _pool_lock before creating the executor
    def _map(self, fn: Callable[[int], object]) -> list:
        """Apply ``fn`` to every shard id, fanning out when it pays."""
        pool = None
        if self._max_workers and self._n_shards > 1 and not self._closed:
            # Double-checked creation: concurrent first queries (the index
            # advertises concurrent_reads) must share one executor.
            pool = self._pool
            if pool is None:
                with self._pool_lock:
                    if self._pool is None and not self._closed:
                        self._pool = ThreadPoolExecutor(
                            max_workers=min(self._max_workers, self._n_shards),
                            thread_name_prefix="repro-shard",
                        )
                    pool = self._pool
        if pool is not None:
            try:
                return list(pool.map(fn, range(self._n_shards)))
            except RuntimeError:
                # Only the close() race is retried serially; a
                # RuntimeError raised *inside* fn must propagate.
                if not self._closed:
                    raise
        return [fn(s) for s in range(self._n_shards)]

    # -- introspection -------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def shards(self) -> Sequence[IndexBackend]:
        """The sub-backends, in shard order (read-only view)."""
        return tuple(self._shards)

    def shard_of(self, pos: int) -> int:
        """The shard holding the document at corpus position ``pos``."""
        if not 0 <= pos < len(self._doc_lengths):
            raise IndexingError(f"position {pos} out of range")
        return pos % self._n_shards

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        return len(self.vocabulary())

    def __contains__(self, term: object) -> bool:
        return any(term in shard for shard in self._shards)

    def vocabulary(self) -> list[str]:
        if self._vocab is None:
            merged: set[str] = set()
            for shard in self._shards:
                merged.update(shard.vocabulary())
            self._vocab = sorted(merged)
        return list(self._vocab)

    def document_frequency(self, term: str) -> int:
        return sum(shard.document_frequency(term) for shard in self._shards)

    def doc_length(self, pos: int) -> int:
        return self._doc_lengths[pos]

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="sharded",
            persistent=False,
            sharded=True,
            shards=self._n_shards,
            concurrent_reads=True,
        )

    # -- postings ------------------------------------------------------------

    def _to_global(self, shard: int, local_ids: Iterable[int]) -> list[int]:
        g = self._globals[shard]
        return [g[local] for local in local_ids]

    def postings(self, term: str) -> PostingList:
        """Global posting list for ``term``: k-way merge of shard postings."""

        def shard_postings(s: int) -> list[Posting]:
            g = self._globals[s]
            return [Posting(g[p.doc], p.tf) for p in self._shards[s].postings(term)]

        per_shard = [lst for lst in self._map(shard_postings) if lst]
        if not per_shard:
            return PostingList()
        if len(per_shard) == 1:
            return PostingList(per_shard[0])
        return PostingList(heapq.merge(*per_shard, key=lambda p: p.doc))

    # -- boolean retrieval ---------------------------------------------------

    def and_query(self, terms: Iterable[str]) -> list[int]:
        """Corpus positions containing *all* ``terms`` (sorted)."""
        term_list = list(terms)
        if not term_list:
            raise IndexingError("AND query needs at least one term")

        def shard_and(s: int) -> list[int]:
            return self._to_global(s, self._shards[s].and_query(term_list))

        return self._merge_sorted(self._map(shard_and))

    def or_query(self, terms: Iterable[str]) -> list[int]:
        """Corpus positions containing *any* of ``terms`` (sorted)."""
        term_list = list(terms)
        if not term_list:
            raise IndexingError("OR query needs at least one term")

        def shard_or(s: int) -> list[int]:
            matched: set[int] = set()
            backend = self._shards[s]
            for term in term_list:
                matched.update(p.doc for p in backend.postings(term))
            return self._to_global(s, sorted(matched))

        return self._merge_sorted(self._map(shard_or))

    @staticmethod
    def _merge_sorted(per_shard: list[list[int]]) -> list[int]:
        """k-way merge of disjoint, locally sorted shard answers."""
        nonempty = [ids for ids in per_shard if ids]
        if not nonempty:
            return []
        if len(nonempty) == 1:
            return nonempty[0]
        return list(heapq.merge(*nonempty))
