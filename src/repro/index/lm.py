"""Query-likelihood language-model scoring with Dirichlet smoothing.

The third ranker beside TF-IDF (paper §C) and BM25, from the probabilistic
family the paper's related work draws on ([20], [25] use LM-based term
selection). Documents are scored by the log-likelihood of generating the
query under a Dirichlet-smoothed unigram model::

    score(d, q) = Σ_t log( (tf(t, d) + μ p(t|C)) / (|d| + μ) )

where ``p(t|C)`` is the collection language model and μ the smoothing
mass. Because every factor is positive the score is a negative log
probability; for ranking compatibility with the other scorers (higher =
better, non-matching documents near zero) we report the *shifted* score
``Σ_t log(1 + tf(t,d) / (μ p(t|C))) `` — the standard rank-equivalent
rewrite whose per-term contribution is zero when tf = 0.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigError
from repro.index.backend import (
    IndexBackend,
    TermFrequencyCache,
    collection_term_frequencies,
)


class LMDirichletScorer:
    """Dirichlet-smoothed query-likelihood ranking.

    Same interface as :class:`~repro.index.scoring.TfIdfScorer`, and like
    it backend-agnostic: the collection language model is accumulated
    from posting lists through the :class:`IndexBackend` protocol. The
    ``mu`` default (2000) is the conventional TREC setting; small corpora
    work fine because the collection model is itself tiny.
    """

    def __init__(self, index: IndexBackend, mu: float = 2000.0) -> None:
        if mu <= 0.0:
            raise ConfigError(f"mu must be > 0, got {mu}")
        self._index = index
        self._mu = mu
        self._tf = TermFrequencyCache(index)
        counts = collection_term_frequencies(index)
        self._collection_counts = counts
        self._collection_total = max(sum(counts.values()), 1)

    @property
    def mu(self) -> float:
        return self._mu

    def collection_probability(self, term: str) -> float:
        """p(t|C) with add-one mass for unseen terms (never zero)."""
        count = self._collection_counts.get(term, 0)
        return (count + 1.0) / (self._collection_total + len(self._collection_counts) + 1.0)

    def idf(self, term: str) -> float:
        """Rarity proxy for interface parity: ``-log p(t|C)``."""
        return -math.log(self.collection_probability(term))

    def score(self, doc_pos: int, terms: Iterable[str]) -> float:
        """Shifted query likelihood: zero for documents matching no terms."""
        total = 0.0
        for term in terms:
            tf = self._tf.tf(term, doc_pos)
            if tf:
                p_c = self.collection_probability(term)
                total += math.log(1.0 + tf / (self._mu * p_c))
        return total

    def log_likelihood(self, doc_pos: int, terms: Iterable[str]) -> float:
        """The unshifted log p(q|d) (always negative), for diagnostics."""
        dl = self._index.doc_length(doc_pos)
        total = 0.0
        for term in terms:
            tf = self._tf.tf(term, doc_pos)
            p_c = self.collection_probability(term)
            total += math.log((tf + self._mu * p_c) / (dl + self._mu))
        return total

    def rank(self, doc_positions: list[int], terms: Iterable[str]) -> list[tuple[int, float]]:
        """(doc, score) sorted by descending score, position tie-break."""
        term_list = list(terms)
        scored = [(pos, self.score(pos, term_list)) for pos in doc_positions]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored
