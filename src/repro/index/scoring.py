"""TF-IDF scoring for ranking query results.

The paper ranks Wikipedia results "using tfidf of the keywords" (§C) and
feeds the ranking scores into the weighted precision/recall of §2. We use
the standard log-tf × smoothed-idf cosine-style score.

Scorers speak only the :class:`~repro.index.backend.IndexBackend`
protocol: term frequencies come from posting lists (decoded once per
query term via :class:`~repro.index.backend.TermFrequencyCache`), never
from the corpus, so any backend — in-memory, compressed on-disk, or
sharded — ranks identically.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.index.backend import IndexBackend, TermFrequencyCache


class TfIdfScorer:
    """Scores documents for a query against any :class:`IndexBackend`."""

    def __init__(self, index: IndexBackend) -> None:
        self._index = index
        self._n = max(index.num_documents, 1)
        self._tf = TermFrequencyCache(index)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency: ``log(1 + N/df)``.

        Unseen terms get the maximum idf (df treated as 1) so that querying
        them is well-defined; they simply match no documents.
        """
        df = self._index.document_frequency(term)
        return math.log(1.0 + self._n / max(df, 1))

    def tf_weight(self, tf: int) -> float:
        """Sub-linear term-frequency weight: ``1 + log(tf)``."""
        if tf <= 0:
            return 0.0
        return 1.0 + math.log(tf)

    def score(self, doc_pos: int, terms: Iterable[str]) -> float:
        """TF-IDF score of document ``doc_pos`` for the query ``terms``.

        Length-normalized by the square root of document length so verbose
        documents don't dominate (a cheap stand-in for full cosine
        normalization that keeps scores strictly positive for matches).
        """
        raw = 0.0
        for term in terms:
            tf = self._tf.tf(term, doc_pos)
            if tf:
                raw += self.tf_weight(tf) * self.idf(term)
        if raw == 0.0:
            return 0.0
        return raw / math.sqrt(max(self._index.doc_length(doc_pos), 1))

    def rank(self, doc_positions: list[int], terms: Iterable[str]) -> list[tuple[int, float]]:
        """Return ``(doc_pos, score)`` sorted by descending score.

        Ties are broken by corpus position for determinism.
        """
        term_list = list(terms)
        scored = [(pos, self.score(pos, term_list)) for pos in doc_positions]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored


def top_k_ranked(
    doc_positions: list[int],
    score_fn,
    k: int,
) -> list[tuple[int, float]]:
    """Top-``k`` of ``(pos, score_fn(pos))`` without sorting everything.

    Uses a bounded heap (`heapq.nsmallest` on the negated sort key), so the
    cost is O(n log k) instead of O(n log n) — the win matters when a broad
    seed query matches thousands of documents but the pipeline keeps 30
    (§C). Ordering and tie-breaking (score desc, position asc) match
    ``rank()[:k]`` exactly.
    """
    import heapq

    if k <= 0:
        return []
    scored = ((pos, score_fn(pos)) for pos in doc_positions)
    return heapq.nsmallest(k, scored, key=lambda item: (-item[1], item[0]))
