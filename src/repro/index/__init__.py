"""Search substrate: inverted index, boolean retrieval, TF-IDF ranking.

This is the retrieval engine behind ``R(q)`` in the paper: a result of a
query is the document (or structured fragment) containing all query keywords
(AND semantics, §2); OR semantics is supported per the paper's appendix.
Seed-query results are ranked by TF-IDF cosine score, which supplies the
ranking weights used by the weighted precision/recall of §2.

Storage is pluggable behind the :class:`IndexBackend` protocol: the flat
in-memory :class:`InvertedIndex`, the compressed on-disk
:class:`DiskIndex`, the append-friendly :class:`DynamicIndex`, and the
hash-partitioned :class:`ShardedIndex` are interchangeable, selected by
name through :data:`repro.api.registries.BACKENDS`.
"""

from repro.index.backend import (
    BackendCapabilities,
    IndexBackend,
    TermFrequencyCache,
    collection_term_frequencies,
)
from repro.index.bm25 import BM25Scorer
from repro.index.compression import decode_postings, encode_postings
from repro.index.diskindex import DiskIndex, write_index
from repro.index.dynamic import DynamicIndex
from repro.index.inverted_index import InvertedIndex
from repro.index.lm import LMDirichletScorer
from repro.index.positional import PositionalIndex
from repro.index.postings import Posting, PostingList
from repro.index.queryparser import evaluate_query, parse_query
from repro.index.scoring import TfIdfScorer
from repro.index.search import SearchEngine, SearchResult
from repro.index.sharded import ShardedIndex

__all__ = [
    "BM25Scorer",
    "BackendCapabilities",
    "DiskIndex",
    "DynamicIndex",
    "IndexBackend",
    "InvertedIndex",
    "LMDirichletScorer",
    "PositionalIndex",
    "Posting",
    "PostingList",
    "SearchEngine",
    "SearchResult",
    "ShardedIndex",
    "TermFrequencyCache",
    "TfIdfScorer",
    "collection_term_frequencies",
    "decode_postings",
    "encode_postings",
    "evaluate_query",
    "parse_query",
    "write_index",
]
