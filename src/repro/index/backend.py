"""The storage seam of the retrieval layer: the ``IndexBackend`` protocol.

Every index implementation — the in-memory :class:`InvertedIndex`, the
compressed on-disk :class:`DiskIndex`, the append-friendly
:class:`DynamicIndex`, and the hash-partitioned :class:`ShardedIndex` —
speaks this one protocol, and everything above the index (scorers, the
search engine, candidate-keyword statistics, the session builder, the
CLI) speaks *only* this protocol. Swapping storage is then a name in the
:data:`repro.api.registries.BACKENDS` registry, not a rewrite.

The protocol is deliberately small:

* collection statistics — ``num_documents``, ``num_terms``,
  ``doc_length(pos)``, ``document_frequency(term)``;
* the vocabulary — ``vocabulary()``, ``term in backend``;
* postings access — ``postings(term)`` returning a
  :class:`~repro.index.postings.PostingList` of (corpus position, tf);
* boolean retrieval — ``and_query(terms)`` / ``or_query(terms)``
  returning sorted corpus positions;
* self-description — ``capabilities()`` returning a
  :class:`BackendCapabilities` record callers can branch on (is it
  persistent? sharded? safe for concurrent reads?).

Document identity is the integer corpus position throughout, exactly as
in the rest of the library.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.index.postings import PostingList


@dataclass(frozen=True)
class BackendCapabilities:
    """What an index backend can and cannot do.

    Attributes
    ----------
    name:
        Short identifier, normally the backend's registry name.
    persistent:
        True when the postings survive process exit (e.g. the binary
        on-disk format).
    mutable:
        True when documents can be appended after construction.
    sharded:
        True when postings are partitioned across sub-backends.
    shards:
        Number of partitions (1 for unsharded backends).
    compressed:
        True when postings are stored compressed and decoded on demand.
    concurrent_reads:
        True when one instance may serve reads from many threads
        without external locking.
    """

    name: str
    persistent: bool = False
    mutable: bool = False
    sharded: bool = False
    shards: int = 1
    compressed: bool = False
    concurrent_reads: bool = True

    def to_dict(self) -> dict:
        """JSON-ready form (for diagnostics and benchmark artifacts)."""
        return asdict(self)


@runtime_checkable
class IndexBackend(Protocol):
    """Anything that can serve postings and boolean queries over a corpus.

    See the module docstring for the contract. ``isinstance(x,
    IndexBackend)`` checks structural conformance (methods present, not
    signatures) — handy in tests and registry validation.
    """

    @property
    def num_documents(self) -> int:  # pragma: no cover - protocol
        ...

    @property
    def num_terms(self) -> int:  # pragma: no cover - protocol
        ...

    def __contains__(self, term: object) -> bool:  # pragma: no cover
        ...

    def vocabulary(self) -> list[str]:  # pragma: no cover - protocol
        ...

    def postings(self, term: str) -> PostingList:  # pragma: no cover
        ...

    def document_frequency(self, term: str) -> int:  # pragma: no cover
        ...

    def doc_length(self, pos: int) -> int:  # pragma: no cover - protocol
        ...

    def and_query(self, terms: Iterable[str]) -> list[int]:  # pragma: no cover
        ...

    def or_query(self, terms: Iterable[str]) -> list[int]:  # pragma: no cover
        ...

    def capabilities(self) -> BackendCapabilities:  # pragma: no cover
        ...


class TermFrequencyCache:
    """Bounded cache of per-term ``{corpus position: tf}`` maps.

    Scorers need ``tf(term, doc)`` lookups; the protocol serves term
    frequencies through :meth:`IndexBackend.postings`. Decoding a posting
    list per *score call* would be quadratic for ranking (and genuinely
    expensive on compressed backends), so scorers hold one of these: each
    query term's postings are decoded once and reused across every
    document scored for that term.

    Mutation-aware: backends exposing a ``generation`` counter (the
    dynamic index) invalidate the cache on change. Unsynchronized — a
    racing double-decode under threads stores identical values.
    """

    def __init__(self, backend: IndexBackend, maxsize: int = 4096) -> None:
        self._backend = backend
        self._maxsize = max(int(maxsize), 1)
        self._cache: dict[str, dict[int, int]] = {}
        self._generation = getattr(backend, "generation", None)

    def frequencies(self, term: str) -> dict[int, int]:
        """The ``{position: tf}`` map for ``term`` (empty if unseen)."""
        generation = getattr(self._backend, "generation", None)
        if generation != self._generation:
            self._cache = {}
            self._generation = generation
        hit = self._cache.get(term)
        if hit is None:
            hit = {p.doc: p.tf for p in self._backend.postings(term)}
            while len(self._cache) >= self._maxsize:
                # pop() keyed defensively: a racing thread may have
                # evicted (or cleared) the same entry already.
                try:
                    self._cache.pop(next(iter(self._cache)), None)
                except StopIteration:  # pragma: no cover - thread race
                    break
            self._cache[term] = hit
        return hit

    def tf(self, term: str, pos: int) -> int:
        """Term frequency of ``term`` in the document at ``pos`` (0 if absent)."""
        return self.frequencies(term).get(pos, 0)


def collection_term_frequencies(backend: IndexBackend) -> dict[str, int]:
    """Total collection frequency per term, from postings alone.

    The bulk path for collection language models: one pass over every
    posting list. Backends composed of sub-backends (anything exposing a
    ``shards`` sequence, e.g. :class:`~repro.index.sharded.ShardedIndex`)
    are summed shard-locally — no per-term thread fan-out, no global
    posting merges — so building a scorer over a sharded index costs the
    same as over its flat equivalent.
    """
    shards = getattr(backend, "shards", None)
    # Only a real sequence of sub-backends qualifies — ``shards`` is also
    # the name of BackendCapabilities' integer count field, and a plain
    # int here must not trigger the shard-local path.
    if isinstance(shards, (list, tuple)) and shards:
        counts: dict[str, int] = {}
        for shard in shards:
            for term, count in collection_term_frequencies(shard).items():
                counts[term] = counts.get(term, 0) + count
        return counts
    return {
        term: sum(p.tf for p in backend.postings(term))
        for term in backend.vocabulary()
    }
