"""Posting-list compression: delta gaps + variable-byte and Elias-gamma codes.

The disk index (:mod:`repro.index.diskindex`) stores each posting list as
delta-encoded document gaps compressed with one of two classic schemes:

* **Variable-byte (varint)** — each integer is split into 7-bit groups,
  low-order first; the high bit of a byte marks the last group. Byte
  aligned, fast, the default.
* **Elias gamma** — unary length prefix followed by the binary offset.
  Bit-packed, denser for small gaps, slower to decode; offered for the
  compression micro-benchmarks.

All encoders work on *positive* integers (gaps of a strictly increasing
doc-id sequence, term frequencies shifted by 0 since tf >= 1).
"""

from __future__ import annotations

from repro.errors import IndexingError

# --------------------------------------------------------------------------
# Delta (gap) transform
# --------------------------------------------------------------------------


def to_gaps(doc_ids: list[int]) -> list[int]:
    """Strictly increasing doc ids → first id + 1, then successive gaps.

    Every emitted value is >= 1 (ids start at 0, so the first value is
    ``doc_ids[0] + 1``), which is what the positive-integer codes need.
    """
    gaps: list[int] = []
    prev = -1
    for doc in doc_ids:
        if doc <= prev:
            raise IndexingError(f"doc ids not strictly increasing at {doc}")
        gaps.append(doc - prev)
        prev = doc
    return gaps


def from_gaps(gaps: list[int]) -> list[int]:
    """Inverse of :func:`to_gaps`."""
    doc_ids: list[int] = []
    prev = -1
    for gap in gaps:
        if gap < 1:
            raise IndexingError(f"gap must be >= 1, got {gap}")
        prev += gap
        doc_ids.append(prev)
    return doc_ids


# --------------------------------------------------------------------------
# Variable-byte code
# --------------------------------------------------------------------------


def varint_encode(values: list[int]) -> bytes:
    """Encode positive integers with the byte-aligned variable-byte code."""
    out = bytearray()
    for value in values:
        if value < 1:
            raise IndexingError(f"varint values must be >= 1, got {value}")
        chunks = []
        v = value
        while True:
            chunks.append(v & 0x7F)
            v >>= 7
            if v == 0:
                break
        for chunk in chunks[:-1]:
            out.append(chunk)
        out.append(chunks[-1] | 0x80)  # high bit marks the final byte
    return bytes(out)


def varint_decode(data: bytes) -> list[int]:
    """Decode a :func:`varint_encode` byte string."""
    values: list[int] = []
    current = 0
    shift = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            values.append(current)
            current = 0
            shift = 0
        else:
            shift += 7
    if shift != 0:
        raise IndexingError("truncated varint stream")
    return values


# --------------------------------------------------------------------------
# Elias gamma code
# --------------------------------------------------------------------------


class _BitWriter:
    """Accumulates bits MSB-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_pos = 0  # bits used in the final byte

    def write_bit(self, bit: int) -> None:
        if self._bit_pos == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 1 << (7 - self._bit_pos)
        self._bit_pos = (self._bit_pos + 1) % 8

    def write_bits(self, value: int, width: int) -> None:
        for i in range(width - 1, -1, -1):
            self.write_bit((value >> i) & 1)

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class _BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data) * 8

    def read_bit(self) -> int:
        if self.exhausted:
            raise IndexingError("truncated gamma stream")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


def gamma_encode(values: list[int]) -> bytes:
    """Encode positive integers with the Elias gamma code.

    gamma(x) = unary(len) ++ offset, where len = floor(log2 x) and offset is
    the low ``len`` bits of x. The stream is padded with zero bits to a byte
    boundary; trailing zero padding cannot be confused with a value because
    every gamma code starts with a 1-terminated unary prefix read as
    "count zeros then expect a 1".
    """
    writer = _BitWriter()
    for value in values:
        if value < 1:
            raise IndexingError(f"gamma values must be >= 1, got {value}")
        length = value.bit_length() - 1
        for _ in range(length):
            writer.write_bit(0)
        writer.write_bit(1)
        if length:
            writer.write_bits(value & ((1 << length) - 1), length)
    return writer.getvalue()


def gamma_decode(data: bytes, count: int) -> list[int]:
    """Decode ``count`` gamma-coded integers from ``data``.

    The explicit ``count`` disambiguates the zero-bit padding at the end of
    the stream (the on-disk format stores the posting count anyway).
    """
    reader = _BitReader(data)
    values: list[int] = []
    for _ in range(count):
        length = 0
        while reader.read_bit() == 0:
            length += 1
        offset = reader.read_bits(length) if length else 0
        values.append((1 << length) | offset if length else 1)
    return values


# --------------------------------------------------------------------------
# Posting-list codecs (doc gaps interleaved with tf values)
# --------------------------------------------------------------------------

VARINT = "varint"
GAMMA = "gamma"
CODECS = (VARINT, GAMMA)


def encode_postings(
    doc_ids: list[int], tfs: list[int], codec: str = VARINT
) -> bytes:
    """Compress parallel (doc_ids, tfs) lists into one byte string.

    The layout interleaves each doc gap with its tf: ``g1 t1 g2 t2 ...``.
    Term frequencies are >= 1 so they need no shifting.
    """
    if len(doc_ids) != len(tfs):
        raise IndexingError(
            f"doc/tf length mismatch: {len(doc_ids)} vs {len(tfs)}"
        )
    interleaved: list[int] = []
    for gap, tf in zip(to_gaps(doc_ids), tfs):
        if tf < 1:
            raise IndexingError(f"tf must be >= 1, got {tf}")
        interleaved.append(gap)
        interleaved.append(tf)
    if codec == VARINT:
        return varint_encode(interleaved)
    if codec == GAMMA:
        return gamma_encode(interleaved)
    raise IndexingError(f"unknown codec {codec!r}; use one of {CODECS}")


def decode_postings(
    data: bytes, count: int, codec: str = VARINT
) -> tuple[list[int], list[int]]:
    """Inverse of :func:`encode_postings`; ``count`` is the posting count."""
    if codec == VARINT:
        interleaved = varint_decode(data)
        if len(interleaved) != 2 * count:
            raise IndexingError(
                f"expected {2 * count} varint values, got {len(interleaved)}"
            )
    elif codec == GAMMA:
        interleaved = gamma_decode(data, 2 * count)
    else:
        raise IndexingError(f"unknown codec {codec!r}; use one of {CODECS}")
    gaps = interleaved[0::2]
    tfs = interleaved[1::2]
    return from_gaps(gaps), tfs
