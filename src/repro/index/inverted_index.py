"""Inverted index over a corpus."""

from __future__ import annotations

from typing import Iterable

from repro.data.corpus import Corpus
from repro.errors import IndexingError
from repro.index.backend import BackendCapabilities
from repro.index.postings import Posting, PostingList, intersect_all, union_all


class InvertedIndex:
    """Term → posting-list map built from a :class:`~repro.data.Corpus`.

    Documents are addressed by corpus position. The index is built once from
    the corpus and is read-only afterwards.
    """

    def __init__(self, corpus: Corpus) -> None:
        self._corpus = corpus
        self._postings: dict[str, PostingList] = {}
        self._doc_lengths: list[int] = []
        for pos, doc in enumerate(corpus):
            self._doc_lengths.append(doc.length())
            for term in sorted(doc.terms):
                self._postings.setdefault(term, PostingList()).append(
                    Posting(pos, doc.terms[term])
                )

    # -- introspection ---------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def num_documents(self) -> int:
        return len(self._corpus)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    def __contains__(self, term: object) -> bool:
        return term in self._postings

    def vocabulary(self) -> list[str]:
        """All indexed terms, sorted."""
        return sorted(self._postings)

    def postings(self, term: str) -> PostingList:
        """The posting list for ``term`` (empty list if unseen)."""
        return self._postings.get(term, PostingList())

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))  # type: ignore[arg-type]

    def doc_length(self, pos: int) -> int:
        return self._doc_lengths[pos]

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(name="memory")

    # -- boolean retrieval -------------------------------------------------

    def and_query(self, terms: Iterable[str]) -> list[int]:
        """Corpus positions of documents containing *all* ``terms``.

        An empty term list is an error: the paper's queries always contain at
        least the seed keywords.
        """
        term_list = list(terms)
        if not term_list:
            raise IndexingError("AND query needs at least one term")
        lists = [self.postings(t) for t in term_list]
        if any(not pl for pl in lists):
            return []
        return intersect_all(lists).doc_ids()

    def or_query(self, terms: Iterable[str]) -> list[int]:
        """Corpus positions of documents containing *any* of ``terms``."""
        term_list = list(terms)
        if not term_list:
            raise IndexingError("OR query needs at least one term")
        return union_all([self.postings(t) for t in term_list]).doc_ids()
