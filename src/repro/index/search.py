"""Search engine facade: parse query, retrieve, rank, truncate to top-k."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import QueryError
from repro.index.backend import IndexBackend
from repro.index.scoring import TfIdfScorer
from repro.text.analyzer import Analyzer

AND = "and"
OR = "or"


@dataclass(frozen=True)
class SearchResult:
    """One ranked result: the document, its corpus position, and its score."""

    position: int
    document: Document
    score: float

    def to_dict(self) -> dict:
        """JSON-ready form (see repro.api.schema for the schema contract)."""
        from repro.api import schema

        return schema.search_result_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "SearchResult":
        """Inverse of :meth:`to_dict`."""
        from repro.api import schema

        return schema.search_result_from_dict(payload)


class SearchEngine:
    """Keyword search over a corpus with AND (default) or OR semantics.

    This is the substrate that evaluates both the user's seed query and every
    candidate expanded query. Expanded-query evaluation inside the expansion
    algorithms themselves uses the vectorized
    :class:`~repro.core.universe.ResultUniverse` instead, restricted to the
    seed query's results — matching the paper, where expanded queries
    classify the *original* result set.

    Storage is pluggable: ``backend`` selects the index implementation by
    name from :data:`repro.api.registries.BACKENDS` (``"memory"``,
    ``"disk"``, ``"sharded"``, or anything a plugin registers), or may be
    a ``factory(corpus) -> IndexBackend`` closure, or an already-built
    backend instance. The engine — and everything above it — only ever
    talks to the :class:`~repro.index.backend.IndexBackend` protocol.
    """

    def __init__(
        self,
        corpus: Corpus,
        analyzer: Analyzer | None = None,
        scoring: str | Callable = "tfidf",
        backend: str | Callable | IndexBackend = "memory",
    ) -> None:
        self._corpus = corpus
        self._analyzer = analyzer or Analyzer()
        self._index = self._resolve_backend(backend, corpus)
        self._scoring = scoring
        self._scorer = self._build_scorer(scoring)

    def _build_scorer(self, scoring: str | Callable):
        if callable(scoring):
            # A factory (index) -> scorer, e.g. a registry closure with
            # extra scorer options bound in.
            return scoring(self._index)
        # Resolve by name through the scorer registry so third-party
        # scorers registered on repro.api.SCORERS work everywhere.
        # Imported lazily: repro.api itself builds SearchEngines.
        from repro.api.registries import SCORERS
        from repro.errors import RegistryError

        try:
            return SCORERS.create(scoring, self._index)
        except RegistryError:
            raise QueryError(
                f"unknown scoring {scoring!r}; "
                f"registered scorers: {', '.join(SCORERS.names())}"
            ) from None

    def refresh_scoring(self) -> None:
        """Rebuild the scorer from the original scoring spec.

        Scorers snapshot collection statistics (N, cached term
        frequencies) at construction; after a mutable backend (e.g. the
        ``"dynamic"`` one) ingests documents, call this so ranking
        reflects the current index instead of the construction-time
        snapshot.
        """
        self._scorer = self._build_scorer(self._scoring)

    @staticmethod
    def _resolve_backend(
        backend: str | Callable | IndexBackend, corpus: Corpus
    ) -> IndexBackend:
        """Name → registry lookup; callable → factory; instance → as-is."""
        if isinstance(backend, str):
            # Imported lazily: repro.api itself builds SearchEngines.
            from repro.api.registries import BACKENDS
            from repro.errors import RegistryError

            try:
                return BACKENDS.create(backend, corpus)
            except RegistryError:
                raise QueryError(
                    f"unknown backend {backend!r}; "
                    f"registered backends: {', '.join(BACKENDS.names())}"
                ) from None
        # A class (e.g. InvertedIndex itself) or any other callable is a
        # factory; only a ready instance skips construction.
        if isinstance(backend, type) or not isinstance(backend, IndexBackend):
            if not callable(backend):
                raise QueryError(
                    f"backend must be a registry name, a factory, or an "
                    f"IndexBackend; got {backend!r}"
                )
            backend = backend(corpus)
        if backend.num_documents != len(corpus):
            raise QueryError(
                f"backend indexes {backend.num_documents} documents but the "
                f"corpus has {len(corpus)}; they must describe the same data"
            )
        return backend

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def index(self) -> IndexBackend:
        return self._index

    @property
    def analyzer(self) -> Analyzer:
        return self._analyzer

    @property
    def scorer(self) -> TfIdfScorer:
        return self._scorer

    def parse(self, query: str) -> list[str]:
        """Normalize a raw query string into distinct query terms."""
        terms = self._analyzer.keep_distinct(self._analyzer.analyze_query(query))
        if not terms:
            raise QueryError(f"query {query!r} normalized to zero terms")
        return terms

    def search(
        self,
        query: str,
        top_k: int | None = None,
        semantics: str = AND,
    ) -> list[SearchResult]:
        """Run ``query`` and return ranked results.

        Parameters
        ----------
        query:
            Raw keyword query; terms may include feature triplets.
        top_k:
            Keep only the ``top_k`` highest-scored results (None = all).
            The paper uses top-30 on Wikipedia data (§C).
        semantics:
            ``"and"`` (paper default) or ``"or"`` (paper appendix).
        """
        terms = self.parse(query)
        return self.search_terms(terms, top_k=top_k, semantics=semantics)

    def boolean_search(
        self,
        query: str,
        top_k: int | None = None,
    ) -> list[SearchResult]:
        """Evaluate a boolean-language query (AND/OR/NOT, parens, triplets).

        Matching documents are ranked by the engine's scorer against the
        query's *positive* words (every word outside a NOT); documents
        matching only via negations get score 0 but are still returned.
        Phrases are not supported here — the engine has no positional
        index; use :class:`~repro.index.positional.PositionalIndex` with
        :func:`~repro.index.queryparser.evaluate_query` directly for those.
        """
        from repro.index.queryparser import evaluate_query, parse_query
        from repro.index.queryparser import NotNode, PhraseNode, TermNode

        def normalize(word: str) -> str | None:
            terms = self._analyzer.analyze_query(word)
            return terms[0] if terms else None

        node = parse_query(query)
        positions = evaluate_query(
            query, self._index, normalize=normalize
        )

        def positive_words(n, negated: bool) -> list[str]:
            if isinstance(n, TermNode):
                return [] if negated else [n.term]
            if isinstance(n, PhraseNode):
                raise QueryError(
                    "phrase queries need a positional index; "
                    "use evaluate_query() with one"
                )
            if isinstance(n, NotNode):
                return positive_words(n.child, not negated)
            out: list[str] = []
            for child in n.children:
                out.extend(positive_words(child, negated))
            return out

        words = []
        for word in positive_words(node, False):
            term = normalize(word)
            if term and term not in words:
                words.append(term)
        ranked = self._scorer.rank(positions, words)
        if top_k is not None:
            ranked = ranked[: max(top_k, 0)]
        return [
            SearchResult(position=pos, document=self._corpus[pos], score=score)
            for pos, score in ranked
        ]

    def search_terms(
        self,
        terms: list[str],
        top_k: int | None = None,
        semantics: str = AND,
    ) -> list[SearchResult]:
        """Like :meth:`search` but with pre-normalized terms."""
        if semantics == AND:
            positions = self._index.and_query(terms)
        elif semantics == OR:
            positions = self._index.or_query(terms)
        else:
            raise QueryError(f"unknown semantics: {semantics!r}")
        if top_k is not None:
            from repro.index.scoring import top_k_ranked

            ranked = top_k_ranked(
                positions,
                lambda pos: self._scorer.score(pos, terms),
                max(top_k, 0),
            )
        else:
            ranked = self._scorer.rank(positions, terms)
        return [
            SearchResult(position=pos, document=self._corpus[pos], score=score)
            for pos, score in ranked
        ]
