"""Search engine facade: parse query, retrieve, rank, truncate to top-k."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import QueryError
from repro.index.inverted_index import InvertedIndex
from repro.index.scoring import TfIdfScorer
from repro.text.analyzer import Analyzer

AND = "and"
OR = "or"


@dataclass(frozen=True)
class SearchResult:
    """One ranked result: the document, its corpus position, and its score."""

    position: int
    document: Document
    score: float


class SearchEngine:
    """Keyword search over a corpus with AND (default) or OR semantics.

    This is the substrate that evaluates both the user's seed query and every
    candidate expanded query. Expanded-query evaluation inside the expansion
    algorithms themselves uses the vectorized
    :class:`~repro.core.universe.ResultUniverse` instead, restricted to the
    seed query's results — matching the paper, where expanded queries
    classify the *original* result set.
    """

    def __init__(
        self,
        corpus: Corpus,
        analyzer: Analyzer | None = None,
        scoring: str = "tfidf",
    ) -> None:
        self._corpus = corpus
        self._analyzer = analyzer or Analyzer()
        self._index = InvertedIndex(corpus)
        if scoring == "tfidf":
            self._scorer = TfIdfScorer(self._index)
        elif scoring == "bm25":
            from repro.index.bm25 import BM25Scorer

            self._scorer = BM25Scorer(self._index)
        elif scoring == "lm":
            from repro.index.lm import LMDirichletScorer

            self._scorer = LMDirichletScorer(self._index)
        else:
            raise QueryError(
                f"unknown scoring {scoring!r}; use 'tfidf', 'bm25' or 'lm'"
            )

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def analyzer(self) -> Analyzer:
        return self._analyzer

    @property
    def scorer(self) -> TfIdfScorer:
        return self._scorer

    def parse(self, query: str) -> list[str]:
        """Normalize a raw query string into distinct query terms."""
        terms = self._analyzer.keep_distinct(self._analyzer.analyze_query(query))
        if not terms:
            raise QueryError(f"query {query!r} normalized to zero terms")
        return terms

    def search(
        self,
        query: str,
        top_k: int | None = None,
        semantics: str = AND,
    ) -> list[SearchResult]:
        """Run ``query`` and return ranked results.

        Parameters
        ----------
        query:
            Raw keyword query; terms may include feature triplets.
        top_k:
            Keep only the ``top_k`` highest-scored results (None = all).
            The paper uses top-30 on Wikipedia data (§C).
        semantics:
            ``"and"`` (paper default) or ``"or"`` (paper appendix).
        """
        terms = self.parse(query)
        return self.search_terms(terms, top_k=top_k, semantics=semantics)

    def boolean_search(
        self,
        query: str,
        top_k: int | None = None,
    ) -> list[SearchResult]:
        """Evaluate a boolean-language query (AND/OR/NOT, parens, triplets).

        Matching documents are ranked by the engine's scorer against the
        query's *positive* words (every word outside a NOT); documents
        matching only via negations get score 0 but are still returned.
        Phrases are not supported here — the engine has no positional
        index; use :class:`~repro.index.positional.PositionalIndex` with
        :func:`~repro.index.queryparser.evaluate_query` directly for those.
        """
        from repro.index.queryparser import evaluate_query, parse_query
        from repro.index.queryparser import NotNode, PhraseNode, TermNode

        def normalize(word: str) -> str | None:
            terms = self._analyzer.analyze_query(word)
            return terms[0] if terms else None

        node = parse_query(query)
        positions = evaluate_query(
            query, self._index, normalize=normalize
        )

        def positive_words(n, negated: bool) -> list[str]:
            if isinstance(n, TermNode):
                return [] if negated else [n.term]
            if isinstance(n, PhraseNode):
                raise QueryError(
                    "phrase queries need a positional index; "
                    "use evaluate_query() with one"
                )
            if isinstance(n, NotNode):
                return positive_words(n.child, not negated)
            out: list[str] = []
            for child in n.children:
                out.extend(positive_words(child, negated))
            return out

        words = []
        for word in positive_words(node, False):
            term = normalize(word)
            if term and term not in words:
                words.append(term)
        ranked = self._scorer.rank(positions, words)
        if top_k is not None:
            ranked = ranked[: max(top_k, 0)]
        return [
            SearchResult(position=pos, document=self._corpus[pos], score=score)
            for pos, score in ranked
        ]

    def search_terms(
        self,
        terms: list[str],
        top_k: int | None = None,
        semantics: str = AND,
    ) -> list[SearchResult]:
        """Like :meth:`search` but with pre-normalized terms."""
        if semantics == AND:
            positions = self._index.and_query(terms)
        elif semantics == OR:
            positions = self._index.or_query(terms)
        else:
            raise QueryError(f"unknown semantics: {semantics!r}")
        if top_k is not None:
            from repro.index.scoring import top_k_ranked

            ranked = top_k_ranked(
                positions,
                lambda pos: self._scorer.score(pos, terms),
                max(top_k, 0),
            )
        else:
            ranked = self._scorer.rank(positions, terms)
        return [
            SearchResult(position=pos, document=self._corpus[pos], score=score)
            for pos, score in ranked
        ]
