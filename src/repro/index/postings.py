"""Posting lists: sorted (doc, tf) sequences with merge operations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Posting:
    """One occurrence record: document position and term frequency."""

    doc: int
    tf: int


class PostingList:
    """A sorted-by-doc list of postings supporting boolean merges.

    Doc ids are integer corpus positions; lists are append-only and must be
    appended in nondecreasing doc order (the index builder guarantees this).
    """

    __slots__ = ("_postings",)

    def __init__(self, postings: Iterable[Posting] = ()) -> None:
        self._postings: list[Posting] = []
        for p in postings:
            self.append(p)

    def append(self, posting: Posting) -> None:
        if self._postings and posting.doc <= self._postings[-1].doc:
            raise ValueError(
                f"postings out of order: {posting.doc} after {self._postings[-1].doc}"
            )
        self._postings.append(posting)

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __bool__(self) -> bool:
        return bool(self._postings)

    def doc_ids(self) -> list[int]:
        return [p.doc for p in self._postings]

    def document_frequency(self) -> int:
        return len(self._postings)

    def intersect(self, other: "PostingList") -> "PostingList":
        """Documents present in both lists (tf taken from ``self``)."""
        out = PostingList()
        i = j = 0
        a, b = self._postings, other._postings
        while i < len(a) and j < len(b):
            if a[i].doc == b[j].doc:
                out.append(a[i])
                i += 1
                j += 1
            elif a[i].doc < b[j].doc:
                i += 1
            else:
                j += 1
        return out

    def intersect_skip(self, other: "PostingList") -> "PostingList":
        """Skip-pointer intersection (tf taken from ``self``).

        Classic IR optimization: virtual skip pointers every ``sqrt(n)``
        postings let the merge leap over runs that cannot match. Produces
        exactly the same result as :meth:`intersect`; it wins when the two
        lists have very different lengths (the common case of one rare and
        one frequent keyword).
        """
        out = PostingList()
        a, b = self._postings, other._postings
        skip_a = max(int(len(a) ** 0.5), 1)
        skip_b = max(int(len(b) ** 0.5), 1)
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].doc == b[j].doc:
                out.append(a[i])
                i += 1
                j += 1
            elif a[i].doc < b[j].doc:
                while i + skip_a < len(a) and a[i + skip_a].doc <= b[j].doc:
                    i += skip_a
                if a[i].doc != b[j].doc:
                    i += 1
            else:
                while j + skip_b < len(b) and b[j + skip_b].doc <= a[i].doc:
                    j += skip_b
                if b[j].doc != a[i].doc:
                    j += 1
        return out

    def union(self, other: "PostingList") -> "PostingList":
        """Documents present in either list (tf summed when in both)."""
        out = PostingList()
        i = j = 0
        a, b = self._postings, other._postings
        while i < len(a) and j < len(b):
            if a[i].doc == b[j].doc:
                out.append(Posting(a[i].doc, a[i].tf + b[j].tf))
                i += 1
                j += 1
            elif a[i].doc < b[j].doc:
                out.append(a[i])
                i += 1
            else:
                out.append(b[j])
                j += 1
        for p in a[i:]:
            out.append(p)
        for p in b[j:]:
            out.append(p)
        return out


def intersect_all(lists: list[PostingList]) -> PostingList:
    """Intersect posting lists, shortest-first for efficiency.

    An empty input list yields an empty posting list (the caller decides what
    an empty query means).
    """
    if not lists:
        return PostingList()
    ordered = sorted(lists, key=len)
    result = ordered[0]
    for plist in ordered[1:]:
        if not result:
            break
        result = result.intersect(plist)
    return result


def union_all(lists: list[PostingList]) -> PostingList:
    """Union posting lists pairwise."""
    if not lists:
        return PostingList()
    result = lists[0]
    for plist in lists[1:]:
        result = result.union(plist)
    return result
