"""Dynamic index: documents can be appended after construction.

The base :class:`~repro.index.inverted_index.InvertedIndex` is built once
from a frozen corpus — the right model for the paper's experiments. A
search deployment also needs ingestion, so :class:`DynamicIndex` keeps
the same retrieval surface (postings / boolean queries / doc lengths)
while accepting appends, with per-term posting lists grown in place.

Scoring objects (TF-IDF/BM25/LM) snapshot collection statistics at
construction; create them *after* the bulk load, or refresh them when
enough documents have arrived — the ``generation`` counter tells callers
when the index has changed.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import IndexingError
from repro.index.backend import BackendCapabilities
from repro.index.postings import Posting, PostingList, intersect_all, union_all


class DynamicIndex:
    """Append-friendly inverted index over an internal corpus.

    Documents keep their append order; the integer position is the doc id,
    as everywhere else in the library. Duplicate ``doc_id`` strings are
    rejected by the underlying corpus.
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._corpus = Corpus()
        self._postings: dict[str, PostingList] = {}
        self._doc_lengths: list[int] = []
        self._generation = 0
        for doc in documents:
            self.add(doc)

    # -- ingestion -----------------------------------------------------------

    def add(self, doc: Document) -> int:
        """Append ``doc``; return its position."""
        pos = self._corpus.add(doc)
        self._doc_lengths.append(doc.length())
        for term in sorted(doc.terms):
            self._postings.setdefault(term, PostingList()).append(
                Posting(pos, doc.terms[term])
            )
        self._generation += 1
        return pos

    def add_all(self, documents: Iterable[Document]) -> list[int]:
        return [self.add(doc) for doc in documents]

    @property
    def generation(self) -> int:
        """Monotone change counter; bump = stats snapshots are stale."""
        return self._generation

    # -- retrieval surface (matches InvertedIndex) -----------------------------

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def num_documents(self) -> int:
        return len(self._corpus)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    def __contains__(self, term: object) -> bool:
        return term in self._postings

    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def postings(self, term: str) -> PostingList:
        return self._postings.get(term, PostingList())

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))  # type: ignore[arg-type]

    def doc_length(self, pos: int) -> int:
        return self._doc_lengths[pos]

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="dynamic", mutable=True, concurrent_reads=False
        )

    def and_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("AND query needs at least one term")
        lists = [self.postings(t) for t in term_list]
        if any(not pl for pl in lists):
            return []
        return intersect_all(lists).doc_ids()

    def or_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("OR query needs at least one term")
        return union_all([self.postings(t) for t in term_list]).doc_ids()
