"""Dynamic index: documents can be appended after construction.

The base :class:`~repro.index.inverted_index.InvertedIndex` is built once
from a frozen corpus — the right model for the paper's experiments. A
search deployment also needs ingestion, so :class:`DynamicIndex` keeps
the same retrieval surface (postings / boolean queries / doc lengths)
while accepting appends, with per-term posting lists grown in place.
Documents can also be :meth:`remove`\\ d — a tombstone that filters the
position out of queries while keeping every position stable, the same
model the durable store (:mod:`repro.store`) persists.

Two integration points matter for serving (:mod:`repro.serve`):

* ``DynamicIndex(corpus=existing)`` *adopts* a corpus instead of creating
  a private one, so a :class:`~repro.index.search.SearchEngine` and the
  index share one document store — documents appended after construction
  are immediately retrievable through the engine. This is what the
  ``"dynamic"`` entry in :data:`repro.api.registries.BACKENDS` does.
* :meth:`subscribe` registers mutation listeners. Every append (one
  notification per :meth:`add`, one per :meth:`add_all` batch) invokes
  the listeners, which is how the serving layer's caches get invalidated
  the moment ingestion lands rather than on some poll interval.

Scoring objects (TF-IDF/BM25/LM) snapshot collection statistics at
construction; create them *after* the bulk load, or refresh them when
enough documents have arrived — the ``generation`` counter tells callers
when the index has changed, and
:meth:`~repro.index.search.SearchEngine.refresh_scoring` rebuilds an
engine's scorer in place.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.data.corpus import Corpus
from repro.data.documents import Document
from repro.errors import IndexingError
from repro.index.backend import BackendCapabilities
from repro.index.postings import Posting, PostingList, intersect_all, union_all

MutationListener = Callable[["DynamicIndex"], None]


class DynamicIndex:
    """Append-friendly inverted index over an internal or adopted corpus.

    Documents keep their append order; the integer position is the doc id,
    as everywhere else in the library. Duplicate ``doc_id`` strings are
    rejected by the underlying corpus.

    Parameters
    ----------
    documents:
        Documents to append at construction (each counts as a mutation).
    corpus:
        An existing :class:`~repro.data.corpus.Corpus` to adopt: its
        current documents are indexed in place (no copies, generation
        stays 0), and later :meth:`add` calls append to *that* corpus.
    """

    def __init__(
        self,
        documents: Iterable[Document] = (),
        *,
        corpus: Corpus | None = None,
    ) -> None:
        self._corpus = corpus if corpus is not None else Corpus()
        self._postings: dict[str, PostingList] = {}
        self._doc_lengths: list[int] = []
        self._removed: set[int] = set()
        self._generation = 0
        self._listeners: list[MutationListener] = []
        if corpus is not None:
            for pos, doc in enumerate(corpus):
                self._index_document(pos, doc)
        for doc in documents:
            self.add(doc)

    # -- ingestion -----------------------------------------------------------

    def _index_document(self, pos: int, doc: Document) -> None:
        self._doc_lengths.append(doc.length())
        for term in sorted(doc.terms):
            self._postings.setdefault(term, PostingList()).append(
                Posting(pos, doc.terms[term])
            )

    def _ingest(self, doc: Document) -> int:
        pos = self._corpus.add(doc)
        self._index_document(pos, doc)
        self._generation += 1
        return pos

    def add(self, doc: Document) -> int:
        """Append ``doc``; return its position. Notifies listeners."""
        pos = self._ingest(doc)
        self._notify()
        return pos

    def add_all(self, documents: Iterable[Document]) -> list[int]:
        """Append a batch; listeners are notified once, after the batch.

        If a document mid-batch is rejected (e.g. a duplicate
        ``doc_id``), the exception propagates — but listeners still fire
        for the documents that already landed, so cache invalidation
        never misses a successful ingest.
        """
        positions: list[int] = []
        try:
            for doc in documents:
                positions.append(self._ingest(doc))
        finally:
            if positions:
                self._notify()
        return positions

    def remove(self, target: int | str) -> None:
        """Tombstone a document (by position or ``doc_id``).

        Positions are permanent — the corpus keeps the document and no
        later document shifts — so position-addressed state above the
        index stays valid. The per-term posting lists are left intact
        (they are append-only) and filtered at query time; the durable
        store (:mod:`repro.store`) follows the same tombstone model
        (its backend's ``remove`` takes the same arguments) and adds
        the compaction step this in-memory index does not need.
        Removing an unknown or already-removed document raises.
        Notifies listeners.
        """
        pos = self._corpus.position(target) if isinstance(target, str) else target
        if not 0 <= pos < len(self._doc_lengths):
            raise IndexingError(
                f"cannot remove position {pos}: index holds "
                f"{len(self._doc_lengths)} documents"
            )
        if pos in self._removed:
            raise IndexingError(f"position {pos} is already removed")
        self._removed.add(pos)
        self._generation += 1
        self._notify()

    @property
    def removed_positions(self) -> frozenset[int]:
        """Tombstoned positions (never reused)."""
        return frozenset(self._removed)

    @property
    def generation(self) -> int:
        """Monotone change counter; bump = stats snapshots are stale."""
        return self._generation

    # -- mutation listeners ---------------------------------------------------

    def subscribe(self, listener: MutationListener) -> Callable[[], None]:
        """Register ``listener(index)`` to run after every mutation.

        Returns an unsubscribe callable. Listener exceptions are isolated
        (a failing cache hook must never sink an ingest); listeners run
        on the ingesting thread, after the index is consistent.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self) -> None:
        for listener in list(self._listeners):
            try:
                listener(self)
            except Exception:  # noqa: BLE001 — listener isolation, see subscribe
                continue

    # -- retrieval surface (matches InvertedIndex) -----------------------------

    @property
    def corpus(self) -> Corpus:
        return self._corpus

    @property
    def num_documents(self) -> int:
        return len(self._corpus)

    @property
    def num_terms(self) -> int:
        if not self._removed:
            return len(self._postings)
        return sum(1 for term in self._postings if self.document_frequency(term))

    def __contains__(self, term: object) -> bool:
        if not self._removed:
            return term in self._postings
        return isinstance(term, str) and self.document_frequency(term) > 0

    def vocabulary(self) -> list[str]:
        if not self._removed:
            return sorted(self._postings)
        return sorted(t for t in self._postings if self.document_frequency(t))

    def postings(self, term: str) -> PostingList:
        live = self._postings.get(term, PostingList())
        # The common no-tombstone case shares the in-place list; with
        # tombstones a filtered copy keeps removed documents invisible.
        if self._removed and live:
            removed = self._removed
            return PostingList(p for p in live if p.doc not in removed)
        return live

    def document_frequency(self, term: str) -> int:
        live = self._postings.get(term)
        if live is None:
            return 0
        if not self._removed:
            return len(live)
        # Count in place: num_terms/vocabulary call this per term, and
        # materializing a filtered PostingList per call would make them
        # O(vocabulary x postings) in allocations.
        removed = self._removed
        return sum(1 for p in live if p.doc not in removed)

    def doc_length(self, pos: int) -> int:
        return self._doc_lengths[pos]

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="dynamic", mutable=True, concurrent_reads=False
        )

    def and_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("AND query needs at least one term")
        lists = [self.postings(t) for t in term_list]
        if any(not pl for pl in lists):
            return []
        return intersect_all(lists).doc_ids()

    def or_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("OR query needs at least one term")
        return union_all([self.postings(t) for t in term_list]).doc_ids()
