"""Positional index: term → (doc, positions) map with phrase/proximity search.

The base :class:`~repro.index.inverted_index.InvertedIndex` stores only
(doc, tf); phrase queries ("san jose") and proximity constraints need the
token positions. The positional index is built from raw token streams
(analyzer output order), so it is constructed alongside the corpus rather
than from :class:`~repro.data.documents.Document` bags, which have already
discarded order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from repro.errors import IndexingError, QueryError


class PositionalPostings:
    """For one term: sorted doc ids, each with its sorted position list."""

    __slots__ = ("_docs", "_positions")

    def __init__(self) -> None:
        self._docs: list[int] = []
        self._positions: list[list[int]] = []

    def add(self, doc: int, position: int) -> None:
        """Record an occurrence; docs and positions must arrive in order."""
        if self._docs and doc < self._docs[-1]:
            raise IndexingError(
                f"positional postings out of order: doc {doc} after {self._docs[-1]}"
            )
        if not self._docs or doc != self._docs[-1]:
            self._docs.append(doc)
            self._positions.append([])
        plist = self._positions[-1]
        if plist and position <= plist[-1]:
            raise IndexingError(
                f"positions out of order in doc {doc}: {position} after {plist[-1]}"
            )
        plist.append(position)

    def __len__(self) -> int:
        return len(self._docs)

    def __bool__(self) -> bool:
        return bool(self._docs)

    def doc_ids(self) -> list[int]:
        return list(self._docs)

    def positions(self, doc: int) -> list[int]:
        """Positions of the term in ``doc`` (empty if absent)."""
        i = bisect_left(self._docs, doc)
        if i < len(self._docs) and self._docs[i] == doc:
            return list(self._positions[i])
        return []


class PositionalIndex:
    """Positional inverted index over tokenized documents.

    Parameters
    ----------
    token_streams:
        One token sequence per document, in corpus order. Token position is
        the index within the stream.
    """

    def __init__(self, token_streams: Iterable[Sequence[str]]) -> None:
        self._postings: dict[str, PositionalPostings] = {}
        self._num_docs = 0
        for doc, stream in enumerate(token_streams):
            self._num_docs += 1
            for position, token in enumerate(stream):
                if not token:
                    raise IndexingError(f"empty token at doc {doc} pos {position}")
                self._postings.setdefault(token, PositionalPostings()).add(
                    doc, position
                )

    @property
    def num_documents(self) -> int:
        return self._num_docs

    def __contains__(self, term: object) -> bool:
        return term in self._postings

    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def postings(self, term: str) -> PositionalPostings:
        return self._postings.get(term, PositionalPostings())

    # -- phrase and proximity queries ----------------------------------------

    def phrase_query(self, terms: Sequence[str]) -> list[int]:
        """Documents containing ``terms`` as a contiguous phrase, in order.

        A single-term "phrase" degenerates to a term lookup. Empty phrases
        are an error.
        """
        return self.within_query(terms, slop=0)

    def within_query(self, terms: Sequence[str], slop: int = 0) -> list[int]:
        """Documents where terms appear in order with <= ``slop`` extra gaps.

        ``slop=0`` is an exact phrase; ``slop=2`` allows up to two
        intervening tokens between each adjacent pair.
        """
        term_list = list(terms)
        if not term_list:
            raise QueryError("phrase query needs at least one term")
        if slop < 0:
            raise QueryError(f"slop must be >= 0, got {slop}")
        lists = [self.postings(t) for t in term_list]
        if any(not pl for pl in lists):
            return []
        candidates = set(lists[0].doc_ids())
        for pl in lists[1:]:
            candidates &= set(pl.doc_ids())
        matches = []
        for doc in sorted(candidates):
            if self._doc_matches(lists, doc, slop):
                matches.append(doc)
        return matches

    @staticmethod
    def _doc_matches(
        lists: list[PositionalPostings], doc: int, slop: int
    ) -> bool:
        """Ordered-window check: each term within ``1 + slop`` of the previous."""
        starts = lists[0].positions(doc)
        rest = [pl.positions(doc) for pl in lists[1:]]
        for start in starts:
            prev = start
            ok = True
            for positions in rest:
                # Smallest position in (prev, prev + 1 + slop].
                i = bisect_left(positions, prev + 1)
                if i == len(positions) or positions[i] > prev + 1 + slop:
                    ok = False
                    break
                prev = positions[i]
            if ok:
                return True
        return False
