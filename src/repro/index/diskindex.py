"""Binary on-disk index: persist an inverted index with compressed postings.

Format (little-endian, version 1)::

    magic     4 bytes  b"QECX"
    version   1 byte
    codec     1 byte   0 = varint, 1 = gamma
    n_docs    4 bytes  uint32
    doc_lengths        varint block (n_docs values, each length + 1)
    n_terms   4 bytes  uint32
    per term, in sorted term order:
        term_len   2 bytes  uint16
        term       term_len bytes, UTF-8
        df         4 bytes  uint32 (posting count)
        blob_len   4 bytes  uint32
        blob       blob_len bytes (encode_postings output)

The reader materializes the term directory eagerly but keeps posting blobs
compressed in memory, decoding on demand (and caching nothing — posting
decode is cheap at this scale and keeping it stateless keeps the reader
trivially thread-safe for reads).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable

from repro.errors import IndexingError
from repro.index.backend import BackendCapabilities, IndexBackend
from repro.index.compression import (
    CODECS,
    GAMMA,
    VARINT,
    decode_postings,
    encode_postings,
    varint_decode,
    varint_encode,
)
from repro.index.postings import Posting, PostingList, intersect_all, union_all

_MAGIC = b"QECX"
_VERSION = 1
_CODEC_BYTE = {VARINT: 0, GAMMA: 1}
_BYTE_CODEC = {v: k for k, v in _CODEC_BYTE.items()}


def write_index(
    index: IndexBackend, path: str | Path, codec: str = VARINT
) -> int:
    """Serialize any :class:`IndexBackend` to ``path``; return the byte size.

    Only the retrieval structures are persisted (postings + doc lengths);
    the documents themselves are persisted separately via
    :mod:`repro.data.io` so the two halves can live in different files.
    Works for every protocol conformer — the in-memory index, the dynamic
    index, and a sharded index all flatten to the same on-disk format.
    """
    if codec not in CODECS:
        raise IndexingError(f"unknown codec {codec!r}; use one of {CODECS}")
    path = Path(path)
    out = bytearray()
    out += _MAGIC
    out += bytes([_VERSION, _CODEC_BYTE[codec]])
    n_docs = index.num_documents
    out += struct.pack("<I", n_docs)
    lengths = [index.doc_length(pos) + 1 for pos in range(n_docs)]
    length_blob = varint_encode(lengths) if lengths else b""
    out += struct.pack("<I", len(length_blob))
    out += length_blob
    vocab = index.vocabulary()
    out += struct.pack("<I", len(vocab))
    for term in vocab:
        plist = index.postings(term)
        doc_ids = [p.doc for p in plist]
        tfs = [p.tf for p in plist]
        blob = encode_postings(doc_ids, tfs, codec=codec)
        term_bytes = term.encode("utf-8")
        if len(term_bytes) > 0xFFFF:
            raise IndexingError(f"term too long to serialize: {term[:40]!r}...")
        out += struct.pack("<H", len(term_bytes))
        out += term_bytes
        out += struct.pack("<II", len(plist), len(blob))
        out += blob
    path.write_bytes(bytes(out))
    return len(out)


class DiskIndex:
    """Read-only index loaded from the binary format of :func:`write_index`.

    Offers the same retrieval surface as
    :class:`~repro.index.inverted_index.InvertedIndex` (postings, document
    frequency, boolean queries, doc lengths) without needing the corpus in
    memory. Posting blobs stay compressed; :meth:`postings` decodes on
    demand.
    """

    def __init__(
        self,
        codec: str,
        doc_lengths: list[int],
        directory: dict[str, tuple[int, bytes]],
    ) -> None:
        self._codec = codec
        self._doc_lengths = doc_lengths
        self._directory = directory

    # -- loading ------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "DiskIndex":
        """Load an index file; all corruption surfaces as IndexingError."""
        data = Path(path).read_bytes()
        try:
            return cls._parse(data, path)
        except IndexingError:
            raise
        except (struct.error, UnicodeDecodeError, IndexError) as exc:
            raise IndexingError(f"corrupt index file {path}: {exc}") from None

    @classmethod
    def build(
        cls, corpus, path: str | Path, codec: str = VARINT
    ) -> "DiskIndex":
        """Index ``corpus``, persist to ``path``, and return the reader.

        One-stop construction for the ``disk`` backend: equivalent to
        building an :class:`~repro.index.inverted_index.InvertedIndex`,
        calling :func:`write_index`, and :meth:`load`-ing the result.
        """
        from repro.index.inverted_index import InvertedIndex

        write_index(InvertedIndex(corpus), path, codec=codec)
        return cls.load(path)

    @classmethod
    def _parse(cls, data: bytes, path: str | Path) -> "DiskIndex":
        if len(data) < 6 or data[:4] != _MAGIC:
            raise IndexingError(f"not a QECX index file: {path}")
        version, codec_byte = data[4], data[5]
        if version != _VERSION:
            raise IndexingError(f"unsupported index version {version}")
        codec = _BYTE_CODEC.get(codec_byte)
        if codec is None:
            raise IndexingError(f"unknown codec byte {codec_byte}")
        offset = 6
        (n_docs,) = struct.unpack_from("<I", data, offset)
        offset += 4
        (length_blob_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        length_blob = data[offset : offset + length_blob_len]
        offset += length_blob_len
        lengths = [v - 1 for v in varint_decode(length_blob)]
        if len(lengths) != n_docs:
            raise IndexingError(
                f"corrupt index: {len(lengths)} doc lengths for {n_docs} docs"
            )
        (n_terms,) = struct.unpack_from("<I", data, offset)
        offset += 4
        directory: dict[str, tuple[int, bytes]] = {}
        for _ in range(n_terms):
            (term_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            term = data[offset : offset + term_len].decode("utf-8")
            offset += term_len
            df, blob_len = struct.unpack_from("<II", data, offset)
            offset += 8
            blob = data[offset : offset + blob_len]
            if len(blob) != blob_len:
                raise IndexingError(f"corrupt index: truncated blob for {term!r}")
            offset += blob_len
            directory[term] = (df, blob)
        if offset != len(data):
            raise IndexingError(
                f"corrupt index: {len(data) - offset} trailing bytes"
            )
        return cls(codec, lengths, directory)

    # -- introspection --------------------------------------------------------

    @property
    def codec(self) -> str:
        return self._codec

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        return len(self._directory)

    def __contains__(self, term: object) -> bool:
        return term in self._directory

    def vocabulary(self) -> list[str]:
        return sorted(self._directory)

    def document_frequency(self, term: str) -> int:
        entry = self._directory.get(term)
        return entry[0] if entry else 0

    def doc_length(self, pos: int) -> int:
        return self._doc_lengths[pos]

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="disk", persistent=True, compressed=True
        )

    # -- retrieval -------------------------------------------------------------

    def postings(self, term: str) -> PostingList:
        """Decode and return the posting list for ``term``."""
        entry = self._directory.get(term)
        if entry is None:
            return PostingList()
        count, blob = entry
        doc_ids, tfs = decode_postings(blob, count, codec=self._codec)
        return PostingList(Posting(d, t) for d, t in zip(doc_ids, tfs))

    def and_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("AND query needs at least one term")
        lists = [self.postings(t) for t in term_list]
        if any(not pl for pl in lists):
            return []
        return intersect_all(lists).doc_ids()

    def or_query(self, terms: Iterable[str]) -> list[int]:
        term_list = list(terms)
        if not term_list:
            raise IndexingError("OR query needs at least one term")
        return union_all([self.postings(t) for t in term_list]).doc_ids()
