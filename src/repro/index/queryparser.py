"""A small boolean query language over the index substrate.

Grammar (AND binds tighter than OR; juxtaposition is an implicit AND,
matching the paper's keyword-query semantics)::

    expr    := orExpr
    orExpr  := andExpr ( OR andExpr )*
    andExpr := notExpr ( [AND] notExpr )*
    notExpr := NOT notExpr | atom
    atom    := '(' expr ')' | '"' word+ '"' | word

Words may be feature triplets (``memory:category:harddrive``); quoted
groups are phrase queries and need a positional index. Keywords are
case-insensitive; everything else is normalized by the evaluation
context's term normalizer (the engine's analyzer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import QueryError
from repro.index.positional import PositionalIndex

# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------


class Node:
    """Base class for query AST nodes."""

    def evaluate(self, context: "EvalContext") -> set[int]:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class TermNode(Node):
    term: str

    def evaluate(self, context: "EvalContext") -> set[int]:
        return context.docs_with_term(self.term)


@dataclass(frozen=True)
class PhraseNode(Node):
    words: tuple[str, ...]

    def evaluate(self, context: "EvalContext") -> set[int]:
        return context.docs_with_phrase(self.words)


@dataclass(frozen=True)
class AndNode(Node):
    children: tuple[Node, ...]

    def evaluate(self, context: "EvalContext") -> set[int]:
        result: set[int] | None = None
        for child in self.children:
            docs = child.evaluate(context)
            result = docs if result is None else (result & docs)
            if not result:
                return set()
        return result or set()


@dataclass(frozen=True)
class OrNode(Node):
    children: tuple[Node, ...]

    def evaluate(self, context: "EvalContext") -> set[int]:
        result: set[int] = set()
        for child in self.children:
            result |= child.evaluate(context)
        return result


@dataclass(frozen=True)
class NotNode(Node):
    child: Node

    def evaluate(self, context: "EvalContext") -> set[int]:
        return context.all_docs() - self.child.evaluate(context)


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_SPECIAL = {"(", ")", '"'}


def _lex(query: str) -> list[str]:
    """Split into words, parens, and quote marks. Quotes are not nested."""
    tokens: list[str] = []
    word: list[str] = []
    for ch in query:
        if ch in _SPECIAL:
            if word:
                tokens.append("".join(word))
                word = []
            tokens.append(ch)
        elif ch.isspace():
            if word:
                tokens.append("".join(word))
                word = []
        else:
            word.append(ch)
    if word:
        tokens.append("".join(word))
    return tokens


# --------------------------------------------------------------------------
# Parser (recursive descent)
# --------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def advance(self) -> str:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def parse(self) -> Node:
        node = self.or_expr()
        if self.peek() is not None:
            raise QueryError(f"unexpected token {self.peek()!r}")
        return node

    def or_expr(self) -> Node:
        children = [self.and_expr()]
        while self._is_keyword("OR"):
            self.advance()
            children.append(self.and_expr())
        if len(children) == 1:
            return children[0]
        return OrNode(tuple(children))

    def and_expr(self) -> Node:
        children = [self.not_expr()]
        while True:
            token = self.peek()
            if token is None or token == ")" or self._is_keyword("OR"):
                break
            if self._is_keyword("AND"):
                self.advance()
            children.append(self.not_expr())
        if len(children) == 1:
            return children[0]
        return AndNode(tuple(children))

    def not_expr(self) -> Node:
        if self._is_keyword("NOT"):
            self.advance()
            return NotNode(self.not_expr())
        return self.atom()

    def atom(self) -> Node:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token == "(":
            self.advance()
            node = self.or_expr()
            if self.peek() != ")":
                raise QueryError("missing closing parenthesis")
            self.advance()
            return node
        if token == '"':
            self.advance()
            words: list[str] = []
            while self.peek() not in ('"', None):
                words.append(self.advance())
            if self.peek() != '"':
                raise QueryError("unterminated phrase")
            self.advance()
            if not words:
                raise QueryError("empty phrase")
            return PhraseNode(tuple(words))
        if token == ")":
            raise QueryError("unexpected closing parenthesis")
        self.advance()
        return TermNode(token)

    def _is_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.upper() == keyword


def parse_query(query: str) -> Node:
    """Parse a boolean query string into an AST.

    Raises :class:`~repro.errors.QueryError` on empty or malformed input.
    """
    tokens = _lex(query)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()


# --------------------------------------------------------------------------
# Evaluation
# --------------------------------------------------------------------------


class EvalContext:
    """Binds an AST to an index (and optionally a positional index).

    Parameters
    ----------
    index:
        Anything with ``postings(term)`` and ``num_documents`` — both
        :class:`~repro.index.inverted_index.InvertedIndex` and
        :class:`~repro.index.diskindex.DiskIndex` qualify.
    positional:
        Needed only for phrase queries.
    normalize:
        Term normalizer applied to every word before lookup (e.g. the
        analyzer's single-term normalization). Defaults to lowercasing.
        Returning ``None``/empty drops the word (e.g. stopwords), which for
        a phrase is an error — stopwords inside phrases are ambiguous.
    """

    def __init__(
        self,
        index,
        positional: PositionalIndex | None = None,
        normalize: Callable[[str], str | None] | None = None,
    ) -> None:
        self._index = index
        self._positional = positional
        self._normalize = normalize or (lambda w: w.lower())

    def all_docs(self) -> set[int]:
        return set(range(self._index.num_documents))

    def docs_with_term(self, word: str) -> set[int]:
        term = self._normalize(word)
        if not term:
            return set()
        return set(self._index.postings(term).doc_ids())

    def docs_with_phrase(self, words: tuple[str, ...]) -> set[int]:
        if self._positional is None:
            raise QueryError(
                "phrase queries need a positional index; none was provided"
            )
        terms: list[str] = []
        for word in words:
            term = self._normalize(word)
            if not term:
                raise QueryError(
                    f"phrase word {word!r} normalized to nothing "
                    "(stopword inside a phrase?)"
                )
            terms.append(term)
        return set(self._positional.phrase_query(terms))


def evaluate_query(
    query: str,
    index,
    positional: PositionalIndex | None = None,
    normalize: Callable[[str], str | None] | None = None,
) -> list[int]:
    """Parse and evaluate ``query``; return sorted matching doc positions."""
    node = parse_query(query)
    context = EvalContext(index, positional=positional, normalize=normalize)
    return sorted(node.evaluate(context))
