"""The typed artifact carrier that flows through a :class:`Pipeline`.

An :class:`ExecutionContext` holds everything the expansion pipeline
produces for one seed query — the artifacts that used to flow as
positional returns between ``retrieve``/``cluster``/``build_universe``/
``tasks``/``expand`` — plus the observability channel (per-stage wall
clock timings and trace events).

Contexts are immutable by convention: stages never mutate the context
they receive; they return a new one via :meth:`ExecutionContext.evolve`.
That makes middleware error isolation trivial (a failing hook simply
leaves the previous context in force) and lets harnesses keep any
intermediate context alive without defensive copying.

Two kinds of fields:

* **runtime** — the components the stages execute with (engine, config,
  algorithm, clusterer, candidate cache). Set once when the context is
  created; stages read but never replace them.
* **artifacts** — what the stages produce (results, labels, universe,
  candidates, tasks, expanded queries, score) plus ``timings``/``trace``
  appended by the pipeline's middleware and a free-form ``extras``
  mapping for custom stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids import cycles
    import numpy as np

    from repro.core.config import ExpansionConfig
    from repro.core.universe import ExpansionTask, ResultUniverse
    from repro.index.search import SearchResult


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock seconds spent inside one stage's ``run``."""

    stage: str
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {"stage": self.stage, "seconds": float(self.seconds)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageTiming":
        return cls(stage=str(payload["stage"]), seconds=float(payload["seconds"]))


@dataclass(frozen=True)
class TraceEvent:
    """One observability event emitted while a pipeline runs."""

    stage: str
    event: str  # "start", "end", or "error"
    detail: str = ""
    seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "event": self.event,
            "detail": self.detail,
            "seconds": float(self.seconds),
        }


@dataclass(frozen=True)
class ExecutionContext:
    """Everything one pipeline run reads and produces; see module docstring."""

    # -- runtime (set at entry, read-only for stages) ------------------------
    engine: Any = None
    config: "ExpansionConfig | None" = None
    algorithm: Any = None
    clusterer: Any = None
    candidate_cache: Any = None  # mutable mapping shared across runs, or None

    # -- artifacts -----------------------------------------------------------
    query: str = ""
    seed_terms: tuple[str, ...] = ()
    results: "tuple[SearchResult, ...]" = ()
    labels: "np.ndarray | None" = None
    universe: "ResultUniverse | None" = None
    candidates: tuple[str, ...] | None = None
    tasks: "tuple[ExpansionTask, ...]" = ()
    expanded: tuple = ()  # tuple[ExpandedQuery, ...]
    score: float | None = None
    extras: Mapping[str, Any] = field(default_factory=dict)

    # -- observability -------------------------------------------------------
    timings: tuple[StageTiming, ...] = ()
    trace: tuple[TraceEvent, ...] = ()

    def evolve(self, **changes: Any) -> "ExecutionContext":
        """A copy of this context with ``changes`` applied."""
        return replace(self, **changes)

    def with_extra(self, key: str, value: Any) -> "ExecutionContext":
        """A copy with one ``extras`` entry added (existing keys replaced)."""
        merged = dict(self.extras)
        merged[key] = value
        return self.evolve(extras=merged)

    # -- timing helpers ------------------------------------------------------

    def seconds_for(self, stage: str) -> float:
        """Total seconds recorded for ``stage`` (0.0 when never run)."""
        return sum(t.seconds for t in self.timings if t.stage == stage)

    def total_seconds(self) -> float:
        """Total seconds recorded across all stages."""
        return sum(t.seconds for t in self.timings)

    def timing_table(self) -> list[tuple[str, float]]:
        """``(stage, seconds)`` rows in execution order."""
        return [(t.stage, t.seconds) for t in self.timings]
