"""The built-in pipeline stages (the paper's method, one step per stage).

Each stage is a small, stateless object with a ``name`` and a
``run(ctx) -> ctx`` that reads artifacts and runtime components off the
:class:`~repro.pipeline.context.ExecutionContext` and returns an evolved
context. Statelessness is what lets one stage object be shared by every
call site (sessions, the compat expander, the interleaved loop, the
experiment suite) and across threads.

Default order (see :func:`repro.pipeline.default_pipeline`):

==============  ==========================================================
``retrieve``    seed-query search (AND semantics, ranked, top-k)
``cluster``     cluster the results over TF vectors
``universe``    the (optionally ranking-weighted) result universe
``candidates``  candidate-keyword mining (top-fraction TF-IDF, memoized)
``tasks``       one :class:`ExpansionTask` per cluster, largest first
``expand``      run the expansion algorithm per task; Eq. 1 score
==============  ==========================================================

plus ``reassign`` (not in the default pipeline), the §7 interleaving
step that moves each result to the best-F expanded query claiming it.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.cluster.kmeans import CosineKMeans
from repro.cluster.vectorizer import TfVectorizer
from repro.core.keyword_stats import select_candidates
from repro.core.metrics import eq1_score
from repro.core.universe import ExpansionTask, ResultUniverse
from repro.errors import ExpansionError, PipelineError
from repro.pipeline.context import ExecutionContext


class RetrieveStage:
    """Run the seed query: ranked AND retrieval of the configured top-k."""

    name = "retrieve"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        results = ctx.engine.search(ctx.query, top_k=ctx.config.top_k_results)
        if not results:
            raise ExpansionError(
                f"seed query {ctx.query!r} retrieved no results"
            )
        return ctx.evolve(
            results=tuple(results),
            seed_terms=tuple(ctx.engine.parse(ctx.query)),
        )


class ClusterStage:
    """Cluster the results into <= k clusters over TF vectors (§C)."""

    name = "cluster"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        docs = [r.document for r in ctx.results]
        matrix = TfVectorizer(docs).matrix()
        backend = ctx.clusterer
        if backend is None:
            kmeans = CosineKMeans(
                n_clusters=ctx.config.n_clusters, seed=ctx.config.cluster_seed
            )
            labels = kmeans.fit(matrix).labels
        else:
            labels = backend.fit_predict(matrix)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (len(docs),):
            raise ExpansionError(
                f"clusterer returned labels of shape {labels.shape} "
                f"for {len(docs)} results"
            )
        return ctx.evolve(labels=labels)


class UniverseStage:
    """Build the result universe, weighted by ranking scores if configured."""

    name = "universe"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        docs = [r.document for r in ctx.results]
        if ctx.config.use_ranking_weights:
            # Guard against zero scores (can happen only for degenerate
            # scorers); shift into positive territory.
            raw = np.array([r.score for r in ctx.results], dtype=np.float64)
            floor = raw[raw > 0.0].min() * 0.5 if np.any(raw > 0.0) else 1.0
            weights = np.maximum(raw, floor)
            universe = ResultUniverse(docs, weights)
        else:
            universe = ResultUniverse(docs)
        return ctx.evolve(universe=universe)


class CandidateStage:
    """Mine candidate expansion keywords (top-fraction TF-IDF, memoized).

    The same seed query always yields the same universe (retrieval is
    deterministic), so (seed terms, universe doc ids, selection knobs)
    identifies the statistics in the shared cache. A racing
    double-compute under threads is benign: both writers store identical
    values.
    """

    name = "candidates"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        key = None
        if ctx.candidate_cache is not None:
            key = (
                ctx.seed_terms,
                tuple(doc.doc_id for doc in ctx.universe.documents),
                ctx.config.candidate_fraction,
                ctx.config.min_candidates,
            )
            cached = ctx.candidate_cache.get(key)
            if cached is not None:
                return ctx.evolve(candidates=cached)
        candidates = select_candidates(
            ctx.engine.index,
            ctx.universe,
            ctx.seed_terms,
            fraction=ctx.config.candidate_fraction,
            min_candidates=ctx.config.min_candidates,
        )
        if key is not None:
            ctx.candidate_cache[key] = candidates
        return ctx.evolve(candidates=candidates)


class TasksStage:
    """One :class:`ExpansionTask` per cluster, largest-weight first."""

    name = "tasks"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        if ctx.candidates is None:
            raise PipelineError(
                "stage 'tasks' needs ctx.candidates; run the 'candidates' "
                "stage first (or set candidates on the context)"
            )
        labels = ctx.labels
        tasks = []
        for cid in sorted(set(int(lab) for lab in labels)):
            tasks.append(
                ExpansionTask(
                    universe=ctx.universe,
                    cluster_mask=labels == cid,
                    seed_terms=ctx.seed_terms,
                    candidates=ctx.candidates,
                    semantics=ctx.config.semantics,
                    cluster_id=cid,
                )
            )
        tasks.sort(key=lambda t: -t.cluster_weight())
        return ctx.evolve(
            tasks=tuple(tasks[: ctx.config.max_expanded_queries])
        )


class ExpandStage:
    """Run the expansion algorithm on every task; compute the Eq. 1 score."""

    name = "expand"

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        from repro.core.expander import ExpandedQuery

        expanded = []
        for task in ctx.tasks:
            outcome = ctx.algorithm.expand(task)
            expanded.append(
                ExpandedQuery(
                    terms=outcome.terms,
                    cluster_id=task.cluster_id,
                    cluster_size=int(task.cluster_mask.sum()),
                    fmeasure=outcome.fmeasure,
                    precision=outcome.precision,
                    recall=outcome.recall,
                    outcome=outcome,
                )
            )
        score = eq1_score([eq.fmeasure for eq in expanded])
        return ctx.evolve(expanded=tuple(expanded), score=score)


class ReassignStage:
    """§7 interleaving: move each result to the best-F query claiming it.

    Queries claim results in decreasing F-measure order; a result no
    query retrieves keeps its cluster, as do results of clusters that
    were truncated away by ``max_expanded_queries``. Writes the moved
    count to ``ctx.extras["n_moved"]``.
    """

    name = "reassign"

    @staticmethod
    def reassign(
        universe: ResultUniverse,
        labels: np.ndarray,
        tasks: "Sequence[ExpansionTask]",
        outcomes: "Sequence[Any]",
    ) -> "tuple[np.ndarray, int]":
        """Core reassignment: ``(new_labels, n_moved)`` from one round."""
        new_labels = labels.copy()
        order = sorted(range(len(tasks)), key=lambda i: -outcomes[i].fmeasure)
        claimed = universe.empty_mask()
        for i in order:
            mask = universe.results_mask(
                outcomes[i].terms, semantics=tasks[i].semantics
            )
            take = mask & ~claimed
            new_labels[take] = tasks[i].cluster_id
            claimed |= mask
        moved = int((new_labels != labels).sum())
        return new_labels, moved

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        new_labels, moved = self.reassign(
            ctx.universe,
            ctx.labels,
            ctx.tasks,
            [eq.outcome for eq in ctx.expanded],
        )
        return ctx.evolve(labels=new_labels).with_extra("n_moved", moved)


def default_stages() -> tuple:
    """Fresh instances of the default stage sequence."""
    return (
        RetrieveStage(),
        ClusterStage(),
        UniverseStage(),
        CandidateStage(),
        TasksStage(),
        ExpandStage(),
    )
