"""repro.pipeline — the composable expansion runtime.

The paper's method is intrinsically staged: retrieve seed results,
cluster them, build the result universe, mine candidate keywords, emit
one expanded query per cluster. This package makes the *pipeline* the
pluggable axis:

* :class:`ExecutionContext` — the typed, immutable-by-convention carrier
  of every artifact a run produces (plus per-stage timings and trace
  events);
* :class:`Stage` — the ``name`` + ``run(ctx) -> ctx`` protocol; the
  built-ins live in :mod:`repro.pipeline.stages`;
* :class:`Pipeline` — the composer (insert / replace / slice stages),
  with middleware hooks (``on_stage_start/end/error``) wrapped around
  every stage;
* :func:`default_pipeline` — the paper's six-stage sequence.

Every execution path — ``Session.expand``, ``ClusterQueryExpander``,
the interleaved loop, the PRF comparison, the experiment suite — runs
these same stage objects; the ``STAGES`` registry in
:mod:`repro.api.registries` names them for builder-level composition
(``Session.builder().stage(...)``/``.replace_stage(...)``).
"""

from repro.pipeline.context import ExecutionContext, StageTiming, TraceEvent
from repro.pipeline.middleware import (
    CallbackMiddleware,
    Middleware,
    TimingMiddleware,
    TraceMiddleware,
    TracingMiddleware,
)
from repro.pipeline.pipeline import Pipeline, Stage, default_pipeline
from repro.pipeline.stages import (
    CandidateStage,
    ClusterStage,
    ExpandStage,
    ReassignStage,
    RetrieveStage,
    TasksStage,
    UniverseStage,
    default_stages,
)

__all__ = [
    "CallbackMiddleware",
    "CandidateStage",
    "ClusterStage",
    "ExecutionContext",
    "ExpandStage",
    "Middleware",
    "Pipeline",
    "ReassignStage",
    "RetrieveStage",
    "Stage",
    "StageTiming",
    "TasksStage",
    "TimingMiddleware",
    "TraceEvent",
    "TraceMiddleware",
    "TracingMiddleware",
    "UniverseStage",
    "default_pipeline",
    "default_stages",
]
