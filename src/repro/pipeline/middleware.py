"""Middleware: observability hooks wrapped around every stage execution.

A middleware object may implement any of three hooks::

    on_stage_start(ctx, stage)          -> ExecutionContext | None
    on_stage_end(ctx, stage, seconds)   -> ExecutionContext | None
    on_stage_error(ctx, stage, exc)     -> None

``on_stage_start``/``on_stage_end`` may return a new context (e.g. to
append timings or trace events); returning ``None`` keeps the current
one. Hook exceptions are **isolated**: a raising hook never corrupts the
run — the pipeline keeps the last good context and moves on. Stage
errors, by contrast, propagate to the caller after ``on_stage_error``
has observed them.

Built-ins:

* :class:`TimingMiddleware` — appends a :class:`~repro.pipeline.context.
  StageTiming` per stage; installed by default on every pipeline, which
  is how per-stage wall clock reaches :class:`ExpansionReport
  <repro.core.expander.ExpansionReport>` (``stage_timings``) and the
  JSON schema.
* :class:`TraceMiddleware` — appends start/end/error
  :class:`~repro.pipeline.context.TraceEvent` records with a one-line
  artifact summary (result/cluster/task counts), for ``--trace`` style
  debugging.
* :class:`CallbackMiddleware` — adapts plain functions into hooks.
* :class:`TracingMiddleware` — contributes one :mod:`repro.obs` span per
  stage to the ambient request trace (a no-op outside one), which is how
  pipeline stages appear inside a served request's span tree.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.obs.tracing import end_stage_span, start_stage_span
from repro.pipeline.context import ExecutionContext, StageTiming, TraceEvent


@runtime_checkable
class Middleware(Protocol):  # pragma: no cover — structural only
    """Anything exposing one or more of the three stage hooks."""

    def on_stage_start(
        self, ctx: ExecutionContext, stage: Any
    ) -> ExecutionContext | None:
        ...

    def on_stage_end(
        self, ctx: ExecutionContext, stage: Any, seconds: float
    ) -> ExecutionContext | None:
        ...

    def on_stage_error(
        self, ctx: ExecutionContext, stage: Any, exc: BaseException
    ) -> None:
        ...


class TimingMiddleware:
    """Record one :class:`StageTiming` per executed stage into the context."""

    def on_stage_end(
        self, ctx: ExecutionContext, stage: Any, seconds: float
    ) -> ExecutionContext:
        timing = StageTiming(stage=stage.name, seconds=seconds)
        return ctx.evolve(timings=ctx.timings + (timing,))


def _summarize(ctx: ExecutionContext) -> str:
    """One line of artifact counts for trace events."""
    parts = []
    if ctx.results:
        parts.append(f"results={len(ctx.results)}")
    if ctx.labels is not None:
        parts.append(f"clusters={len(set(int(lab) for lab in ctx.labels))}")
    if ctx.candidates is not None:
        parts.append(f"candidates={len(ctx.candidates)}")
    if ctx.tasks:
        parts.append(f"tasks={len(ctx.tasks)}")
    if ctx.expanded:
        parts.append(f"expanded={len(ctx.expanded)}")
    if ctx.score is not None:
        parts.append(f"score={ctx.score:.3f}")
    return " ".join(parts)


class TraceMiddleware:
    """Append start/end/error :class:`TraceEvent` records to the context.

    Error events cannot be written into the context (the stage's context
    never materialized), so they are also collected on the middleware
    instance as :attr:`error_events` for post-mortem inspection.
    """

    def __init__(self) -> None:
        self.error_events: list[TraceEvent] = []

    def on_stage_start(
        self, ctx: ExecutionContext, stage: Any
    ) -> ExecutionContext:
        event = TraceEvent(stage=stage.name, event="start", detail=_summarize(ctx))
        return ctx.evolve(trace=ctx.trace + (event,))

    def on_stage_end(
        self, ctx: ExecutionContext, stage: Any, seconds: float
    ) -> ExecutionContext:
        event = TraceEvent(
            stage=stage.name,
            event="end",
            detail=_summarize(ctx),
            seconds=seconds,
        )
        return ctx.evolve(trace=ctx.trace + (event,))

    def on_stage_error(
        self, ctx: ExecutionContext, stage: Any, exc: BaseException
    ) -> None:
        self.error_events.append(
            TraceEvent(
                stage=stage.name,
                event="error",
                detail=f"{type(exc).__name__}: {exc}",
            )
        )


class TracingMiddleware:
    """One :mod:`repro.obs` child span per stage of the ambient trace.

    Stages run strictly sequentially on the request's own thread, so the
    span opened by ``on_stage_start`` is still the current one when
    ``on_stage_end``/``on_stage_error`` fires — :func:`end_stage_span`
    verifies the name before closing, so unpaired hooks (or a pipeline
    run outside any request trace) degrade to no-ops instead of
    corrupting a sibling span. The middleware itself is stateless and
    safe to share across pooled sessions.
    """

    @staticmethod
    def _span_name(stage: Any) -> str:
        return f"stage.{getattr(stage, 'name', stage)}"

    def on_stage_start(self, ctx: ExecutionContext, stage: Any) -> None:
        start_stage_span(self._span_name(stage))
        return None

    def on_stage_end(
        self, ctx: ExecutionContext, stage: Any, seconds: float
    ) -> None:
        end_stage_span(self._span_name(stage))
        return None

    def on_stage_error(
        self, ctx: ExecutionContext, stage: Any, exc: BaseException
    ) -> None:
        end_stage_span(self._span_name(stage), exc)


class CallbackMiddleware:
    """Adapt plain callables into middleware hooks.

    ``on_start(ctx, stage)`` and ``on_end(ctx, stage, seconds)`` may
    return a context or ``None``; ``on_error(ctx, stage, exc)`` is
    observe-only. All are optional.
    """

    def __init__(
        self,
        on_start: Callable[..., Any] | None = None,
        on_end: Callable[..., Any] | None = None,
        on_error: Callable[..., Any] | None = None,
    ) -> None:
        self._on_start = on_start
        self._on_end = on_end
        self._on_error = on_error

    def on_stage_start(
        self, ctx: ExecutionContext, stage: Any
    ) -> ExecutionContext | None:
        if self._on_start is not None:
            return self._on_start(ctx, stage)
        return None

    def on_stage_end(
        self, ctx: ExecutionContext, stage: Any, seconds: float
    ) -> ExecutionContext | None:
        if self._on_end is not None:
            return self._on_end(ctx, stage, seconds)
        return None

    def on_stage_error(
        self, ctx: ExecutionContext, stage: Any, exc: BaseException
    ) -> None:
        if self._on_error is not None:
            self._on_error(ctx, stage, exc)
