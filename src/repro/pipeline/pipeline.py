"""The :class:`Pipeline` composer: ordered stages + middleware hooks.

A pipeline is an immutable sequence of :class:`Stage` objects executed
over an :class:`~repro.pipeline.context.ExecutionContext`, with
middleware wrapped around every stage (see
:mod:`repro.pipeline.middleware`). Composition methods return *new*
pipelines, so a customized pipeline can be derived from the default one
without affecting other sessions::

    pipe = (default_pipeline()
            .replace_stage("candidates", MyMiner())
            .with_stage(MyReranker(), after="retrieve")
            .with_middleware(TraceMiddleware()))
    ctx = pipe.run(ExecutionContext(engine=..., config=..., algorithm=...,
                                    query="java"))

``run`` accepts ``stop_after`` for partial execution (harnesses that
need intermediate artifacts) — the same stage objects execute whether
the pipeline runs whole or in slices.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.errors import PipelineError
from repro.pipeline.context import ExecutionContext
from repro.pipeline.middleware import Middleware, TimingMiddleware
from repro.pipeline.stages import default_stages


@runtime_checkable
class Stage(Protocol):  # pragma: no cover — structural only
    """Anything with a ``name`` and a ``run(ctx) -> ctx``."""

    name: str

    def run(self, ctx: ExecutionContext) -> ExecutionContext:
        ...


def _check_stage(stage: Any) -> Any:
    if not isinstance(getattr(stage, "name", None), str) or not stage.name:
        raise PipelineError(
            f"stages need a non-empty string .name; got {stage!r}"
        )
    if not callable(getattr(stage, "run", None)):
        raise PipelineError(f"stage {stage.name!r} has no callable .run(ctx)")
    return stage


class Pipeline:
    """An immutable stage sequence with middleware; see module docstring.

    Parameters
    ----------
    stages:
        Ordered :class:`Stage` objects. Names must be unique (lookups,
        replacement, and per-stage timings are keyed by name).
    middleware:
        Extra middleware appended after the built-in
        :class:`~repro.pipeline.middleware.TimingMiddleware`.
    record_timings:
        Install the built-in timing middleware (default). Disable only
        for overhead measurements; reports built from an untimed run
        carry zero per-stage seconds.
    """

    def __init__(
        self,
        stages: Iterable[Stage],
        middleware: Iterable[Middleware] = (),
        record_timings: bool = True,
    ) -> None:
        self._stages = tuple(_check_stage(s) for s in stages)
        if not self._stages:
            raise PipelineError("a pipeline needs at least one stage")
        names = [s.name.lower() for s in self._stages]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PipelineError(f"duplicate stage names: {', '.join(dupes)}")
        self._record_timings = record_timings
        builtin = (TimingMiddleware(),) if record_timings else ()
        self._middleware: tuple[Middleware, ...] = builtin + tuple(middleware)
        self._user_middleware = tuple(middleware)

    # -- introspection -------------------------------------------------------

    @property
    def stages(self) -> tuple[Stage, ...]:
        return self._stages

    @property
    def names(self) -> tuple[str, ...]:
        """Stage names in execution order."""
        return tuple(s.name for s in self._stages)

    @property
    def middleware(self) -> tuple[Middleware, ...]:
        """User middleware (the built-in timing middleware is implicit)."""
        return self._user_middleware

    def get_stage(self, name: str) -> Stage:
        """The stage called ``name`` (case-insensitive, like registries)."""
        return self._stages[self._index_of(name)]

    def describe(self) -> list[str]:
        """JSON-able stage-name list (execution order)."""
        return list(self.names)

    def __repr__(self) -> str:
        return f"Pipeline({' -> '.join(self.names)})"

    # -- composition (every method returns a new Pipeline) -------------------

    def _derive(self, stages: tuple[Stage, ...]) -> "Pipeline":
        return Pipeline(
            stages,
            middleware=self._user_middleware,
            record_timings=self._record_timings,
        )

    def _index_of(self, name: str) -> int:
        key = name.lower() if isinstance(name, str) else name
        for i, stage in enumerate(self._stages):
            if stage.name.lower() == key:
                return i
        raise PipelineError(
            f"unknown stage {name!r}; pipeline stages: {', '.join(self.names)}"
        )

    def with_stage(
        self,
        stage: Stage,
        after: str | None = None,
        before: str | None = None,
    ) -> "Pipeline":
        """Insert ``stage`` after/before an anchor (appended by default)."""
        _check_stage(stage)
        if after is not None and before is not None:
            raise PipelineError("pass either after= or before=, not both")
        if after is not None:
            index = self._index_of(after) + 1
        elif before is not None:
            index = self._index_of(before)
        else:
            index = len(self._stages)
        stages = self._stages[:index] + (stage,) + self._stages[index:]
        return self._derive(stages)

    def replace_stage(self, name: str, stage: Stage) -> "Pipeline":
        """Swap the stage called ``name`` for ``stage`` (same position).

        The replacement must keep the replaced stage's name: timings,
        ``get_stage``/``slice`` lookups, and the report's derived fields
        (``clustering_seconds``) are all keyed by stage name, so a
        renamed replacement would silently break every consumer.
        """
        _check_stage(stage)
        index = self._index_of(name)
        old_name = self._stages[index].name
        if stage.name != old_name:
            raise PipelineError(
                f"replacement for stage {old_name!r} must keep its name; "
                f"got {stage.name!r} (use with_stage()/without_stage() to "
                f"change the stage sequence instead)"
            )
        stages = self._stages[:index] + (stage,) + self._stages[index + 1 :]
        return self._derive(stages)

    def without_stage(self, name: str) -> "Pipeline":
        """Drop the stage called ``name``."""
        index = self._index_of(name)
        return self._derive(self._stages[:index] + self._stages[index + 1 :])

    def slice(self, start: str, stop: str) -> "Pipeline":
        """The sub-pipeline from stage ``start`` through ``stop`` inclusive.

        Shares the stage objects and middleware with this pipeline — used
        by the interleaved loop to re-run ``tasks -> expand`` per round.
        """
        i, j = self._index_of(start), self._index_of(stop)
        if j < i:
            raise PipelineError(
                f"slice start {start!r} comes after stop {stop!r}"
            )
        return self._derive(self._stages[i : j + 1])

    def split(self, name: str) -> "tuple[Pipeline | None, Pipeline]":
        """``(stages before name, stages from name to the end)``.

        The prefix is ``None`` when ``name`` is the first stage. Both
        halves share this pipeline's stage objects and middleware — the
        interleaved loop runs the prefix once and the suffix per round,
        so inserted custom stages execute on the correct side.
        """
        index = self._index_of(name)
        prefix = self._derive(self._stages[:index]) if index else None
        return prefix, self._derive(self._stages[index:])

    def with_middleware(self, *middleware: Middleware) -> "Pipeline":
        """A pipeline with additional middleware appended."""
        return Pipeline(
            self._stages,
            middleware=self._user_middleware + tuple(middleware),
            record_timings=self._record_timings,
        )

    # -- execution -----------------------------------------------------------

    def _apply_hook(
        self, hook_name: str, ctx: ExecutionContext, *args: Any
    ) -> ExecutionContext:
        """Run one hook across the middleware stack, isolating failures.

        A hook may return a new context; a raising hook leaves the last
        good context in force (contexts are immutable, so a partially
        applied hook cannot corrupt anything).
        """
        for mw in self._middleware:
            hook = getattr(mw, hook_name, None)
            if hook is None:
                continue
            try:
                out = hook(ctx, *args)
            except Exception:  # noqa: BLE001 — hook isolation is the contract
                continue
            if isinstance(out, ExecutionContext):
                ctx = out
        return ctx

    def run(
        self, ctx: ExecutionContext, stop_after: str | None = None
    ) -> ExecutionContext:
        """Execute the stages over ``ctx``; return the final context.

        ``stop_after`` (a stage name) halts after that stage — partial
        runs for harnesses that need intermediate artifacts. Stage
        exceptions propagate to the caller after every middleware's
        ``on_stage_error`` has observed them.
        """
        last = None if stop_after is None else self._index_of(stop_after)
        for index, stage in enumerate(self._stages):
            ctx = self._apply_hook("on_stage_start", ctx, stage)
            t0 = time.perf_counter()
            try:
                out = stage.run(ctx)
            except Exception as exc:
                self._apply_hook("on_stage_error", ctx, stage, exc)
                raise
            if not isinstance(out, ExecutionContext):
                raise PipelineError(
                    f"stage {stage.name!r} returned "
                    f"{type(out).__name__}, not an ExecutionContext"
                )
            ctx = self._apply_hook(
                "on_stage_end", out, stage, time.perf_counter() - t0
            )
            if index == last:
                break
        return ctx


def default_pipeline(
    middleware: Iterable[Middleware] = (), record_timings: bool = True
) -> Pipeline:
    """The paper's six-stage pipeline (retrieve → ... → expand)."""
    return Pipeline(
        default_stages(), middleware=middleware, record_timings=record_timings
    )
